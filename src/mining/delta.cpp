#include "mining/delta.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <limits>

namespace defuse::mining {
namespace {

constexpr std::string_view kSnapshotHeader = "delta-accumulator-v1";

/// Appends "<n>" to out.
void AppendInt(std::string& out, std::int64_t n) {
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, n);
  assert(ec == std::errc{});
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

/// Parses one integer field, advancing `text` past it and the following
/// delimiter. Returns false on malformed input.
bool ParseInt(std::string_view& text, char delim, std::int64_t& out) {
  const std::size_t stop = text.find(delim);
  if (stop == std::string_view::npos) return false;
  const std::string_view field = text.substr(0, stop);
  auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), out);
  if (ec != std::errc{} || ptr != field.data() + field.size()) return false;
  text.remove_prefix(stop + 1);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// CanTree

void CanTree::Insert(const Transaction& t, std::uint32_t count) {
  assert(std::is_sorted(t.begin(), t.end()));
  std::uint32_t node = 0;
  for (const FunctionId item : t) {
    auto [it, inserted] =
        nodes_[node].children.try_emplace(item.value(), std::uint32_t{0});
    if (inserted) {
      it->second = static_cast<std::uint32_t>(nodes_.size());
      // nodes_ may reallocate here; `it` stays valid (map iterator), but
      // re-read through it after the push_back.
      nodes_.emplace_back();
    }
    node = it->second;
  }
  nodes_[node].terminal += count;
  size_ += count;
}

bool CanTree::Remove(const Transaction& t, std::uint32_t count) {
  std::uint32_t node = 0;
  for (const FunctionId item : t) {
    const auto it = nodes_[node].children.find(item.value());
    if (it == nodes_[node].children.end()) return false;
    node = it->second;
  }
  if (nodes_[node].terminal < count) return false;
  // Empty sub-paths are left in place (Export skips terminal == 0); the
  // periodic full-rebuild anchor reclaims them.
  nodes_[node].terminal -= count;
  size_ -= count;
  return true;
}

void CanTree::Export(std::vector<Transaction>& out) const {
  Transaction prefix;
  ExportFrom(0, prefix, out);
}

void CanTree::ExportFrom(std::uint32_t node, Transaction& prefix,
                         std::vector<Transaction>& out) const {
  const Node& n = nodes_[node];
  for (std::uint32_t i = 0; i < n.terminal; ++i) out.push_back(prefix);
  for (const auto& [item, child] : n.children) {
    prefix.push_back(FunctionId{item});
    ExportFrom(child, prefix, out);
    prefix.pop_back();
  }
}

void CanTree::Clear() {
  nodes_.assign(1, Node{});
  size_ = 0;
}

// ---------------------------------------------------------------------------
// DeltaAccumulator

DeltaAccumulator::DeltaAccumulator(const trace::WorkloadModel& model,
                                   DeltaMineConfig config,
                                   MinuteDelta window_minutes)
    : model_(&model),
      config_(config),
      window_minutes_(window_minutes),
      runs_(model.num_functions()),
      users_(model.num_users()) {
  assert(window_minutes_ >= 1);
}

void DeltaAccumulator::Ingest(FunctionId fn, Minute minute,
                              std::uint32_t count) {
  assert(fn.value() < runs_.size());
  assert(minute >= ingest_watermark_ && "delta ingest must be monotonic");
  assert(minute >= sealed_end_ && "cannot ingest into a sealed minute");
  ingest_watermark_ = minute;
  auto& run = runs_[fn.value()];
  if (!run.empty() && run.back().minute == minute) {
    run.back().count += count;
  } else {
    run.push_back({minute, count});
  }
}

void DeltaAccumulator::SealTo(Minute end) {
  if (end <= sealed_end_) return;
  if (window_minutes_ == 1) ApplySpan({sealed_end_, end}, +1);
  sealed_end_ = end;
}

void DeltaAccumulator::EvictTo(Minute begin) {
  if (begin <= store_begin_) return;
  assert(begin <= sealed_end_ && "cannot evict unsealed minutes");
  if (window_minutes_ == 1) ApplySpan({store_begin_, begin}, -1);
  for (auto& run : runs_) {
    const auto keep = std::lower_bound(
        run.begin(), run.end(), begin,
        [](const trace::InvocationEvent& e, Minute m) { return e.minute < m; });
    run.erase(run.begin(), keep);
  }
  store_begin_ = begin;
}

trace::InvocationTrace DeltaAccumulator::MaterializeWindow(
    TimeRange window, TimeRange horizon) const {
  trace::InvocationTrace out(runs_.size(), horizon);
  for (std::size_t fn = 0; fn < runs_.size(); ++fn) {
    const auto& run = runs_[fn];
    auto it = std::lower_bound(
        run.begin(), run.end(), window.begin,
        [](const trace::InvocationEvent& e, Minute m) { return e.minute < m; });
    for (; it != run.end() && it->minute < window.end; ++it) {
      out.Add(FunctionId{static_cast<std::uint32_t>(fn)}, it->minute,
              it->count);
    }
  }
  out.Finalize();
  return out;
}

DeltaMiningInput DeltaAccumulator::BuildInput(TimeRange window) const {
  DeltaMiningInput input;
  if (window_minutes_ != 1) return input;
  assert(store_begin_ == window.begin && sealed_end_ == window.end &&
         "accumulators must cover exactly the mining window");
  input.transactions.resize(users_.size());
  input.cooc.resize(users_.size());
  for (std::size_t u = 0; u < users_.size(); ++u) {
    users_[u].tree.Export(input.transactions[u]);
    auto& counts = input.cooc[u];
    counts.active.assign(users_[u].active.begin(), users_[u].active.end());
    counts.pairs.assign(users_[u].pairs.begin(), users_[u].pairs.end());
  }
  input.total_windows = static_cast<std::uint64_t>(
      window.length() > 0 ? window.length() : 0);
  input.has_transactions = true;
  input.has_cooc = true;
  return input;
}

void DeltaAccumulator::RebuildFromTrace(const trace::InvocationTrace& trace,
                                        Minute begin) {
  assert(trace.num_functions() == runs_.size());
  ResetDerived();
  ingest_watermark_ = begin;
  for (std::size_t fn = 0; fn < runs_.size(); ++fn) {
    const auto series = trace.series(FunctionId{static_cast<std::uint32_t>(fn)});
    auto it = std::lower_bound(
        series.begin(), series.end(), begin,
        [](const trace::InvocationEvent& e, Minute m) { return e.minute < m; });
    runs_[fn].assign(it, series.end());
    if (!runs_[fn].empty()) {
      ingest_watermark_ = std::max(ingest_watermark_, runs_[fn].back().minute);
    }
  }
  store_begin_ = begin;
  sealed_end_ = begin;
  commits_since_anchor_ = 0;
}

void DeltaAccumulator::Commit(Minute boundary, bool anchored) {
  last_good_ = boundary;
  if (anchored) {
    commits_since_anchor_ = 0;
    ++books_.full_rebuilds;
  } else {
    ++commits_since_anchor_;
    ++books_.delta_mines;
  }
}

void DeltaAccumulator::Abandon() { ++books_.aborted_deltas; }

std::uint64_t DeltaAccumulator::stored_events() const noexcept {
  std::uint64_t n = 0;
  for (const auto& run : runs_) n += run.size();
  return n;
}

std::string DeltaAccumulator::Serialize() const {
  std::string out;
  out += kSnapshotHeader;
  out += '\n';
  out += "meta,";
  AppendInt(out, store_begin_);
  out += ',';
  AppendInt(out, sealed_end_);
  out += ',';
  AppendInt(out, last_good_);
  out += ',';
  AppendInt(out, static_cast<std::int64_t>(commits_since_anchor_));
  out += ',';
  AppendInt(out, window_minutes_);
  out += '\n';
  for (std::size_t fn = 0; fn < runs_.size(); ++fn) {
    if (runs_[fn].empty()) continue;
    out += "run,";
    AppendInt(out, static_cast<std::int64_t>(fn));
    for (const auto& e : runs_[fn]) {
      out += ',';
      AppendInt(out, e.minute);
      out += ':';
      AppendInt(out, static_cast<std::int64_t>(e.count));
    }
    out += '\n';
  }
  // Torn-write sentinel: a snapshot without it is rejected on load.
  out += "end\n";
  return out;
}

bool DeltaAccumulator::Deserialize(std::string_view text) {
  // Parse into staging first; commit only a fully validated snapshot.
  std::size_t eol = text.find('\n');
  if (eol == std::string_view::npos || text.substr(0, eol) != kSnapshotHeader) {
    return false;
  }
  text.remove_prefix(eol + 1);

  eol = text.find('\n');
  if (eol == std::string_view::npos) return false;
  std::string_view meta = text.substr(0, eol);
  text.remove_prefix(eol + 1);
  if (!meta.starts_with("meta,")) return false;
  meta.remove_prefix(5);
  // Re-terminate so ParseInt's delimiter search works on the last field.
  std::string meta_line(meta);
  meta_line += ',';
  std::string_view cursor = meta_line;
  std::int64_t begin = 0;
  std::int64_t sealed = 0;
  std::int64_t good = 0;
  std::int64_t commits = 0;
  std::int64_t wm = 0;
  if (!ParseInt(cursor, ',', begin) || !ParseInt(cursor, ',', sealed) ||
      !ParseInt(cursor, ',', good) || !ParseInt(cursor, ',', commits) ||
      !ParseInt(cursor, ',', wm) || !cursor.empty()) {
    return false;
  }
  if (begin < 0 || sealed < begin || good < -1 || commits < 0 ||
      wm != window_minutes_) {
    return false;
  }

  std::vector<std::vector<trace::InvocationEvent>> staged(runs_.size());
  Minute watermark = begin;
  bool saw_end = false;
  while (!text.empty()) {
    eol = text.find('\n');
    if (eol == std::string_view::npos) return false;  // torn final line
    std::string_view line = text.substr(0, eol);
    text.remove_prefix(eol + 1);
    if (line == "end") {
      saw_end = text.empty();
      break;
    }
    if (!line.starts_with("run,")) return false;
    line.remove_prefix(4);
    std::string run_line(line);
    run_line += ',';
    cursor = run_line;
    std::int64_t fn = 0;
    if (!ParseInt(cursor, ',', fn)) return false;
    if (fn < 0 || static_cast<std::size_t>(fn) >= staged.size()) return false;
    auto& run = staged[static_cast<std::size_t>(fn)];
    if (!run.empty()) return false;  // duplicate run line
    while (!cursor.empty()) {
      std::int64_t minute = 0;
      std::int64_t count = 0;
      if (!ParseInt(cursor, ':', minute) || !ParseInt(cursor, ',', count)) {
        return false;
      }
      // Events below store_begin would desync eviction accounting; a
      // count of zero or overflow would desync seal/unseal arithmetic.
      if (minute < begin || count <= 0 ||
          count > static_cast<std::int64_t>(
                      std::numeric_limits<std::uint32_t>::max())) {
        return false;
      }
      if (!run.empty() && run.back().minute >= minute) return false;
      run.push_back({minute, static_cast<std::uint32_t>(count)});
      watermark = std::max(watermark, static_cast<Minute>(minute));
    }
    if (run.empty()) return false;  // "run,<fn>" with no events
  }
  if (!saw_end) return false;

  runs_ = std::move(staged);
  store_begin_ = begin;
  sealed_end_ = begin;  // re-derive the sealed span below
  last_good_ = good;
  ingest_watermark_ = watermark;
  commits_since_anchor_ = static_cast<std::uint32_t>(commits);
  ResetDerived();
  SealTo(sealed);
  return true;
}

void DeltaAccumulator::ApplySpan(TimeRange span, int sign) {
  if (span.empty()) return;
  for (std::size_t u = 0; u < users_.size(); ++u) {
    // Per-minute item sets of this user inside the span, mirroring
    // BuildUserTransactions at window_minutes == 1.
    std::map<Minute, Transaction> minutes;
    for (const FunctionId fn :
         model_->FunctionsOfUser(UserId{static_cast<std::uint32_t>(u)})) {
      const auto& run = runs_[fn.value()];
      auto it = std::lower_bound(run.begin(), run.end(), span.begin,
                                 [](const trace::InvocationEvent& e, Minute m) {
                                   return e.minute < m;
                                 });
      for (; it != run.end() && it->minute < span.end; ++it) {
        minutes[it->minute].push_back(fn);
      }
    }
    UserAcc& acc = users_[u];
    for (auto& [minute, items] : minutes) {
      std::sort(items.begin(), items.end());
      items.erase(std::unique(items.begin(), items.end()), items.end());
      for (std::size_t i = 0; i < items.size(); ++i) {
        const std::uint32_t a = items[i].value();
        if (sign > 0) {
          ++acc.active[a];
        } else {
          const auto it = acc.active.find(a);
          assert(it != acc.active.end() && it->second > 0);
          if (--it->second == 0) acc.active.erase(it);
        }
        for (std::size_t j = i + 1; j < items.size(); ++j) {
          const auto key = std::make_pair(a, items[j].value());
          if (sign > 0) {
            ++acc.pairs[key];
          } else {
            const auto pit = acc.pairs.find(key);
            assert(pit != acc.pairs.end() && pit->second > 0);
            if (--pit->second == 0) acc.pairs.erase(pit);
          }
        }
      }
      // Matches TransactionConfig::min_items: singleton windows carry no
      // co-invocation signal and never reach FP-Growth.
      if (items.size() >= 2) {
        if (sign > 0) {
          acc.tree.Insert(items);
        } else {
          const bool removed = acc.tree.Remove(items);
          assert(removed && "evicted transaction missing from CanTree");
          (void)removed;
        }
      }
    }
  }
}

void DeltaAccumulator::ResetDerived() {
  for (auto& acc : users_) {
    acc.tree.Clear();
    acc.pairs.clear();
    acc.active.clear();
  }
}

}  // namespace defuse::mining
