#include "mining/predictability.hpp"

namespace defuse::mining {

stats::Histogram BuildItHistogram(const trace::InvocationTrace& trace,
                                  FunctionId fn, TimeRange range,
                                  const PredictabilityConfig& config) {
  stats::Histogram hist{config.histogram_bins, config.histogram_bin_width};
  for (const MinuteDelta gap : trace.IdleTimes(fn, range)) hist.Add(gap);
  return hist;
}

stats::Histogram BuildGroupItHistogram(const trace::InvocationTrace& trace,
                                       std::span<const FunctionId> fns,
                                       TimeRange range,
                                       const PredictabilityConfig& config) {
  stats::Histogram hist{config.histogram_bins, config.histogram_bin_width};
  for (const MinuteDelta gap : trace.GroupIdleTimes(fns, range)) {
    hist.Add(gap);
  }
  return hist;
}

bool IsPredictable(const stats::Histogram& hist,
                   const PredictabilityConfig& config) {
  if (hist.total() < config.min_observations) return false;
  return hist.BinCountCv() > config.cv_threshold;
}

PredictabilityReport ClassifyFunctions(const trace::InvocationTrace& trace,
                                       const trace::WorkloadModel& model,
                                       TimeRange range,
                                       const PredictabilityConfig& config) {
  return ClassifyFunctions(trace, model, range, config, nullptr);
}

PredictabilityReport ClassifyFunctions(const trace::InvocationTrace& trace,
                                       const trace::WorkloadModel& model,
                                       TimeRange range,
                                       const PredictabilityConfig& config,
                                       ThreadPool* pool) {
  PredictabilityReport report;
  const std::size_t n = model.num_functions();
  report.cv.resize(n, 0.0);
  // vector<bool> packs bits, so concurrent writes to adjacent slots race
  // on the shared byte; stage into one byte per function instead.
  std::vector<char> predictable(n, 0);
  ParallelFor(pool, n, [&](std::size_t f) {
    const FunctionId fn{static_cast<std::uint32_t>(f)};
    const auto hist = BuildItHistogram(trace, fn, range, config);
    report.cv[f] = hist.BinCountCv();
    predictable[f] = IsPredictable(hist, config) ? 1 : 0;
  });
  report.predictable.assign(predictable.begin(), predictable.end());
  return report;
}

}  // namespace defuse::mining
