#include "mining/predictability.hpp"

namespace defuse::mining {

stats::Histogram BuildItHistogram(const trace::InvocationTrace& trace,
                                  FunctionId fn, TimeRange range,
                                  const PredictabilityConfig& config) {
  stats::Histogram hist{config.histogram_bins, config.histogram_bin_width};
  for (const MinuteDelta gap : trace.IdleTimes(fn, range)) hist.Add(gap);
  return hist;
}

stats::Histogram BuildGroupItHistogram(const trace::InvocationTrace& trace,
                                       std::span<const FunctionId> fns,
                                       TimeRange range,
                                       const PredictabilityConfig& config) {
  stats::Histogram hist{config.histogram_bins, config.histogram_bin_width};
  for (const MinuteDelta gap : trace.GroupIdleTimes(fns, range)) {
    hist.Add(gap);
  }
  return hist;
}

bool IsPredictable(const stats::Histogram& hist,
                   const PredictabilityConfig& config) {
  if (hist.total() < config.min_observations) return false;
  return hist.BinCountCv() > config.cv_threshold;
}

PredictabilityReport ClassifyFunctions(const trace::InvocationTrace& trace,
                                       const trace::WorkloadModel& model,
                                       TimeRange range,
                                       const PredictabilityConfig& config) {
  PredictabilityReport report;
  const std::size_t n = model.num_functions();
  report.predictable.resize(n, false);
  report.cv.resize(n, 0.0);
  for (std::size_t f = 0; f < n; ++f) {
    const FunctionId fn{static_cast<std::uint32_t>(f)};
    const auto hist = BuildItHistogram(trace, fn, range, config);
    report.cv[f] = hist.BinCountCv();
    report.predictable[f] = IsPredictable(hist, config);
  }
  return report;
}

}  // namespace defuse::mining
