// Configuration for the parallel sharded mining pipeline.
//
// The unit of parallelism is one user: transaction building, per-window
// FP-Growth, and PPMI weak-dependency mining shard cleanly by user
// because the paper mines each client's functions independently
// (§IV.B.2). Predictability classification shards by function the same
// way. The only cross-user state — the universe-shuffle RNG stream — is
// consumed on the coordinating thread in user-id order, and all per-user
// results are merged back in user-id order, so the mined dependency
// graph is bit-identical to the serial path for every (seed, thread
// count) combination. See DESIGN.md §8.
#pragma once

#include <cstddef>

namespace defuse::mining {

struct ParallelMineConfig {
  /// Worker threads for the mining fan-out. 0 and 1 both mean "serial":
  /// run everything inline on the calling thread with no pool at all —
  /// the default, so goldens and single-threaded deployments are
  /// untouched. Values above 1 spawn a fixed-size ThreadPool for the
  /// duration of one MineDependencies call.
  std::size_t num_threads = 0;

  [[nodiscard]] bool enabled() const noexcept { return num_threads > 1; }
};

}  // namespace defuse::mining
