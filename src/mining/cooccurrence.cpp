#include "mining/cooccurrence.hpp"

// Sort-at-boundary audit note: this file intentionally holds no
// unordered containers. Window sets are sorted vectors by construction
// (SeriesInRange yields ascending minutes) and the co-occurrence
// intersection walks two ascending lists, so every merge here is
// deterministic without an ordering boundary.
#include <algorithm>
#include <cassert>
#include <cmath>

namespace defuse::mining {

CooccurrenceMatrix::CooccurrenceMatrix(std::vector<FunctionId> rows,
                                       std::vector<FunctionId> cols)
    : rows_(std::move(rows)),
      cols_(std::move(cols)),
      counts_(rows_.size() * cols_.size(), 0),
      row_windows_(rows_.size(), 0),
      col_windows_(cols_.size(), 0) {}

void CooccurrenceMatrix::Accumulate(const trace::InvocationTrace& trace,
                                    TimeRange range,
                                    MinuteDelta window_minutes) {
  assert(window_minutes >= 1);
  // Active window sets per row/col function.
  const auto windows_of = [&](FunctionId fn) {
    std::vector<Minute> windows;
    for (const auto& e : trace.SeriesInRange(fn, range)) {
      const Minute w = (e.minute - range.begin) / window_minutes;
      if (windows.empty() || windows.back() != w) windows.push_back(w);
    }
    return windows;
  };

  std::vector<std::vector<Minute>> row_sets(rows_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    row_sets[r] = windows_of(rows_[r]);
    row_windows_[r] += row_sets[r].size();
  }
  std::vector<std::vector<Minute>> col_sets(cols_.size());
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    col_sets[c] = windows_of(cols_[c]);
    col_windows_[c] += col_sets[c].size();
  }

  // Sorted-list intersections; both sides are ascending by construction.
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (row_sets[r].empty()) continue;
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      if (col_sets[c].empty()) continue;
      std::uint64_t both = 0;
      auto ri = row_sets[r].begin();
      auto ci = col_sets[c].begin();
      while (ri != row_sets[r].end() && ci != col_sets[c].end()) {
        if (*ri < *ci) {
          ++ri;
        } else if (*ci < *ri) {
          ++ci;
        } else {
          ++both;
          ++ri;
          ++ci;
        }
      }
      counts_[r * cols_.size() + c] += both;
    }
  }

  const MinuteDelta len = std::max<MinuteDelta>(range.length(), 0);
  total_windows_ += static_cast<std::uint64_t>(
      (len + window_minutes - 1) / window_minutes);
}

void CooccurrenceMatrix::LoadAccumulated(
    std::span<const std::pair<std::uint32_t, std::uint64_t>> active,
    std::span<const std::pair<std::pair<std::uint32_t, std::uint32_t>,
                              std::uint64_t>>
        pairs,
    std::uint64_t total_windows) {
  const auto active_of = [&](FunctionId fn) -> std::uint64_t {
    const auto it = std::lower_bound(
        active.begin(), active.end(), fn.value(),
        [](const auto& entry, std::uint32_t v) { return entry.first < v; });
    return (it != active.end() && it->first == fn.value()) ? it->second : 0;
  };
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    row_windows_[r] += active_of(rows_[r]);
  }
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    col_windows_[c] += active_of(cols_[c]);
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      // NOT std::minmax: it would return a pair of references into the
      // two .value() temporaries, dangling by the lookup below.
      const std::uint32_t rv = rows_[r].value();
      const std::uint32_t cv = cols_[c].value();
      const std::pair<std::uint32_t, std::uint32_t> key{std::min(rv, cv),
                                                        std::max(rv, cv)};
      const auto it = std::lower_bound(
          pairs.begin(), pairs.end(), key,
          [](const auto& entry, const auto& k) { return entry.first < k; });
      if (it != pairs.end() && it->first == key) {
        counts_[r * cols_.size() + c] += it->second;
      }
    }
  }
  total_windows_ += total_windows;
}

double CooccurrenceMatrix::Ppmi(std::size_t r, std::size_t c) const noexcept {
  if (total_windows_ == 0) return 0.0;
  const std::uint64_t joint = at(r, c);
  if (joint == 0 || row_windows_[r] == 0 || col_windows_[c] == 0) return 0.0;
  const auto n = static_cast<double>(total_windows_);
  const double p_joint = static_cast<double>(joint) / n;
  const double p_row = static_cast<double>(row_windows_[r]) / n;
  const double p_col = static_cast<double>(col_windows_[c]) / n;
  const double pmi = std::log2(p_joint / (p_row * p_col));
  return pmi > 0.0 ? pmi : 0.0;
}

std::vector<WeakDependency> MineWeakDependencies(
    const trace::InvocationTrace& trace, const trace::WorkloadModel& model,
    UserId user, const std::vector<bool>& predictable, TimeRange range,
    const PpmiConfig& config) {
  std::vector<FunctionId> unpredictable_fns;
  std::vector<FunctionId> predictable_fns;
  for (const FunctionId fn : model.FunctionsOfUser(user)) {
    if (predictable[fn.value()]) {
      predictable_fns.push_back(fn);
    } else {
      unpredictable_fns.push_back(fn);
    }
  }
  std::vector<WeakDependency> result;
  if (unpredictable_fns.empty() || predictable_fns.empty()) return result;

  CooccurrenceMatrix matrix{unpredictable_fns, predictable_fns};
  matrix.Accumulate(trace, range, config.window_minutes);
  return MineWeakDependenciesFromMatrix(matrix, config);
}

std::vector<WeakDependency> MineWeakDependenciesFromMatrix(
    const CooccurrenceMatrix& matrix, const PpmiConfig& config) {
  std::vector<WeakDependency> result;
  // Per row: the top-k columns by PPMI (stable tie-break on column id).
  std::vector<std::pair<double, std::size_t>> scored;
  for (std::size_t r = 0; r < matrix.num_rows(); ++r) {
    scored.clear();
    for (std::size_t c = 0; c < matrix.num_cols(); ++c) {
      if (matrix.at(r, c) < config.min_cooccurrences) continue;
      const double ppmi = matrix.Ppmi(r, c);
      if (ppmi > config.min_ppmi) scored.emplace_back(ppmi, c);
    }
    const std::size_t k = std::min(config.top_k, scored.size());
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<std::ptrdiff_t>(k),
                      scored.end(), [](const auto& a, const auto& b) {
                        if (a.first != b.first) return a.first > b.first;
                        return a.second < b.second;
                      });
    for (std::size_t i = 0; i < k; ++i) {
      result.push_back(WeakDependency{.from = matrix.rows()[r],
                                      .to = matrix.cols()[scored[i].second],
                                      .ppmi = scored[i].first});
    }
  }
  return result;
}

}  // namespace defuse::mining
