// Predictability classification (paper §III.A.2, §IV.B.3).
//
// A function (or app, or dependency set) is *unpredictable* when the
// coefficient of variation of its binned idle-time histogram is small:
// idle times spread evenly over the bins mean there is no dominant
// invocation period. The paper uses CV <= 5 as the threshold.
#pragma once

#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/thread_pool.hpp"
#include "common/time.hpp"
#include "stats/histogram.hpp"
#include "trace/invocation_trace.hpp"
#include "trace/model.hpp"

namespace defuse::mining {

struct PredictabilityConfig {
  /// CV threshold: <= is unpredictable (paper §V.A: 5; Shahrad's default 2).
  double cv_threshold = 5.0;
  /// IT histogram shape (4 h of 1-minute bins, as in the paper).
  std::size_t histogram_bins = 240;
  MinuteDelta histogram_bin_width = 1;
  /// A function with fewer than this many idle-time observations has no
  /// usable histogram and is treated as unpredictable. Small counts also
  /// make the bin-count CV unreliable (sparse histograms look peaked).
  std::size_t min_observations = 10;
};

/// Builds the idle-time histogram of one function over `range`.
[[nodiscard]] stats::Histogram BuildItHistogram(
    const trace::InvocationTrace& trace, FunctionId fn, TimeRange range,
    const PredictabilityConfig& config = {});

/// Builds the idle-time histogram of a function group (app/dependency
/// set): the group is active whenever any member is.
[[nodiscard]] stats::Histogram BuildGroupItHistogram(
    const trace::InvocationTrace& trace, std::span<const FunctionId> fns,
    TimeRange range, const PredictabilityConfig& config = {});

struct PredictabilityReport {
  std::vector<bool> predictable;  // indexed by FunctionId
  std::vector<double> cv;         // bin-count CV per function
};

/// Classifies every function of the model over `range`.
[[nodiscard]] PredictabilityReport ClassifyFunctions(
    const trace::InvocationTrace& trace, const trace::WorkloadModel& model,
    TimeRange range, const PredictabilityConfig& config = {});

/// Same, sharded by function over `pool` (nullptr = serial). Each worker
/// writes only its own function's slots, so the report is bit-identical
/// to the serial overload regardless of thread count.
[[nodiscard]] PredictabilityReport ClassifyFunctions(
    const trace::InvocationTrace& trace, const trace::WorkloadModel& model,
    TimeRange range, const PredictabilityConfig& config, ThreadPool* pool);

/// True if a histogram passes the predictability test.
[[nodiscard]] bool IsPredictable(const stats::Histogram& hist,
                                 const PredictabilityConfig& config = {});

}  // namespace defuse::mining
