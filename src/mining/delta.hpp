// Incremental (delta) re-mining: streaming accumulators that ingest only
// the events since the last mine boundary, so a periodic re-mine costs
// O(new data) instead of O(full history).
//
// Three layers, each exact (never approximate):
//
//   * An event store — per-function sorted (minute, count) runs covering
//     [store_begin, ingest watermark). Appends are O(1) amortized
//     (arrivals are monotonic), eviction drops the prefix a sliding
//     mining window can never revisit, and MaterializeWindow() yields a
//     standalone trace holding exactly the window's events. This is the
//     universal fallback: mining the materialized window through the
//     unchanged pipeline is bit-identical to mining the full history
//     restricted to the same window, at any window_minutes.
//   * Per-user co-occurrence accumulators — pair counts and per-function
//     active-minute counts, maintained as minutes seal. At
//     window_minutes == 1 (the paper's trace granularity and the
//     default) the PPMI co-occurrence matrix is an exact integer
//     function of these counts, so weak mining skips the trace scan.
//   * Per-user incremental FP-trees (CanTree) — canonical ascending-id
//     prefix trees over the user's per-minute transactions, supporting
//     Insert and exact Remove. Exported transactions are multiset-equal
//     to BuildUserTransactions over the window, and FP-Growth's output
//     is a pure function of that multiset (count-ordered header tables),
//     so strong mining is bit-identical too.
//
// A periodic full rebuild (DeltaMineConfig::full_rebuild_every) is the
// correctness anchor: every Nth committed mine discards the derived
// structures and rebuilds them from the live history, so incremental
// drift — were a bug ever to introduce any — cannot compound.
//
// Rollback-on-degrade invariant: the accumulator advances its boundary
// only when a mine is adopted (Commit). A degraded re-mine that keeps
// the last-good dependency sets calls Abandon(), which leaves every
// accumulator at the last-good boundary — the next mine folds the
// abandoned window's events into its own delta, so a half-ingested
// delta can never poison a later mine.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "mining/transactions.hpp"
#include "trace/invocation_trace.hpp"
#include "trace/model.hpp"

namespace defuse::mining {

struct DeltaMineConfig {
  /// Maintain streaming accumulators and mine deltas instead of
  /// re-scanning the full history snapshot at every boundary.
  bool enabled = false;
  /// Every Nth committed mine is a full rebuild from the live history
  /// (the correctness anchor). 1 = every mine, 0 = never anchor.
  std::uint32_t full_rebuild_every = 8;

  friend bool operator==(const DeltaMineConfig&,
                         const DeltaMineConfig&) noexcept = default;
};

/// Canonical-order FP-tree (a CanTree): every path lists items in
/// ascending FunctionId order, so the tree shape is independent of
/// insertion order and an exact Remove is possible — the properties a
/// *streaming* frequent-itemset accumulator needs. Children are kept in
/// a std::map for deterministic export order (src/mining is a
/// determinism boundary).
class CanTree {
 public:
  CanTree() : nodes_(1) {}

  /// Inserts one ascending-id transaction with multiplicity `count`.
  void Insert(const Transaction& t, std::uint32_t count = 1);
  /// Exact inverse of Insert. Returns false (and changes nothing) if the
  /// tree does not hold `count` copies of `t`.
  bool Remove(const Transaction& t, std::uint32_t count = 1);
  /// Appends every stored transaction, expanded to its multiplicity, in
  /// lexicographic item order. The result is multiset-equal to the
  /// insert/remove history.
  void Export(std::vector<Transaction>& out) const;
  /// Total stored multiplicity.
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  void Clear();

 private:
  struct Node {
    std::uint32_t terminal = 0;  // multiplicity of transactions ending here
    // Child item id -> node index. Deterministic iteration order is what
    // makes Export reproducible.
    std::map<std::uint32_t, std::uint32_t> children;
  };
  void ExportFrom(std::uint32_t node, Transaction& prefix,
                  std::vector<Transaction>& out) const;

  std::vector<Node> nodes_;  // nodes_[0] is the root
  std::uint64_t size_ = 0;
};

/// Pre-accumulated per-user mining input handed to MineDependencies by
/// the delta path. Vectors are indexed in model.users() order. Empty
/// flags fall back to the trace-scanning pipeline (still correct — the
/// trace handed alongside is the materialized window).
struct DeltaMiningInput {
  /// Per user: transactions multiset-equal to BuildUserTransactions over
  /// the window (exported from the incremental FP-trees).
  std::vector<std::vector<Transaction>> transactions;
  bool has_transactions = false;

  /// Per user: sorted (fn id, active minutes) and ((a, b) with a < b,
  /// co-active minutes) counts over the window, exact at
  /// window_minutes == 1.
  struct UserCounts {
    std::vector<std::pair<std::uint32_t, std::uint64_t>> active;
    std::vector<std::pair<std::pair<std::uint32_t, std::uint32_t>,
                          std::uint64_t>>
        pairs;
  };
  std::vector<UserCounts> cooc;
  /// Number of co-occurrence windows in the range (== window length at
  /// window_minutes == 1).
  std::uint64_t total_windows = 0;
  bool has_cooc = false;
};

/// The streaming re-mine state of one platform: event store + per-user
/// derived accumulators + boundary bookkeeping. Single-threaded by
/// contract (the platform thread); the async re-mine path hands the
/// worker a self-contained MaterializeWindow()/BuildInput() copy, never
/// the accumulator itself.
class DeltaAccumulator {
 public:
  /// `model` is borrowed and must outlive the accumulator.
  DeltaAccumulator(const trace::WorkloadModel& model, DeltaMineConfig config,
                   MinuteDelta window_minutes);

  /// Appends one invocation event. Minutes must be non-decreasing (the
  /// platform's own Invoke contract).
  void Ingest(FunctionId fn, Minute minute, std::uint32_t count = 1);

  /// Folds every stored minute < `end` into the derived accumulators
  /// (pair counts, active counts, FP-trees). Idempotent per minute.
  void SealTo(Minute end);
  /// Drops sealed minutes < `begin` from the derived accumulators and
  /// trims the event store. Only minutes a sliding window can never
  /// revisit may be evicted; `begin` must be <= the sealed watermark.
  void EvictTo(Minute begin);

  /// A standalone trace holding exactly the stored events inside
  /// `window`, over `horizon` (the platform's history horizon).
  [[nodiscard]] trace::InvocationTrace MaterializeWindow(
      TimeRange window, TimeRange horizon) const;

  /// Exports the pre-accumulated mining input for `window`. Requires
  /// SealTo(window.end) and EvictTo(window.begin) to have run. At
  /// window_minutes != 1 the fast-path flags stay false (callers mine
  /// the materialized window through the standard pipeline instead).
  [[nodiscard]] DeltaMiningInput BuildInput(TimeRange window) const;

  /// True when the next mine must run as a full-rebuild anchor.
  [[nodiscard]] bool FullRebuildDue() const noexcept {
    return config_.full_rebuild_every > 0 &&
           commits_since_anchor_ + 1 >= config_.full_rebuild_every;
  }

  /// Discards everything and re-ingests `trace`'s events at minutes >=
  /// `begin` (derived structures empty, to be sealed by the next mine).
  /// Used by the full-rebuild anchor, by delta-window-skew recovery, and
  /// when a restored snapshot carries no usable accumulator section.
  void RebuildFromTrace(const trace::InvocationTrace& trace, Minute begin);

  /// Books an adopted mine at `boundary`; `anchored` marks a full
  /// rebuild (resets the anchor cadence).
  void Commit(Minute boundary, bool anchored);
  /// Books a degraded mine that kept the previous sets: the accumulator
  /// stays at the last-good boundary (nothing was evicted or advanced),
  /// so the next mine folds this window's events into its own delta.
  void Abandon();

  /// Serializes store + boundary state (not the derived structures —
  /// they re-derive in O(window) on load, which is what lets recovery
  /// resume mid-delta without replaying full history). Ends with an
  /// "end" sentinel line so a torn write is detectable.
  [[nodiscard]] std::string Serialize() const;
  /// Restores Serialize() output; re-derives the sealed span. Returns
  /// false (state unchanged) on any malformed or truncated input.
  [[nodiscard]] bool Deserialize(std::string_view text);

  /// Delta bookkeeping. Like Platform::AsyncRemineBooks, deliberately
  /// not persisted: it describes how mines ran, not what the scheduler
  /// did, which keeps SaveState byte-identical with delta on or off.
  struct Books {
    /// Committed mines served from the streaming accumulators.
    std::uint64_t delta_mines = 0;
    /// Committed full-rebuild anchors (cadence or skew recovery).
    std::uint64_t full_rebuilds = 0;
    /// Degraded mines rolled back to the last-good boundary.
    std::uint64_t aborted_deltas = 0;
    /// Accumulator rebuilds forced by an injected delta-window skew.
    std::uint64_t skew_rebuilds = 0;
    /// Snapshot [delta] sections rejected on load (torn/corrupt), each
    /// recovered by rebuilding from the restored history.
    std::uint64_t torn_snapshot_loads = 0;
  };
  [[nodiscard]] const Books& books() const noexcept { return books_; }
  [[nodiscard]] Books& books() noexcept { return books_; }

  [[nodiscard]] Minute store_begin() const noexcept { return store_begin_; }
  [[nodiscard]] Minute sealed_end() const noexcept { return sealed_end_; }
  /// Boundary of the last adopted mine (-1 before the first).
  [[nodiscard]] Minute last_good() const noexcept { return last_good_; }
  [[nodiscard]] std::uint64_t stored_events() const noexcept;
  [[nodiscard]] const DeltaMineConfig& config() const noexcept {
    return config_;
  }

 private:
  struct UserAcc {
    CanTree tree;
    /// (a, b) with a < b -> co-active sealed minutes.
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> pairs;
    /// fn id -> active sealed minutes.
    std::map<std::uint32_t, std::uint64_t> active;
  };

  /// Applies (sign = +1) or reverts (sign = -1) the per-minute
  /// transactions of [span.begin, span.end) to the derived accumulators.
  void ApplySpan(TimeRange span, int sign);
  void ResetDerived();

  const trace::WorkloadModel* model_;
  DeltaMineConfig config_;
  MinuteDelta window_minutes_;
  /// Per-function sorted coalesced (minute, count) runs.
  std::vector<std::vector<trace::InvocationEvent>> runs_;
  std::vector<UserAcc> users_;
  Minute store_begin_ = 0;
  Minute sealed_end_ = 0;
  Minute last_good_ = -1;
  Minute ingest_watermark_ = 0;
  std::uint32_t commits_since_anchor_ = 0;
  Books books_;
};

}  // namespace defuse::mining
