// Weak-dependency mining with positive point-wise mutual information
// (paper §IV.B.3).
//
// For each client, a co-occurrence matrix C is built over the client's
// *unpredictable* (rows) and *predictable* (columns) functions: C[u][p] is
// the number of time windows in which both fire. Probabilities are
// estimated from window frequencies, and
//
//     PMI(u, p)  = log2( P(u,p) / (P(u) * P(p)) )
//     PPMI(u, p) = max(0, PMI(u, p))
//
// For each unpredictable function the top-k predictable functions by PPMI
// (k = 1 in the paper's best configuration) become weak dependencies
// u -> p.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "trace/invocation_trace.hpp"
#include "trace/model.hpp"

namespace defuse::mining {

struct WeakDependency {
  FunctionId from;  // unpredictable
  FunctionId to;    // predictable
  double ppmi = 0.0;

  friend bool operator==(const WeakDependency&,
                         const WeakDependency&) = default;
};

struct PpmiConfig {
  /// Time-window width in minutes for co-occurrence counting (paper: 1).
  MinuteDelta window_minutes = 1;
  /// Keep the top-k predictable functions per unpredictable function.
  std::size_t top_k = 1;
  /// Require at least this many co-occurrences before trusting the PPMI
  /// estimate (a single coincidental co-firing of two rare functions can
  /// otherwise produce a huge PMI).
  std::uint64_t min_cooccurrences = 2;
  /// Only link pairs with PPMI strictly above this floor.
  double min_ppmi = 0.0;
};

/// Dense co-occurrence counts between two function lists over one
/// client's trace. Rows follow `rows` order, columns follow `cols`.
class CooccurrenceMatrix {
 public:
  CooccurrenceMatrix(std::vector<FunctionId> rows,
                     std::vector<FunctionId> cols);

  /// Counts co-active windows from the trace (restricted to `range`).
  void Accumulate(const trace::InvocationTrace& trace, TimeRange range,
                  MinuteDelta window_minutes);

  /// Loads pre-accumulated counts (the delta-mining fast path): `active`
  /// maps fn id -> active windows, `pairs` maps (a, b) with a < b ->
  /// co-active windows; both sorted by key. Functions absent from
  /// `active`/`pairs` count zero. Produces exactly the integers
  /// Accumulate would have counted at window_minutes == 1, so Ppmi() is
  /// bit-identical.
  void LoadAccumulated(
      std::span<const std::pair<std::uint32_t, std::uint64_t>> active,
      std::span<const std::pair<std::pair<std::uint32_t, std::uint32_t>,
                                std::uint64_t>>
          pairs,
      std::uint64_t total_windows);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept { return cols_.size(); }
  [[nodiscard]] std::uint64_t at(std::size_t r, std::size_t c) const noexcept {
    return counts_[r * cols_.size() + c];
  }
  [[nodiscard]] std::uint64_t row_total(std::size_t r) const noexcept {
    return row_windows_[r];
  }
  [[nodiscard]] std::uint64_t col_total(std::size_t c) const noexcept {
    return col_windows_[c];
  }
  /// Number of windows in the counted range.
  [[nodiscard]] std::uint64_t total_windows() const noexcept {
    return total_windows_;
  }
  [[nodiscard]] const std::vector<FunctionId>& rows() const noexcept {
    return rows_;
  }
  [[nodiscard]] const std::vector<FunctionId>& cols() const noexcept {
    return cols_;
  }

  /// PPMI between row r and column c under window-frequency probability
  /// estimates. 0 when either marginal is empty.
  [[nodiscard]] double Ppmi(std::size_t r, std::size_t c) const noexcept;

 private:
  std::vector<FunctionId> rows_;
  std::vector<FunctionId> cols_;
  std::vector<std::uint64_t> counts_;       // row-major
  std::vector<std::uint64_t> row_windows_;  // active windows per row fn
  std::vector<std::uint64_t> col_windows_;  // active windows per col fn
  std::uint64_t total_windows_ = 0;
};

/// Mines the weak dependencies of one client: unpredictable -> top-k
/// predictable by PPMI. `predictable` is indexed by FunctionId.
[[nodiscard]] std::vector<WeakDependency> MineWeakDependencies(
    const trace::InvocationTrace& trace, const trace::WorkloadModel& model,
    UserId user, const std::vector<bool>& predictable, TimeRange range,
    const PpmiConfig& config = {});

/// The PPMI top-k scoring stage over an already-accumulated matrix.
/// MineWeakDependencies is exactly: build matrix, Accumulate, this. The
/// delta-mining path loads streaming counts into the matrix instead.
[[nodiscard]] std::vector<WeakDependency> MineWeakDependenciesFromMatrix(
    const CooccurrenceMatrix& matrix, const PpmiConfig& config = {});

}  // namespace defuse::mining
