// Transaction building for dependency mining (paper §IV.B.2).
//
// For each client (user), the invocation records of all of her functions
// are bucketed into non-overlapping time windows; the set of functions
// with a non-zero invocation count in a window forms one transaction.
// FP-Growth then mines frequent itemsets over these transactions.
//
// Two practical details follow the paper's experiment section (§V.A):
//  * the time window is 1 minute (the trace granularity);
//  * FP-Growth's memory explodes on very wide transactions, so the
//    client's function universe is shuffled and split into overlapping
//    windows of `universe_window` functions with stride `universe_stride`
//    (paper: 20 / 10); transactions are projected onto each universe
//    window and mined separately.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "trace/invocation_trace.hpp"
#include "trace/model.hpp"

namespace defuse::mining {

/// A transaction: the distinct functions of one client active inside one
/// time window, in ascending id order.
using Transaction = std::vector<FunctionId>;

struct TransactionConfig {
  /// Time-window width in minutes (paper: 1).
  MinuteDelta window_minutes = 1;
  /// Skip transactions with fewer than this many functions: singleton
  /// windows carry no co-invocation signal.
  std::size_t min_items = 2;
};

/// Builds the transactions of one client over `range`.
[[nodiscard]] std::vector<Transaction> BuildUserTransactions(
    const trace::InvocationTrace& trace, const trace::WorkloadModel& model,
    UserId user, TimeRange range, const TransactionConfig& config = {});

/// A projection of a client's function universe (paper's shuffle +
/// window/stride trick).
struct UniverseWindow {
  std::vector<FunctionId> functions;  // ascending
};

/// Shuffles `universe` with `rng` and splits it into windows of
/// `window_size` with stride `stride` (paper: 20/10). The final window is
/// kept even if short. Returns kInvalidArgument when window_size < 1 or
/// stride is outside [1, window_size]: a stride wider than the window
/// would silently drop the functions between consecutive windows from
/// every split (they would never enter any FP-Growth pass), so the bad
/// config is rejected instead of being "handled". On success, every
/// input function appears in at least one window.
[[nodiscard]] Result<std::vector<UniverseWindow>> SplitUniverse(
    std::vector<FunctionId> universe, std::size_t window_size,
    std::size_t stride, Rng& rng);

/// Projects transactions onto a universe window, dropping any that end up
/// with fewer than `min_items` functions.
[[nodiscard]] std::vector<Transaction> ProjectTransactions(
    const std::vector<Transaction>& transactions,
    const UniverseWindow& window, std::size_t min_items = 2);

}  // namespace defuse::mining
