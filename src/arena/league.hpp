// The policy×scenario league: every policy spec simulated against every
// scenario spec, one metrics row per cell.
//
// A league run is deterministic end to end: scenarios are pure
// functions of (spec, seed), mining is deterministic, registry
// factories are deterministic, and the simulator is deterministic —
// the arena test suite pins reruns bit-identical for seeds 0–9.
//
// Per-cell metrics (the league table columns):
//   * event_cold_fraction   — cold invocation events / all events;
//   * p75_cold_rate         — 75th percentile of per-function cold-start
//     rates (the paper's Fig 7 headline statistic);
//   * avg_memory            — mean resident functions (memory proxy);
//   * wasted_memory_minutes — resident function-minutes in excess of
//     invoked function-minutes: what keep-alive paid for nothing;
//   * p99_cold_latency_ms   — 99th-percentile latency under the
//     two-point warm/cold latency model (cold latency proxy);
//   * avg_loads_per_minute  — scheduler overhead (Fig 9 proxy).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arena/registry.hpp"
#include "arena/scenarios.hpp"
#include "common/result.hpp"
#include "core/defuse.hpp"
#include "sim/simulator.hpp"

namespace defuse::arena {

struct LeagueConfig {
  /// Policy specs (e.g. "hybrid:set", "spes:tier=cost").
  std::vector<std::string> policies;
  /// Scenario specs (e.g. "azure_like", "huawei_bursty:users=100").
  std::vector<std::string> scenarios;
  std::uint64_t seed = 42;
  /// Scale overrides applied to every scenario (0 = leave the scenario's
  /// own scale; spec-level users=/days= take precedence over these).
  std::uint32_t num_users = 0;
  MinuteDelta horizon_minutes = 0;
  /// Mining configuration shared by every dependency-guided policy.
  core::DefuseConfig mining;
  sim::SimulatorOptions sim_options;
};

struct LeagueCell {
  std::string policy;    // the spec string
  std::string scenario;  // the spec string
  std::string policy_name;  // SchedulingPolicy::name()
  std::size_t num_units = 0;
  std::uint64_t invocation_minutes = 0;
  double event_cold_fraction = 0.0;
  double p75_cold_rate = 0.0;
  double avg_memory = 0.0;
  double wasted_memory_minutes = 0.0;
  double p99_cold_latency_ms = 0.0;
  double avg_loads_per_minute = 0.0;
  std::uint64_t triggered_prewarms = 0;
};

struct LeagueTable {
  /// Scenario-major, policy-minor — the cross-product order of the
  /// config's spec lists.
  std::vector<LeagueCell> cells;
};

/// Runs the full cross product. All specs are validated up front, so a
/// typo fails fast instead of after the first scenario's mining run.
/// kInvalidArgument names the offending spec token.
[[nodiscard]] Result<LeagueTable> RunLeague(const LeagueConfig& config);

/// CSV rendering (header + one row per cell), for the CLI `arena` verb.
[[nodiscard]] std::string RenderLeagueCsv(const LeagueTable& table);

/// Flat JSON object keyed "policy|scenario", one metrics object per
/// cell — the shape bench::MergeJsonSection expects for a section.
[[nodiscard]] std::string LeagueTableJson(const LeagueTable& table);

}  // namespace defuse::arena
