#include "arena/scenarios.hpp"

#include <algorithm>

namespace defuse::arena {
namespace {

/// Both knobs default to 0 = "use the scenario's own scale".
[[nodiscard]] std::vector<ParamInfo> ScaleParams() {
  return {ParamInfo{.key = "users",
                    .type = ParamType::kInt,
                    .description = "user count (0 = scenario default)",
                    .min_value = 0,
                    .max_value = 1000000,
                    .default_value = "0"},
          ParamInfo{.key = "days",
                    .type = ParamType::kInt,
                    .description = "horizon in days (0 = scenario default)",
                    .min_value = 0,
                    .max_value = 365,
                    .default_value = "0"}};
}

[[nodiscard]] std::vector<ScenarioEntry> BuildEntries() {
  std::vector<ScenarioEntry> entries;
  entries.push_back(ScenarioEntry{
      .name = "azure_like",
      .description = "Azure-trace-shaped default: 40/30/15/15 periodic/"
                     "poisson/diurnal/bursty trigger mix",
      .kind = trace::ScenarioKind::kAzureLike,
      .params = ScaleParams()});
  entries.push_back(ScenarioEntry{
      .name = "flat_poisson",
      .description = "memoryless control: every workflow Poisson over a "
                     "narrow gap range, nothing to predict",
      .kind = trace::ScenarioKind::kFlatPoisson,
      .params = ScaleParams()});
  entries.push_back(ScenarioEntry{
      .name = "huawei_bursty",
      .description = "Huawei-style sub-minute ON/OFF bursts: short dense "
                     "sessions, heavy per-firing fan-out",
      .kind = trace::ScenarioKind::kHuaweiBursty,
      .params = ScaleParams()});
  entries.push_back(ScenarioEntry{
      .name = "huawei_diurnal",
      .description = "strong day/night cycles: most apps fire only inside "
                     "long daily windows, densely while active",
      .kind = trace::ScenarioKind::kHuaweiDiurnal,
      .params = ScaleParams()});
  entries.push_back(ScenarioEntry{
      .name = "skew_extreme",
      .description = "extreme Zipfian skew: a small head takes almost all "
                     "traffic over a long rare-function tail",
      .kind = trace::ScenarioKind::kSkewExtreme,
      .params = ScaleParams()});
  std::sort(entries.begin(), entries.end(),
            [](const ScenarioEntry& a, const ScenarioEntry& b) {
              return a.name < b.name;
            });
  return entries;
}

}  // namespace

const ScenarioRegistry& ScenarioRegistry::Builtin() {
  static const ScenarioRegistry registry = [] {
    ScenarioRegistry r;
    r.entries_ = BuildEntries();
    return r;
  }();
  return registry;
}

const ScenarioEntry* ScenarioRegistry::Find(std::string_view name) const {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [name](const ScenarioEntry& e) { return e.name == name; });
  return it == entries_.end() ? nullptr : &*it;
}

Result<trace::ScenarioSpec> ScenarioRegistry::Resolve(
    std::string_view spec_text, std::uint64_t seed) const {
  auto parsed = ParseSpec(spec_text);
  if (!parsed.ok()) return parsed.error();
  const ParsedSpec& spec = parsed.value();
  const ScenarioEntry* entry = Find(spec.name);
  if (entry == nullptr) {
    std::string known;
    for (const ScenarioEntry& e : entries_) {
      if (!known.empty()) known += ", ";
      known += e.name;
    }
    return Error{.code = ErrorCode::kInvalidArgument,
                 .message = "unknown scenario '" + spec.name +
                            "' (known: " + known + ")"};
  }
  auto values = ResolveSpec(spec, entry->params);
  if (!values.ok()) return values.error();
  const SpecValues& v = values.value();
  trace::ScenarioSpec out;
  out.kind = entry->kind;
  out.seed = seed;
  out.num_users = static_cast<std::uint32_t>(v.GetInt("users"));
  out.horizon_minutes =
      static_cast<MinuteDelta>(v.GetInt("days")) * kMinutesPerDay;
  return out;
}

}  // namespace defuse::arena
