#include "arena/league.hpp"

#include <algorithm>
#include <cstdio>

#include "core/experiment.hpp"
#include "stats/descriptive.hpp"

namespace defuse::arena {
namespace {

[[nodiscard]] std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

/// Resident function-minutes the policy paid for beyond the invoked
/// function-minutes — the league's "wasted memory" column.
[[nodiscard]] double WastedMemoryMinutes(const sim::SimulationResult& result) {
  std::uint64_t resident = 0;
  for (const std::uint64_t loaded : result.loaded_functions) {
    resident += loaded;
  }
  if (resident <= result.function_invocation_minutes) return 0.0;
  return static_cast<double>(resident - result.function_invocation_minutes);
}

}  // namespace

Result<LeagueTable> RunLeague(const LeagueConfig& config) {
  if (config.policies.empty() || config.scenarios.empty()) {
    return Error{.code = ErrorCode::kInvalidArgument,
                 .message = "league needs at least one policy and one "
                            "scenario spec"};
  }

  // Validate every spec up front: a typo in the last policy must not
  // surface only after the first scenario's mining run.
  const PolicyRegistry& policies = PolicyRegistry::Builtin();
  const ScenarioRegistry& scenarios = ScenarioRegistry::Builtin();
  for (const std::string& spec : config.policies) {
    auto resolved = policies.Resolve(spec);
    if (!resolved.ok()) return resolved.error();
  }
  std::vector<trace::ScenarioSpec> scenario_specs;
  scenario_specs.reserve(config.scenarios.size());
  for (const std::string& spec : config.scenarios) {
    auto resolved = scenarios.Resolve(spec, config.seed);
    if (!resolved.ok()) return resolved.error();
    trace::ScenarioSpec s = std::move(resolved).value();
    if (s.num_users == 0) s.num_users = config.num_users;
    if (s.horizon_minutes == 0) s.horizon_minutes = config.horizon_minutes;
    scenario_specs.push_back(s);
  }

  LeagueTable table;
  table.cells.reserve(config.policies.size() * config.scenarios.size());
  for (std::size_t si = 0; si < scenario_specs.size(); ++si) {
    const trace::SyntheticWorkload workload =
        trace::GenerateScenario(scenario_specs[si]);
    const MinuteDelta horizon =
        trace::MakeScenarioConfig(scenario_specs[si]).horizon_minutes;
    const auto [train, eval] =
        core::SplitTrainEval(TimeRange{0, horizon});

    // One mining pass per scenario, shared by every dependency-guided
    // policy in the row.
    auto mined = core::MineDependencies(workload.trace, workload.model, train,
                                        config.mining);
    if (!mined.ok()) return mined.error();
    const core::MiningOutput mining = std::move(mined).value();

    PolicyBuildContext context;
    context.model = &workload.model;
    context.trace = &workload.trace;
    context.train = train;
    context.mining = &mining;

    for (const std::string& spec : config.policies) {
      auto built = policies.Build(context, spec);
      if (!built.ok()) return built.error();
      const std::unique_ptr<policy::SchedulingPolicy> policy =
          std::move(built).value();

      const sim::SimulationResult result =
          sim::Simulate(workload.trace, eval, *policy, config.sim_options);

      LeagueCell cell;
      cell.policy = spec;
      cell.scenario = config.scenarios[si];
      cell.policy_name = policy->name();
      cell.num_units = policy->unit_map().num_units();
      cell.invocation_minutes = result.function_invocation_minutes;
      cell.event_cold_fraction =
          result.function_invocation_minutes == 0
              ? 0.0
              : static_cast<double>(result.function_cold_minutes) /
                    static_cast<double>(result.function_invocation_minutes);
      cell.p75_cold_rate = result.ColdStartRatePercentile(policy->unit_map(),
                                                          0.75);
      cell.avg_memory = result.AverageMemoryUsage();
      cell.wasted_memory_minutes = WastedMemoryMinutes(result);
      cell.p99_cold_latency_ms = sim::LatencyPercentileMs(result, 0.99);
      cell.avg_loads_per_minute = result.AverageLoadingFunctions();
      cell.triggered_prewarms = result.triggered_prewarms;
      table.cells.push_back(std::move(cell));
    }
  }
  return table;
}

std::string RenderLeagueCsv(const LeagueTable& table) {
  std::string out =
      "scenario,policy,policy_name,num_units,invocation_minutes,"
      "event_cold_fraction,p75_cold_rate,avg_memory,wasted_memory_minutes,"
      "p99_cold_latency_ms,avg_loads_per_minute,triggered_prewarms\n";
  for (const LeagueCell& cell : table.cells) {
    out += cell.scenario;
    out += ',';
    out += cell.policy;
    out += ',';
    out += cell.policy_name;
    out += ',';
    out += std::to_string(cell.num_units);
    out += ',';
    out += std::to_string(cell.invocation_minutes);
    out += ',';
    out += FormatDouble(cell.event_cold_fraction);
    out += ',';
    out += FormatDouble(cell.p75_cold_rate);
    out += ',';
    out += FormatDouble(cell.avg_memory);
    out += ',';
    out += FormatDouble(cell.wasted_memory_minutes);
    out += ',';
    out += FormatDouble(cell.p99_cold_latency_ms);
    out += ',';
    out += FormatDouble(cell.avg_loads_per_minute);
    out += ',';
    out += std::to_string(cell.triggered_prewarms);
    out += '\n';
  }
  return out;
}

std::string LeagueTableJson(const LeagueTable& table) {
  std::string out = "{";
  bool first = true;
  for (const LeagueCell& cell : table.cells) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + cell.policy + "|" + cell.scenario + "\": {";
    out += "\"policy_name\": \"" + cell.policy_name + "\"";
    out += ", \"num_units\": " + std::to_string(cell.num_units);
    out += ", \"invocation_minutes\": " +
           std::to_string(cell.invocation_minutes);
    out += ", \"event_cold_fraction\": " +
           FormatDouble(cell.event_cold_fraction);
    out += ", \"p75_cold_rate\": " + FormatDouble(cell.p75_cold_rate);
    out += ", \"avg_memory\": " + FormatDouble(cell.avg_memory);
    out += ", \"wasted_memory_minutes\": " +
           FormatDouble(cell.wasted_memory_minutes);
    out += ", \"p99_cold_latency_ms\": " +
           FormatDouble(cell.p99_cold_latency_ms);
    out += ", \"avg_loads_per_minute\": " +
           FormatDouble(cell.avg_loads_per_minute);
    out += ", \"triggered_prewarms\": " +
           std::to_string(cell.triggered_prewarms);
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace defuse::arena
