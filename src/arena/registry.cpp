#include "arena/registry.hpp"

#include <algorithm>
#include <utility>

#include "mining/predictability.hpp"
#include "policy/diurnal.hpp"
#include "policy/fixed.hpp"
#include "policy/forecast_slot.hpp"
#include "policy/hiku.hpp"
#include "policy/hybrid.hpp"
#include "policy/predictor.hpp"
#include "policy/spes.hpp"

namespace defuse::arena {
namespace {

[[nodiscard]] Error MissingMining(const std::string& name) {
  return Error{.code = ErrorCode::kFailedPrecondition,
               .message = "policy '" + name +
                          "' needs mined dependencies (PolicyBuildContext::"
                          "mining is null)"};
}

/// Seeds a policy's per-unit idle-time histograms from the training
/// window — the exact procedure core::MakeDefuseScheduler and the
/// experiment driver use, so registry-built policies match them.
template <typename Policy>
void SeedUnitHistograms(Policy& policy, std::size_t histogram_bins,
                        MinuteDelta histogram_bin_width,
                        const trace::InvocationTrace& trace, TimeRange train) {
  mining::PredictabilityConfig shape;
  shape.histogram_bins = histogram_bins;
  shape.histogram_bin_width = histogram_bin_width;
  for (std::size_t u = 0; u < policy.unit_map().num_units(); ++u) {
    const UnitId unit{static_cast<std::uint32_t>(u)};
    const auto hist = mining::BuildGroupItHistogram(
        trace, policy.unit_map().functions_of(unit), train, shape);
    if (hist.total() > 0) policy.SeedHistogram(unit, hist);
  }
}

[[nodiscard]] ParamInfo AmpParam() {
  return ParamInfo{.key = "amp",
                   .type = ParamType::kDouble,
                   .description = "keep-alive amplification factor a",
                   .min_value = 0.1,
                   .max_value = 20.0,
                   .default_value = "1"};
}

[[nodiscard]] std::vector<PolicyEntry> BuildEntries() {
  std::vector<PolicyEntry> entries;

  entries.push_back(PolicyEntry{
      .name = "ar",
      .description = "hybrid at dependency-set granularity with the AR(1) "
                     "idle-time forecast branch enabled",
      .needs_mining = true,
      .params = {ParamInfo{.key = "band",
                           .type = ParamType::kDouble,
                           .description =
                               "residency half-width in residual sigmas",
                           .min_value = 0.25,
                           .max_value = 10.0,
                           .default_value = "2"},
                 AmpParam()},
      .factory = [](const PolicyBuildContext& ctx, const SpecValues& values)
          -> Result<std::unique_ptr<policy::SchedulingPolicy>> {
        if (ctx.mining == nullptr) return MissingMining("ar");
        policy::HybridConfig config;
        config.use_ar_fallback = true;
        config.ar_sigma_band = values.GetDouble("band");
        config.amplification = values.GetDouble("amp");
        return std::unique_ptr<policy::SchedulingPolicy>{core::MakeDefuseScheduler(
            *ctx.trace, *ctx.mining, ctx.train, config)};
      }});

  entries.push_back(PolicyEntry{
      .name = "diurnal",
      .description = "day-profile residency over dependency sets, hybrid "
                     "fallback for units without daily rhythm",
      .needs_mining = true,
      .params = {AmpParam()},
      .factory = [](const PolicyBuildContext& ctx, const SpecValues& values)
          -> Result<std::unique_ptr<policy::SchedulingPolicy>> {
        if (ctx.mining == nullptr) return MissingMining("diurnal");
        policy::DiurnalConfig config;
        config.hybrid.amplification = values.GetDouble("amp");
        auto diurnal = std::make_unique<policy::DiurnalPolicy>(
            graph::UnitMap::FromDependencySets(ctx.mining->sets,
                                             ctx.model->num_functions()),
            config);
        SeedUnitHistograms(*diurnal, config.hybrid.histogram_bins,
                           config.hybrid.histogram_bin_width, *ctx.trace,
                           ctx.train);
        for (std::size_t u = 0; u < diurnal->unit_map().num_units(); ++u) {
          const UnitId unit{static_cast<std::uint32_t>(u)};
          for (const FunctionId fn : diurnal->unit_map().functions_of(unit)) {
            for (const auto& e : ctx.trace->SeriesInRange(fn, ctx.train)) {
              diurnal->SeedDayProfile(unit, e.minute);
            }
          }
        }
        return std::unique_ptr<policy::SchedulingPolicy>{std::move(diurnal)};
      }});

  entries.push_back(PolicyEntry{
      .name = "fixed",
      .description = "fixed keep-alive per function (the production "
                     "10-minute baseline)",
      .needs_mining = false,
      .params = {ParamInfo{.key = "keepalive",
                           .type = ParamType::kInt,
                           .description = "keep-alive minutes",
                           .min_value = 1,
                           .max_value = 1440,
                           .default_value = "10"}},
      .factory = [](const PolicyBuildContext& ctx, const SpecValues& values)
          -> Result<std::unique_ptr<policy::SchedulingPolicy>> {
        return std::unique_ptr<policy::SchedulingPolicy>{
            std::make_unique<policy::FixedKeepAlivePolicy>(
                graph::UnitMap::PerFunction(ctx.model->num_functions()),
                static_cast<MinuteDelta>(values.GetInt("keepalive")))};
      }});

  entries.push_back(PolicyEntry{
      .name = "forecast",
      .description = "pluggable idle-time forecaster slot over dependency "
                     "sets (AR(1) occupant; swap in a learned model later)",
      .needs_mining = true,
      .params = {ParamInfo{.key = "band",
                           .type = ParamType::kDouble,
                           .description =
                               "residency half-width in uncertainty units",
                           .min_value = 0.25,
                           .max_value = 10.0,
                           .default_value = "2"},
                 ParamInfo{.key = "warm",
                           .type = ParamType::kInt,
                           .description =
                               "keep-alive minutes until the model is ready",
                           .min_value = 1,
                           .max_value = 240,
                           .default_value = "10"}},
      .factory = [](const PolicyBuildContext& ctx, const SpecValues& values)
          -> Result<std::unique_ptr<policy::SchedulingPolicy>> {
        if (ctx.mining == nullptr) return MissingMining("forecast");
        policy::ForecastSlotConfig config;
        config.sigma_band = values.GetDouble("band");
        config.fixed_keepalive =
            static_cast<MinuteDelta>(values.GetInt("warm"));
        return std::unique_ptr<policy::SchedulingPolicy>{
            std::make_unique<policy::ForecastSlotPolicy>(
                graph::UnitMap::FromDependencySets(ctx.mining->sets,
                                                 ctx.model->num_functions()),
                [] { return std::make_unique<policy::ArForecaster>(); },
                config)};
      }});

  entries.push_back(PolicyEntry{
      .name = "hiku",
      .description = "pull-based: no speculative residency, pre-warms only "
                     "dependency-graph successors of each invocation",
      .needs_mining = true,
      .params = {ParamInfo{.key = "delay",
                           .type = ParamType::kInt,
                           .description =
                               "minutes between trigger and target load",
                           .min_value = 1,
                           .max_value = 60,
                           .default_value = "1"},
                 ParamInfo{.key = "window",
                           .type = ParamType::kInt,
                           .description =
                               "triggered target residency minutes",
                           .min_value = 1,
                           .max_value = 240,
                           .default_value = "5"},
                 ParamInfo{.key = "self",
                           .type = ParamType::kInt,
                           .description =
                               "invoked unit's own linger minutes",
                           .min_value = 1,
                           .max_value = 240,
                           .default_value = "1"}},
      .factory = [](const PolicyBuildContext& ctx, const SpecValues& values)
          -> Result<std::unique_ptr<policy::SchedulingPolicy>> {
        if (ctx.mining == nullptr) return MissingMining("hiku");
        policy::HikuConfig config;
        config.trigger_delay = static_cast<MinuteDelta>(values.GetInt("delay"));
        config.trigger_keepalive =
            static_cast<MinuteDelta>(values.GetInt("window"));
        config.self_keepalive =
            static_cast<MinuteDelta>(values.GetInt("self"));
        // Function granularity: the mined graph's edges *are* the
        // function-level trigger edges (dependency sets would swallow
        // every edge into a single unit and leave nothing to trigger).
        return std::unique_ptr<policy::SchedulingPolicy>{
            std::make_unique<policy::HikuPullPolicy>(
                graph::UnitMap::PerFunction(ctx.model->num_functions()),
                ctx.mining->graph, config)};
      }});

  entries.push_back(PolicyEntry{
      .name = "hybrid",
      .description = "hybrid histogram policy (Shahrad et al.); variant "
                     "picks the unit granularity: set (Defuse), function "
                     "(fine), application (coarse)",
      .needs_mining = false,  // only the `set` variant needs mining
      .params = {ParamInfo{.key = "variant",
                           .type = ParamType::kEnum,
                           .description = "unit granularity",
                           .choices = {"set", "function", "application",
                                       "fine", "coarse", "app"},
                           .default_value = "set"},
                 AmpParam()},
      .factory = [](const PolicyBuildContext& ctx, const SpecValues& values)
          -> Result<std::unique_ptr<policy::SchedulingPolicy>> {
        policy::HybridConfig config;
        config.amplification = values.GetDouble("amp");
        const std::string& variant = values.GetEnum("variant");
        if (variant == "set") {
          if (ctx.mining == nullptr) return MissingMining("hybrid:set");
          return std::unique_ptr<policy::SchedulingPolicy>{
              core::MakeDefuseScheduler(*ctx.trace, *ctx.mining, ctx.train,
                                        config)};
        }
        if (variant == "function" || variant == "fine") {
          return std::unique_ptr<policy::SchedulingPolicy>{
              core::MakeHybridFunctionScheduler(*ctx.trace, *ctx.model,
                                                ctx.train, config)};
        }
        return std::unique_ptr<policy::SchedulingPolicy>{
            core::MakeHybridApplicationScheduler(*ctx.trace, *ctx.model,
                                                 ctx.train, config)};
      }});

  entries.push_back(PolicyEntry{
      .name = "predictor",
      .description = "periodicity predictor over dependency sets: tight "
                     "residency around the predicted next invocation",
      .needs_mining = true,
      .params = {AmpParam()},
      .factory = [](const PolicyBuildContext& ctx, const SpecValues& values)
          -> Result<std::unique_ptr<policy::SchedulingPolicy>> {
        if (ctx.mining == nullptr) return MissingMining("predictor");
        policy::PredictorConfig config;
        config.hybrid.amplification = values.GetDouble("amp");
        auto predictor = std::make_unique<policy::PeriodicityPredictorPolicy>(
            graph::UnitMap::FromDependencySets(ctx.mining->sets,
                                             ctx.model->num_functions()),
            config);
        SeedUnitHistograms(*predictor, config.hybrid.histogram_bins,
                           config.hybrid.histogram_bin_width, *ctx.trace,
                           ctx.train);
        return std::unique_ptr<policy::SchedulingPolicy>{std::move(predictor)};
      }});

  entries.push_back(PolicyEntry{
      .name = "spes",
      .description = "SPES-style cost/latency trade-off tiers per function "
                     "(tier scales residency aggressiveness)",
      .needs_mining = false,
      .params = {ParamInfo{.key = "tier",
                           .type = ParamType::kEnum,
                           .description = "trade-off tier",
                           .choices = {"latency", "balanced", "cost"},
                           .default_value = "balanced"}},
      .factory = [](const PolicyBuildContext& ctx, const SpecValues& values)
          -> Result<std::unique_ptr<policy::SchedulingPolicy>> {
        policy::SpesConfig config;
        const std::string& tier = values.GetEnum("tier");
        config.tier = tier == "latency"  ? policy::SpesTier::kLatency
                      : tier == "cost"   ? policy::SpesTier::kCost
                                         : policy::SpesTier::kBalanced;
        auto spes = std::make_unique<policy::SpesTieredPolicy>(
            graph::UnitMap::PerFunction(ctx.model->num_functions()), config);
        SeedUnitHistograms(*spes, config.histogram_bins,
                           config.histogram_bin_width, *ctx.trace, ctx.train);
        return std::unique_ptr<policy::SchedulingPolicy>{std::move(spes)};
      }});

  std::sort(entries.begin(), entries.end(),
            [](const PolicyEntry& a, const PolicyEntry& b) {
              return a.name < b.name;
            });
  return entries;
}

}  // namespace

const PolicyRegistry& PolicyRegistry::Builtin() {
  static const PolicyRegistry registry = [] {
    PolicyRegistry r;
    r.entries_ = BuildEntries();
    return r;
  }();
  return registry;
}

const PolicyEntry* PolicyRegistry::Find(std::string_view name) const {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [name](const PolicyEntry& e) { return e.name == name; });
  return it == entries_.end() ? nullptr : &*it;
}

Result<ResolvedPolicySpec> PolicyRegistry::Resolve(
    std::string_view spec_text) const {
  auto parsed = ParseSpec(spec_text);
  if (!parsed.ok()) return parsed.error();
  ResolvedPolicySpec resolved;
  resolved.spec = std::move(parsed).value();
  resolved.entry = Find(resolved.spec.name);
  if (resolved.entry == nullptr) {
    std::string known;
    for (const PolicyEntry& e : entries_) {
      if (!known.empty()) known += ", ";
      known += e.name;
    }
    return Error{.code = ErrorCode::kInvalidArgument,
                 .message = "unknown policy '" + resolved.spec.name +
                            "' (known: " + known + ")"};
  }
  auto values = ResolveSpec(resolved.spec, resolved.entry->params);
  if (!values.ok()) return values.error();
  resolved.values = std::move(values).value();
  return resolved;
}

Result<std::unique_ptr<policy::SchedulingPolicy>> PolicyRegistry::Build(
    const PolicyBuildContext& context, std::string_view spec_text) const {
  if (context.model == nullptr || context.trace == nullptr) {
    return Error{.code = ErrorCode::kFailedPrecondition,
                 .message = "PolicyBuildContext needs model and trace"};
  }
  auto resolved = Resolve(spec_text);
  if (!resolved.ok()) return resolved.error();
  const ResolvedPolicySpec& r = resolved.value();
  return r.entry->factory(context, r.values);
}

Result<bool> PolicyRegistry::Register(PolicyEntry entry) {
  if (Find(entry.name) != nullptr) {
    return Error{.code = ErrorCode::kInvalidArgument,
                 .message = "policy '" + entry.name + "' already registered"};
  }
  entries_.push_back(std::move(entry));
  std::sort(entries_.begin(), entries_.end(),
            [](const PolicyEntry& a, const PolicyEntry& b) {
              return a.name < b.name;
            });
  return true;
}

}  // namespace defuse::arena
