#include "arena/spec.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace defuse::arena {
namespace {

[[nodiscard]] bool IsNameChar(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
         c == '-';
}

[[nodiscard]] bool IsValueChar(char c) noexcept {
  return IsNameChar(c) || (c >= 'A' && c <= 'Z') || c == '.' || c == '+';
}

[[nodiscard]] bool ValidName(std::string_view s) noexcept {
  return !s.empty() && std::all_of(s.begin(), s.end(), IsNameChar);
}

[[nodiscard]] bool ValidValue(std::string_view s) noexcept {
  return !s.empty() && std::all_of(s.begin(), s.end(), IsValueChar);
}

[[nodiscard]] Error Invalid(std::string message) {
  return Error{.code = ErrorCode::kInvalidArgument,
               .message = std::move(message)};
}

/// Strict whole-string numeric parses (strtod/strtoll accept trailing
/// garbage on their own).
[[nodiscard]] bool ParseDouble(const std::string& text, double& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return errno == 0 && end != nullptr && *end == '\0' && end != text.c_str();
}

[[nodiscard]] bool ParseInt(const std::string& text, std::int64_t& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtoll(text.c_str(), &end, 10);
  return errno == 0 && end != nullptr && *end == '\0' && end != text.c_str();
}

[[nodiscard]] std::string FormatNumber(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof buf, "%g", v);
  }
  return buf;
}

}  // namespace

Result<ParsedSpec> ParseSpec(std::string_view text) {
  if (text.empty()) return Invalid("empty spec");
  ParsedSpec spec;
  const std::size_t colon = text.find(':');
  const std::string_view name = text.substr(0, colon);
  if (!ValidName(name)) {
    return Invalid("spec '" + std::string{text} + "': invalid name '" +
                   std::string{name} + "' (want lowercase [a-z0-9_-])");
  }
  spec.name = std::string{name};
  if (colon == std::string_view::npos) return spec;

  std::string_view rest = text.substr(colon + 1);
  if (rest.empty()) {
    return Invalid("spec '" + std::string{text} +
                   "': empty parameter list after ':'");
  }
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view token = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (token.empty()) {
      return Invalid("spec '" + std::string{text} + "': empty token");
    }
    const std::size_t eq = token.find('=');
    std::string key;
    std::string value;
    if (eq == std::string_view::npos) {
      // Bare word: sugar for variant=<word>.
      if (!ValidValue(token)) {
        return Invalid("spec '" + std::string{text} + "': invalid token '" +
                       std::string{token} + "'");
      }
      key = "variant";
      value = std::string{token};
    } else {
      key = std::string{token.substr(0, eq)};
      value = std::string{token.substr(eq + 1)};
      if (!ValidName(key) || !ValidValue(value)) {
        return Invalid("spec '" + std::string{text} + "': malformed token '" +
                       std::string{token} + "' (want key=value)");
      }
    }
    for (const auto& [seen_key, seen_value] : spec.params) {
      if (seen_key == key) {
        return Invalid("spec '" + std::string{text} + "': duplicate key '" +
                       key + "' in token '" + std::string{token} + "'");
      }
    }
    spec.params.emplace_back(std::move(key), std::move(value));
  }
  return spec;
}

Result<SpecValues> ResolveSpec(const ParsedSpec& spec,
                               const std::vector<ParamInfo>& schema) {
  SpecValues values;
  values.entries_.reserve(schema.size());

  for (const auto& [key, value] : spec.params) {
    const auto it =
        std::find_if(schema.begin(), schema.end(),
                     [&key = key](const ParamInfo& p) { return p.key == key; });
    if (it == schema.end()) {
      std::string known;
      for (const ParamInfo& p : schema) {
        if (!known.empty()) known += ", ";
        known += p.key;
      }
      return Invalid("spec '" + spec.name + "': unknown parameter '" + key +
                     "'" + (known.empty() ? " (takes no parameters)"
                                          : " (known: " + known + ")"));
    }
    SpecValues::Entry entry;
    entry.key = key;
    entry.type = it->type;
    entry.text = value;
    entry.explicit_value = true;
    switch (it->type) {
      case ParamType::kInt: {
        if (!ParseInt(value, entry.integer)) {
          return Invalid("spec '" + spec.name + "': parameter '" + key +
                         "=" + value + "' is not an integer");
        }
        const double v = static_cast<double>(entry.integer);
        if (v < it->min_value || v > it->max_value) {
          return Invalid("spec '" + spec.name + "': parameter '" + key + "=" +
                         value + "' out of range [" +
                         FormatNumber(it->min_value) + ", " +
                         FormatNumber(it->max_value) + "]");
        }
        entry.number = v;
        break;
      }
      case ParamType::kDouble: {
        if (!ParseDouble(value, entry.number)) {
          return Invalid("spec '" + spec.name + "': parameter '" + key + "=" +
                         value + "' is not a number");
        }
        if (entry.number < it->min_value || entry.number > it->max_value) {
          return Invalid("spec '" + spec.name + "': parameter '" + key + "=" +
                         value + "' out of range [" +
                         FormatNumber(it->min_value) + ", " +
                         FormatNumber(it->max_value) + "]");
        }
        entry.integer = static_cast<std::int64_t>(entry.number);
        break;
      }
      case ParamType::kEnum: {
        if (std::find(it->choices.begin(), it->choices.end(), value) ==
            it->choices.end()) {
          std::string choices;
          for (const std::string& c : it->choices) {
            if (!choices.empty()) choices += ", ";
            choices += c;
          }
          return Invalid("spec '" + spec.name + "': parameter '" + key + "=" +
                         value + "' is not a valid choice (want one of: " +
                         choices + ")");
        }
        break;
      }
    }
    values.entries_.push_back(std::move(entry));
  }

  // Fill defaults for everything the spec left out. Schema defaults are
  // authored in-tree, so a malformed one is a programming error: abort
  // loudly rather than propagate a half-resolved bag.
  for (const ParamInfo& p : schema) {
    const bool present = std::any_of(
        values.entries_.begin(), values.entries_.end(),
        [&p](const SpecValues::Entry& e) { return e.key == p.key; });
    if (present) continue;
    SpecValues::Entry entry;
    entry.key = p.key;
    entry.type = p.type;
    entry.text = p.default_value;
    entry.explicit_value = false;
    bool ok = true;
    switch (p.type) {
      case ParamType::kInt:
        ok = ParseInt(p.default_value, entry.integer);
        entry.number = static_cast<double>(entry.integer);
        break;
      case ParamType::kDouble:
        ok = ParseDouble(p.default_value, entry.number);
        entry.integer = static_cast<std::int64_t>(entry.number);
        break;
      case ParamType::kEnum:
        ok = std::find(p.choices.begin(), p.choices.end(), p.default_value) !=
             p.choices.end();
        break;
    }
    if (!ok) {
      std::fprintf(stderr, "defuse: fatal: schema default '%s=%s' malformed\n",
                   p.key.c_str(), p.default_value.c_str());
      std::abort();
    }
    values.entries_.push_back(std::move(entry));
  }

  std::sort(values.entries_.begin(), values.entries_.end(),
            [](const SpecValues::Entry& a, const SpecValues::Entry& b) {
              return a.key < b.key;
            });
  return values;
}

const SpecValues::Entry& SpecValues::Lookup(std::string_view key,
                                            ParamType expected) const {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [key](const Entry& e) { return e.key == key; });
  if (it == entries_.end() || it->type != expected) {
    // Factories are authored against their own schema; a miss is a
    // programming error, not user input.
    std::fprintf(stderr, "defuse: fatal: spec value lookup '%.*s' %s\n",
                 static_cast<int>(key.size()), key.data(),
                 it == entries_.end() ? "missing" : "has the wrong type");
    std::abort();
  }
  return *it;
}

std::int64_t SpecValues::GetInt(std::string_view key) const {
  return Lookup(key, ParamType::kInt).integer;
}

double SpecValues::GetDouble(std::string_view key) const {
  return Lookup(key, ParamType::kDouble).number;
}

const std::string& SpecValues::GetEnum(std::string_view key) const {
  return Lookup(key, ParamType::kEnum).text;
}

bool SpecValues::WasExplicit(std::string_view key) const {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [key](const Entry& e) { return e.key == key; });
  return it != entries_.end() && it->explicit_value;
}

std::string DescribeParam(const ParamInfo& info) {
  std::string out = info.key;
  out += "=<";
  switch (info.type) {
    case ParamType::kInt:
      out += "int [" + FormatNumber(info.min_value) + ", " +
             FormatNumber(info.max_value) + "]";
      break;
    case ParamType::kDouble:
      out += "double [" + FormatNumber(info.min_value) + ", " +
             FormatNumber(info.max_value) + "]";
      break;
    case ParamType::kEnum: {
      for (std::size_t i = 0; i < info.choices.size(); ++i) {
        if (i > 0) out += "|";
        out += info.choices[i];
      }
      break;
    }
  }
  out += ", default " + info.default_value + ">";
  return out;
}

}  // namespace defuse::arena
