// The scenario side of the arena: named workload presets behind the
// same spec grammar as policies (`huawei_bursty`,
// `skew_extreme:users=500,days=7`). A scenario spec resolves to a
// trace::ScenarioSpec — a pure description; the workload itself is a
// deterministic function of (spec, seed) via trace::GenerateScenario.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "arena/spec.hpp"
#include "common/result.hpp"
#include "trace/generator.hpp"

namespace defuse::arena {

struct ScenarioEntry {
  std::string name;
  std::string description;
  trace::ScenarioKind kind = trace::ScenarioKind::kAzureLike;
  std::vector<ParamInfo> params;
};

class ScenarioRegistry {
 public:
  [[nodiscard]] static const ScenarioRegistry& Builtin();

  /// Entries sorted by name.
  [[nodiscard]] const std::vector<ScenarioEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] const ScenarioEntry* Find(std::string_view name) const;

  /// Parses + schema-checks a scenario spec and stamps `seed` into the
  /// result. kInvalidArgument (naming the offending token) on grammar
  /// errors, unknown scenarios, or bad parameters.
  [[nodiscard]] Result<trace::ScenarioSpec> Resolve(std::string_view spec_text,
                                                    std::uint64_t seed) const;

 private:
  std::vector<ScenarioEntry> entries_;
};

}  // namespace defuse::arena
