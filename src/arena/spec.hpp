// Spec strings: the arena's tiny configuration grammar.
//
// Policies and scenarios are addressed by compact specs on the CLI and
// in bench configs:
//
//   spec    :=  name [ ':' token ( ',' token )* ]
//   token   :=  key '=' value
//             | value                (sugar for  variant=value)
//
// e.g. `fixed`, `hybrid:coarse`, `spes:tier=balanced`,
// `hiku:delay=1,window=5`. Names and keys are lowercase
// [a-z0-9_-]; values additionally allow digits, '.', '+' and '-'.
//
// A registry entry publishes its parameter schema as ParamInfo rows;
// ResolveSpec checks a parsed spec against the schema (unknown keys,
// duplicates, type errors, out-of-range values all reject with
// kInvalidArgument naming the offending token) and fills defaults,
// yielding a SpecValues bag the factory reads with typed getters.
// Everything here is pure string processing — deterministic by
// construction.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace defuse::arena {

enum class ParamType : std::uint8_t { kInt, kDouble, kEnum };

/// One parameter a registry entry accepts.
struct ParamInfo {
  std::string key;
  ParamType type = ParamType::kDouble;
  std::string description;
  /// Inclusive numeric range (kInt / kDouble).
  double min_value = 0.0;
  double max_value = 0.0;
  /// Accepted values (kEnum). The first choice is not special.
  std::vector<std::string> choices = {};
  /// Textual default, applied when the spec omits the key.
  std::string default_value;
};

/// A spec split into name + (key, value) pairs, in spec order, with the
/// bare-word `variant=` sugar already expanded.
struct ParsedSpec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> params;
};

/// Parses the grammar above. Rejects empty names/tokens, malformed
/// charset, and duplicate keys with kInvalidArgument naming the token.
[[nodiscard]] Result<ParsedSpec> ParseSpec(std::string_view text);

/// A resolved parameter bag: every schema key present exactly once,
/// either from the spec or from its default.
class [[nodiscard]] SpecValues {
 public:
  [[nodiscard]] std::int64_t GetInt(std::string_view key) const;
  [[nodiscard]] double GetDouble(std::string_view key) const;
  [[nodiscard]] const std::string& GetEnum(std::string_view key) const;
  /// True when the spec set the key explicitly (vs. the default).
  [[nodiscard]] bool WasExplicit(std::string_view key) const;

 private:
  friend Result<SpecValues> ResolveSpec(const ParsedSpec& spec,
                                        const std::vector<ParamInfo>& schema);
  struct Entry {
    std::string key;
    ParamType type;
    std::string text;       // enum value / original token text
    double number = 0.0;    // kDouble (and kInt, as a convenience)
    std::int64_t integer = 0;
    bool explicit_value = false;
  };
  /// Sorted by key.
  std::vector<Entry> entries_;

  [[nodiscard]] const Entry& Lookup(std::string_view key,
                                    ParamType expected) const;
};

/// Validates `spec`'s parameters against `schema` and fills defaults.
/// kInvalidArgument on unknown keys, type mismatches, or out-of-range
/// values — the message names the offending token.
[[nodiscard]] Result<SpecValues> ResolveSpec(
    const ParsedSpec& spec, const std::vector<ParamInfo>& schema);

/// Renders a schema row for `defuse policies` / `defuse scenarios`:
/// "key=<int [1,60], default 5>"-style.
[[nodiscard]] std::string DescribeParam(const ParamInfo& info);

}  // namespace defuse::arena
