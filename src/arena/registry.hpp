// The policy arena: a registry mapping policy names to factories and
// parameter schemas, so every scheduler in the tree — the hybrid family,
// the diurnal/predictor extensions, and the SPES/Hiku/forecast-slot
// competitors — is constructible from a spec string like
// `hybrid:coarse` or `spes:tier=balanced`.
//
// Construction is deterministic: a factory is a pure function of
// (PolicyBuildContext, SpecValues). Factories never touch clocks, RNGs,
// or the environment (enforced by defuse-lint over src/arena), so a
// registry-built policy is byte-identical to the directly-constructed
// one — the arena determinism suite pins `hybrid:set` against
// core::MakeDefuseScheduler to keep it that way.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "arena/spec.hpp"
#include "common/result.hpp"
#include "core/defuse.hpp"
#include "policy/scheduling_policy.hpp"
#include "trace/invocation_trace.hpp"
#include "trace/model.hpp"

namespace defuse::arena {

/// Everything a policy factory may consume. `model` and `trace` are
/// always required; `mining` only by dependency-guided policies (the
/// factory rejects with kFailedPrecondition when it is missing).
struct PolicyBuildContext {
  const trace::WorkloadModel* model = nullptr;
  const trace::InvocationTrace* trace = nullptr;
  /// Training window: histogram/day-profile seeding reads trace events
  /// inside it, never outside.
  TimeRange train;
  const core::MiningOutput* mining = nullptr;
};

using PolicyFactory =
    std::function<Result<std::unique_ptr<policy::SchedulingPolicy>>(
        const PolicyBuildContext&, const SpecValues&)>;

struct PolicyEntry {
  std::string name;
  std::string description;
  /// True when the factory needs PolicyBuildContext::mining.
  bool needs_mining = false;
  std::vector<ParamInfo> params;
  PolicyFactory factory;
};

/// A spec string parsed, matched to its entry, and schema-checked —
/// everything short of construction.
struct ResolvedPolicySpec {
  ParsedSpec spec;
  SpecValues values;
  const PolicyEntry* entry = nullptr;
};

class PolicyRegistry {
 public:
  /// The built-in registry (function-local static; construction is
  /// data-only and thread-safe).
  [[nodiscard]] static const PolicyRegistry& Builtin();

  /// Entries sorted by name.
  [[nodiscard]] const std::vector<PolicyEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] const PolicyEntry* Find(std::string_view name) const;

  /// Parses + schema-checks a spec string. kInvalidArgument (naming the
  /// offending token) on grammar errors, unknown policies, unknown/
  /// duplicate/out-of-range parameters.
  [[nodiscard]] Result<ResolvedPolicySpec> Resolve(
      std::string_view spec_text) const;

  /// Resolve + construct.
  [[nodiscard]] Result<std::unique_ptr<policy::SchedulingPolicy>> Build(
      const PolicyBuildContext& context, std::string_view spec_text) const;

  /// Registers an entry (tests and out-of-tree extensions). Keeps the
  /// entry list sorted; rejects duplicate names.
  [[nodiscard]] Result<bool> Register(PolicyEntry entry);

 private:
  std::vector<PolicyEntry> entries_;
};

}  // namespace defuse::arena
