// Container-level (concurrency-aware) platform simulator.
//
// The minute-tick simulator in simulator.hpp models *unit residency*: a
// dependency set is either loaded or not, and per-minute invocation
// counts collapse to "active this minute". Real platforms run one
// container per concurrent execution — a burst of c invocations of a
// function in one minute needs c containers, and each container has its
// own keep-alive clock (AWS/Azure semantics; Shahrad et al. §3).
//
// This simulator honors the trace's per-minute counts:
//   * every function keeps a pool of warm containers (expiry times);
//   * an invocation batch of c first reuses warm containers, then cold-
//     spawns the difference — each spawn is a cold start event;
//   * used containers are refreshed to expire per the unit's decision
//     (the scheduling unit still decides pre-warm/keep-alive — Defuse's
//     granularity applies unchanged);
//   * a unit pre-warm spawns one container per member function.
//
// Memory is measured in resident container-minutes (a container hosts
// one function, so this generalizes the paper's loaded-function count).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/metrics.hpp"
#include "policy/scheduling_policy.hpp"
#include "trace/invocation_trace.hpp"

namespace defuse::sim {

struct ConcurrencyResult {
  TimeRange eval_range;

  /// Per unit: total invocation events (sum of counts) and cold events
  /// (container spawns forced by arriving invocations).
  std::vector<std::uint64_t> unit_invocation_events;
  std::vector<std::uint64_t> unit_cold_events;

  /// Per minute: resident containers at minute end, containers spawned
  /// during the minute (cold + pre-warm).
  std::vector<std::uint64_t> resident_containers;
  std::vector<std::uint64_t> spawned_containers;

  std::uint64_t total_invocation_events = 0;
  std::uint64_t total_cold_events = 0;

  /// Event-level cold-start rate per invoked function (unit-inherited,
  /// as in the paper).
  [[nodiscard]] std::vector<double> FunctionColdStartRates(
      const graph::UnitMap& units) const;
  [[nodiscard]] double AverageResidentContainers() const;
  [[nodiscard]] double EventColdFraction() const;
};

/// Runs `policy` over `eval` with container-level semantics.
[[nodiscard]] ConcurrencyResult SimulateConcurrent(
    const trace::InvocationTrace& trace, TimeRange eval,
    policy::SchedulingPolicy& policy);

}  // namespace defuse::sim
