#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <vector>

namespace defuse::sim {
namespace {

struct UnitState {
  bool loaded = false;
  bool cold_this_minute = false;
  Minute last_invocation = -1;
  /// Scheduled events carry the generation they were issued under; a
  /// fresh decision bumps it, invalidating anything still in flight.
  std::uint32_t generation = 0;
  /// Latest scheduled eviction minute under the current generation
  /// (-1: none). Triggered pre-warms only apply when they extend it.
  Minute horizon = -1;
};

enum class EventKind : std::uint8_t { kLoad, kEvict };

struct ScheduledEvent {
  std::uint32_t unit;
  std::uint32_t generation;
  EventKind kind;
};

}  // namespace

SimulationResult Simulate(const trace::InvocationTrace& trace, TimeRange eval,
                          policy::SchedulingPolicy& policy,
                          const SimulatorOptions& options) {
  const graph::UnitMap& units = policy.unit_map();
  assert(units.num_functions() == trace.num_functions());
  const auto num_units = units.num_units();
  const auto eval_len =
      static_cast<std::size_t>(std::max<MinuteDelta>(eval.length(), 0));

  SimulationResult result;
  result.eval_range = eval;
  result.unit_invoked_minutes.assign(num_units, 0);
  result.unit_cold_minutes.assign(num_units, 0);
  result.loaded_functions.assign(eval_len, 0);
  result.loading_functions.assign(eval_len, 0);

  std::vector<UnitState> state(num_units);
  // Event buckets indexed by minute offset. Events past the window are
  // dropped: nothing after eval.end is accounted.
  std::vector<std::vector<ScheduledEvent>> buckets(eval_len);
  const auto schedule = [&](Minute when, ScheduledEvent event) {
    assert(when > eval.begin);
    const auto offset = static_cast<std::size_t>(when - eval.begin);
    if (offset < eval_len) buckets[offset].push_back(event);
  };

  const auto index = trace.BuildMinuteIndex(eval);
  std::uint64_t resident_functions = 0;
  double resident_weight = 0.0;
  // (unit, previous invocation minute) pairs, rebuilt each minute.
  std::vector<std::pair<std::uint32_t, Minute>> invoked_units;
  // Cross-unit pre-warm requests collected this minute, rebuilt each
  // minute (pull-based policies; empty for everything else).
  std::vector<policy::PrewarmRequest> triggered;

  // Optional weighted-memory accounting (see SimulatorOptions).
  const bool weighted = options.function_weights != nullptr;
  std::vector<double> unit_weights;
  if (weighted) {
    assert(options.function_weights->size() == units.num_functions());
    unit_weights.resize(num_units, 0.0);
    for (std::size_t u = 0; u < num_units; ++u) {
      for (const FunctionId fn :
           units.functions_of(UnitId{static_cast<std::uint32_t>(u)})) {
        unit_weights[u] += (*options.function_weights)[fn.value()];
      }
    }
    result.loaded_weight.assign(eval_len, 0.0);
  }

  // LRU index over resident units (only maintained under a memory
  // limit): ordered by (last invocation, unit id).
  std::set<std::pair<Minute, std::uint32_t>> lru;
  const bool limited = options.memory_limit > 0;

  const auto do_load = [&](std::uint32_t unit, std::size_t offset) {
    UnitState& u = state[unit];
    if (u.loaded) return;
    u.loaded = true;
    const std::uint32_t size = units.unit_size(UnitId{unit});
    resident_functions += size;
    if (weighted) resident_weight += unit_weights[unit];
    result.loading_functions[offset] += size;
    if (limited) lru.emplace(u.last_invocation, unit);
  };
  const auto do_evict = [&](std::uint32_t unit) {
    UnitState& u = state[unit];
    if (!u.loaded) return;
    u.loaded = false;
    resident_functions -= units.unit_size(UnitId{unit});
    if (weighted) resident_weight -= unit_weights[unit];
    if (limited) lru.erase({u.last_invocation, unit});
  };
  // Evicts least-recently-invoked units until `incoming` more functions
  // fit, never touching `protect` or units invoked at `now`.
  const auto make_room = [&](std::uint32_t incoming, std::uint32_t protect,
                             Minute now) {
    if (!limited) return;
    auto it = lru.begin();
    while (resident_functions + incoming > options.memory_limit &&
           it != lru.end()) {
      const auto [last, victim] = *it;
      if (victim == protect || last == now) {
        ++it;  // in use this minute; not evictable
        continue;
      }
      it = lru.erase(it);
      UnitState& v = state[victim];
      v.loaded = false;
      ++v.generation;  // cancel the victim's scheduled events
      v.horizon = -1;
      resident_functions -= units.unit_size(UnitId{victim});
      if (weighted) resident_weight -= unit_weights[victim];
      ++result.capacity_evictions;
    }
  };

  for (std::size_t offset = 0; offset < eval_len; ++offset) {
    const Minute now = eval.begin + static_cast<Minute>(offset);

    // 1. Scheduled events. Loads before evictions: the only same-minute
    // (load, evict) collision under the scheduling rules below is a
    // stale evict vs. a current load, and the stale one is discarded by
    // its generation anyway — processing loads first keeps the invariant
    // that a current load is never undone by an older decision.
    auto& due = buckets[offset];
    std::stable_sort(due.begin(), due.end(),
                     [](const ScheduledEvent& a, const ScheduledEvent& b) {
                       return a.kind < b.kind;  // kLoad < kEvict
                     });
    for (const ScheduledEvent& event : due) {
      UnitState& u = state[event.unit];
      if (event.generation != u.generation) continue;  // superseded
      if (event.kind == EventKind::kLoad) {
        if (!u.loaded) {
          make_room(units.unit_size(UnitId{event.unit}), event.unit, now);
          do_load(event.unit, offset);
        }
      } else {
        do_evict(event.unit);
      }
    }
    due.clear();
    due.shrink_to_fit();

    // 2. Invocations. The first function that touches a unit this minute
    // resolves it (warm if resident, else a cold start that loads it);
    // members arriving later in the same minute share that resolution.
    invoked_units.clear();
    for (const auto& [fn, count] : index.at(now)) {
      const UnitId unit = units.unit_of(fn);
      UnitState& u = state[unit.value()];
      ++result.function_invocation_minutes;
      if (u.last_invocation != now) {
        const Minute prev = u.last_invocation;
        u.cold_this_minute = !u.loaded;
        ++result.unit_invoked_minutes[unit.value()];
        if (u.cold_this_minute) {
          ++result.unit_cold_minutes[unit.value()];
          make_room(units.unit_size(unit), unit.value(), now);
          do_load(unit.value(), offset);
        }
        // Refresh the LRU position before advancing last_invocation.
        if (limited) {
          lru.erase({u.last_invocation, unit.value()});
          lru.insert({now, unit.value()});
        }
        u.last_invocation = now;
        invoked_units.emplace_back(unit.value(), prev);
      }
      if (u.cold_this_minute) ++result.function_cold_minutes;
    }

    // 3. Fresh decisions for every unit invoked this minute.
    for (const auto& [unit_value, prev] : invoked_units) {
      const UnitId unit{unit_value};
      UnitState& u = state[unit_value];
      if (prev >= 0 && options.online_updates) {
        policy.ObserveIdleTime(unit, now - prev);
      }
      ++u.generation;  // invalidate anything previously scheduled
      policy::UnitDecision decision = policy.OnInvocation(unit, now);
      assert(decision.prewarm >= 0);
      assert(decision.keepalive >= 0);
      assert(decision.linger >= 1);
      if (decision.prewarm <= decision.linger) {
        // The pre-warm would land while the unit still lingers: that is
        // continuous residency, with one fewer (fake) unload/reload.
        decision.keepalive = std::max(decision.linger,
                                      decision.prewarm + decision.keepalive);
        decision.prewarm = 0;
      }
      if (decision.prewarm == 0) {
        u.horizon = now + std::max<MinuteDelta>(decision.keepalive, 1);
        schedule(u.horizon, ScheduledEvent{.unit = unit_value,
                                           .generation = u.generation,
                                           .kind = EventKind::kEvict});
      } else {
        schedule(now + std::max<MinuteDelta>(decision.linger, 1),
                 ScheduledEvent{.unit = unit_value,
                                .generation = u.generation,
                                .kind = EventKind::kEvict});
        schedule(now + decision.prewarm,
                 ScheduledEvent{.unit = unit_value,
                                .generation = u.generation,
                                .kind = EventKind::kLoad});
        u.horizon = now + decision.prewarm +
                    std::max<MinuteDelta>(decision.keepalive, 1);
        schedule(u.horizon, ScheduledEvent{.unit = unit_value,
                                           .generation = u.generation,
                                           .kind = EventKind::kEvict});
      }
    }

    // 3b. Cross-unit pre-warms triggered by this minute's invocations
    // (pull-based policies). Requests are aggregated per target —
    // earliest load, latest eviction — and applied only when they
    // extend the target's residency horizon; applying one supersedes
    // the target's in-flight schedule, exactly like a fresh decision.
    triggered.clear();
    for (const auto& [unit_value, prev] : invoked_units) {
      (void)prev;
      policy.CollectTriggeredPrewarms(UnitId{unit_value}, now, triggered);
    }
    if (!triggered.empty()) {
      std::stable_sort(triggered.begin(), triggered.end(),
                       [](const policy::PrewarmRequest& a, const policy::PrewarmRequest& b) {
                         return a.unit.value() < b.unit.value();
                       });
      std::size_t i = 0;
      while (i < triggered.size()) {
        const std::uint32_t target = triggered[i].unit.value();
        MinuteDelta delay = std::max<MinuteDelta>(triggered[i].delay, 1);
        Minute end =
            now + delay + std::max<MinuteDelta>(triggered[i].keepalive, 1);
        for (++i; i < triggered.size() && triggered[i].unit.value() == target;
             ++i) {
          const auto d = std::max<MinuteDelta>(triggered[i].delay, 1);
          delay = std::min(delay, d);
          end = std::max(
              end, now + d + std::max<MinuteDelta>(triggered[i].keepalive, 1));
        }
        assert(target < num_units);
        UnitState& v = state[target];
        if (v.last_invocation == now) continue;  // own decision governs
        if (v.horizon >= end) continue;          // already resident longer
        ++v.generation;  // supersede the target's in-flight schedule
        if (!v.loaded) {
          schedule(now + delay, ScheduledEvent{.unit = target,
                                               .generation = v.generation,
                                               .kind = EventKind::kLoad});
        }
        v.horizon = end;
        schedule(end, ScheduledEvent{.unit = target,
                                     .generation = v.generation,
                                     .kind = EventKind::kEvict});
        ++result.triggered_prewarms;
      }
    }

    // 4. Memory sample at the end of the minute.
    result.loaded_functions[offset] = resident_functions;
    if (weighted) result.loaded_weight[offset] = resident_weight;
  }
  return result;
}

}  // namespace defuse::sim
