#include "sim/metrics.hpp"

#include "stats/descriptive.hpp"

namespace defuse::sim {

std::vector<double> SimulationResult::FunctionColdStartRates(
    const graph::UnitMap& units) const {
  std::vector<double> rates;
  rates.reserve(units.num_functions());
  for (std::size_t f = 0; f < units.num_functions(); ++f) {
    const UnitId unit = units.unit_of(FunctionId{static_cast<std::uint32_t>(f)});
    const std::uint64_t invoked = unit_invoked_minutes[unit.value()];
    if (invoked == 0) continue;
    rates.push_back(static_cast<double>(unit_cold_minutes[unit.value()]) /
                    static_cast<double>(invoked));
  }
  return rates;
}

double SimulationResult::AverageMemoryUsage() const {
  if (loaded_functions.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto v : loaded_functions) total += v;
  return static_cast<double>(total) /
         static_cast<double>(loaded_functions.size());
}

double SimulationResult::AverageWeightedMemory() const {
  if (loaded_weight.empty()) return 0.0;
  double total = 0.0;
  for (const auto v : loaded_weight) total += v;
  return total / static_cast<double>(loaded_weight.size());
}

double SimulationResult::AverageLoadingFunctions() const {
  if (loading_functions.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto v : loading_functions) total += v;
  return static_cast<double>(total) /
         static_cast<double>(loading_functions.size());
}

double SimulationResult::ColdStartRatePercentile(const graph::UnitMap& units,
                                                 double q) const {
  const auto rates = FunctionColdStartRates(units);
  return stats::Percentile(rates, q);
}

stats::Ecdf SimulationResult::ColdStartRateEcdf(const graph::UnitMap& units) const {
  return stats::Ecdf{FunctionColdStartRates(units)};
}

double MeanLatencyMs(const SimulationResult& result,
                     const LatencyModel& model) {
  if (result.function_invocation_minutes == 0) return 0.0;
  const double cold_fraction =
      static_cast<double>(result.function_cold_minutes) /
      static_cast<double>(result.function_invocation_minutes);
  return model.warm_ms + cold_fraction * (model.cold_ms - model.warm_ms);
}

double LatencyPercentileMs(const SimulationResult& result, double q,
                           const LatencyModel& model) {
  if (result.function_invocation_minutes == 0) return 0.0;
  const double cold_fraction =
      static_cast<double>(result.function_cold_minutes) /
      static_cast<double>(result.function_invocation_minutes);
  return q <= 1.0 - cold_fraction ? model.warm_ms : model.cold_ms;
}

}  // namespace defuse::sim
