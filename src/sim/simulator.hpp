// Discrete-time FaaS platform simulator.
//
// Replays a minute-granularity invocation trace against a scheduling
// policy and accounts cold starts, resident memory, and container loads —
// the measurement harness behind every figure in the paper's evaluation.
//
// Semantics of one minute t (in order):
//   1. scheduled events due at t fire: pre-warm loads, then evictions;
//   2. every function invoked at t is resolved through its unit — if the
//      unit is resident the invocation is warm, otherwise it is cold and
//      the unit is loaded immediately;
//   3. each invoked unit reports its idle gap to the policy and receives
//      a fresh (pre-warm, keep-alive) decision that replaces any
//      previously scheduled load/evict for that unit;
//   4. the resident function count is sampled (memory usage of minute t).
#pragma once

#include "sim/metrics.hpp"
#include "policy/scheduling_policy.hpp"
#include "trace/invocation_trace.hpp"

namespace defuse::sim {

struct SimulatorOptions {
  /// If true, units keep adapting their histograms online from idle
  /// times observed during the simulation (paper §VII); if false the
  /// policy sees only what it was seeded with from the training window.
  bool online_updates = true;
  /// Hard cap on resident functions (0 = unlimited). When a load would
  /// exceed the cap, least-recently-invoked resident units are evicted
  /// first (units invoked in the current minute are protected). If
  /// nothing evictable remains the load overcommits — an arriving
  /// invocation is never rejected.
  std::uint64_t memory_limit = 0;
  /// Optional per-function memory weights (indexed by FunctionId). The
  /// paper approximates memory by the resident-function *count* (the
  /// dataset has no sizes); supplying weights additionally tracks a
  /// weighted memory integral (SimulationResult::loaded_weight) so that
  /// approximation can be ablated. Not owned; must outlive the call.
  const std::vector<double>* function_weights = nullptr;
};

/// Runs `policy` over `eval` minutes of the trace.
[[nodiscard]] SimulationResult Simulate(const trace::InvocationTrace& trace,
                                        TimeRange eval,
                                        policy::SchedulingPolicy& policy,
                                        const SimulatorOptions& options = {});

}  // namespace defuse::sim
