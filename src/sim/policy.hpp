// The scheduling-policy interface the simulator drives.
//
// A policy answers one question: when a unit has just been invoked at
// minute t, how should its container be managed until its next
// invocation? The answer is a (pre-warm, keep-alive, linger) triple
// (paper §II, generalized):
//
//   pre-warm == 0:  stay loaded for `keepalive` minutes after t, then
//                   evict (the classic fixed keep-alive shape);
//   pre-warm  > 0:  stay loaded for `linger` minutes (default 1 — the
//                   original two-phase shape), evict, re-load at
//                   t + prewarm, stay until t + prewarm + keepalive.
//
// `linger` lets a policy express "remain resident through the rest of
// the current busy period, then return just before the next one" (e.g.
// the diurnal policy's overnight gap). pre-warm <= linger degenerates to
// continuous residency.
//
// The simulator reports observed idle times back so histogram-based
// policies can keep adapting online (paper §VII, "Adaptive Scheduling").
#pragma once

#include "common/ids.hpp"
#include "common/time.hpp"
#include "sim/unit_map.hpp"

namespace defuse::sim {

struct UnitDecision {
  MinuteDelta prewarm = 0;
  MinuteDelta keepalive = 10;
  MinuteDelta linger = 1;

  friend constexpr bool operator==(const UnitDecision&,
                                   const UnitDecision&) noexcept = default;
};

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  /// The function->unit partition this policy schedules over.
  [[nodiscard]] virtual const UnitMap& unit_map() const noexcept = 0;

  /// Container-management decision for `unit`, which was invoked at `now`.
  [[nodiscard]] virtual UnitDecision OnInvocation(UnitId unit,
                                                  Minute now) = 0;

  /// Reports the observed idle gap between two consecutive invocations of
  /// `unit` (called before OnInvocation for the later of the two).
  virtual void ObserveIdleTime(UnitId unit, MinuteDelta gap) = 0;

  /// Human-readable policy name (figures, logs).
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

}  // namespace defuse::sim
