// Simulation outcome and the metrics of the paper's evaluation (§V.B):
//   * function cold-start rate — a function inherits the cold-start rate
//     of its scheduling unit (its dependency set under Defuse, its app
//     under Hybrid-Application, itself under Hybrid-Function);
//   * memory usage — number of loaded functions integrated over minutes;
//   * scheduling overhead — number of function loads per minute.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "graph/unit_map.hpp"
#include "stats/ecdf.hpp"

namespace defuse::sim {

struct SimulationResult {
  TimeRange eval_range;

  /// Per unit: minutes in which the unit was invoked / of those, minutes
  /// where it was not resident (cold starts).
  std::vector<std::uint64_t> unit_invoked_minutes;
  std::vector<std::uint64_t> unit_cold_minutes;

  /// Per minute of eval_range: loaded functions at the end of the minute,
  /// and functions newly loaded during the minute (cold + pre-warm loads).
  std::vector<std::uint64_t> loaded_functions;
  std::vector<std::uint64_t> loading_functions;

  /// Total invocation events (function-minutes) and how many were cold.
  std::uint64_t function_invocation_minutes = 0;
  std::uint64_t function_cold_minutes = 0;

  /// Units evicted to make room under SimulatorOptions::memory_limit.
  std::uint64_t capacity_evictions = 0;

  /// Cross-unit pre-warm windows applied on behalf of pull-based
  /// policies (policy::SchedulingPolicy::CollectTriggeredPrewarms).
  std::uint64_t triggered_prewarms = 0;

  /// Weighted resident memory per minute; filled only when
  /// SimulatorOptions::function_weights was supplied (else empty).
  std::vector<double> loaded_weight;

  /// --- derived metrics ---

  /// Cold-start rate of every *invoked* function: its unit's cold
  /// minutes / invoked minutes (functions never invoked in the window are
  /// skipped, as they have no defined rate).
  [[nodiscard]] std::vector<double> FunctionColdStartRates(
      const graph::UnitMap& units) const;

  /// Mean number of loaded functions over the window (the paper's memory
  /// usage proxy).
  [[nodiscard]] double AverageMemoryUsage() const;

  /// Mean *weighted* resident memory (0 when no weights were supplied).
  [[nodiscard]] double AverageWeightedMemory() const;

  /// Mean number of function loads per minute (the paper's overhead
  /// proxy, Fig 9).
  [[nodiscard]] double AverageLoadingFunctions() const;

  /// q-th percentile of the function cold-start rate distribution
  /// (Fig 7 uses q = 0.75).
  [[nodiscard]] double ColdStartRatePercentile(const graph::UnitMap& units,
                                               double q) const;

  /// ECDF of function cold-start rates (Figs 8a, 10a, 11a).
  [[nodiscard]] stats::Ecdf ColdStartRateEcdf(const graph::UnitMap& units) const;
};

/// Latency model for translating cold fractions into the client-facing
/// numbers the paper's SLA motivation is about (§II: container
/// initialization sits on the critical path of a cold request). Default
/// values follow published cold/warm start measurements for
/// container-based FaaS platforms (hundreds of ms to seconds cold,
/// single-digit ms warm).
struct LatencyModel {
  double warm_ms = 5.0;
  double cold_ms = 1500.0;
};

/// Mean invocation latency implied by the event-level cold fraction.
[[nodiscard]] double MeanLatencyMs(const SimulationResult& result,
                                   const LatencyModel& model = {});

/// q-th percentile of the two-point invocation latency distribution:
/// warm_ms until the warm mass is exhausted, cold_ms above it.
[[nodiscard]] double LatencyPercentileMs(const SimulationResult& result,
                                         double q,
                                         const LatencyModel& model = {});

}  // namespace defuse::sim
