#include "sim/concurrency.hpp"

#include <algorithm>
#include <cassert>

namespace defuse::sim {
namespace {

struct UnitState {
  Minute last_invocation = -1;
  std::uint32_t generation = 0;
};

/// Warm-container pool of one function: unsorted expiry minutes
/// (pools are small — bounded by the function's peak concurrency).
struct Pool {
  std::vector<Minute> expiries;
};

}  // namespace

std::vector<double> ConcurrencyResult::FunctionColdStartRates(
    const graph::UnitMap& units) const {
  std::vector<double> rates;
  for (std::size_t f = 0; f < units.num_functions(); ++f) {
    const UnitId unit =
        units.unit_of(FunctionId{static_cast<std::uint32_t>(f)});
    const auto events = unit_invocation_events[unit.value()];
    if (events == 0) continue;
    rates.push_back(static_cast<double>(unit_cold_events[unit.value()]) /
                    static_cast<double>(events));
  }
  return rates;
}

double ConcurrencyResult::AverageResidentContainers() const {
  if (resident_containers.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto v : resident_containers) total += v;
  return static_cast<double>(total) /
         static_cast<double>(resident_containers.size());
}

double ConcurrencyResult::EventColdFraction() const {
  return total_invocation_events == 0
             ? 0.0
             : static_cast<double>(total_cold_events) /
                   static_cast<double>(total_invocation_events);
}

ConcurrencyResult SimulateConcurrent(const trace::InvocationTrace& trace,
                                     TimeRange eval,
                                     policy::SchedulingPolicy& policy) {
  const graph::UnitMap& units = policy.unit_map();
  assert(units.num_functions() == trace.num_functions());
  const auto num_units = units.num_units();
  const auto eval_len =
      static_cast<std::size_t>(std::max<MinuteDelta>(eval.length(), 0));

  ConcurrencyResult result;
  result.eval_range = eval;
  result.unit_invocation_events.assign(num_units, 0);
  result.unit_cold_events.assign(num_units, 0);
  result.resident_containers.assign(eval_len, 0);
  result.spawned_containers.assign(eval_len, 0);

  std::vector<UnitState> state(num_units);
  std::vector<Pool> pools(units.num_functions());
  std::uint64_t resident = 0;

  // Expiry scan list: functions that may hold containers expiring at a
  // given minute. Stale entries (container refreshed meanwhile) are
  // harmless — the purge rechecks actual expiries.
  std::vector<std::vector<std::uint32_t>> expiry_buckets(eval_len);
  const auto note_expiry = [&](std::uint32_t fn, Minute when) {
    const auto offset = static_cast<std::size_t>(when - eval.begin);
    if (offset < eval_len) expiry_buckets[offset].push_back(fn);
  };

  // Pre-warm events at unit granularity, as in the base simulator.
  struct PrewarmEvent {
    std::uint32_t unit;
    std::uint32_t generation;
    MinuteDelta keepalive;
  };
  std::vector<std::vector<PrewarmEvent>> prewarm_buckets(eval_len);

  const auto purge = [&](std::uint32_t fn, Minute now) {
    auto& pool = pools[fn].expiries;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (pool[i] > now) {
        pool[kept++] = pool[i];
      } else {
        --resident;
      }
    }
    pool.resize(kept);
  };

  const auto index = trace.BuildMinuteIndex(eval);
  std::vector<std::pair<std::uint32_t, Minute>> invoked_units;

  for (std::size_t offset = 0; offset < eval_len; ++offset) {
    const Minute now = eval.begin + static_cast<Minute>(offset);

    // 1. Expire containers whose keep-alive elapsed (expiry <= now means
    // the container did not survive into this minute).
    {
      auto& bucket = expiry_buckets[offset];
      std::sort(bucket.begin(), bucket.end());
      bucket.erase(std::unique(bucket.begin(), bucket.end()), bucket.end());
      for (const std::uint32_t fn : bucket) purge(fn, now);
      bucket.clear();
      bucket.shrink_to_fit();
    }

    // 2. Unit pre-warms: spawn one container per member function.
    for (const PrewarmEvent& event : prewarm_buckets[offset]) {
      if (event.generation != state[event.unit].generation) continue;
      const Minute expiry = now + std::max<MinuteDelta>(event.keepalive, 1);
      for (const FunctionId fn : units.functions_of(UnitId{event.unit})) {
        // One pre-warmed instance per function (skip if one is already
        // warm — no point doubling up speculatively).
        purge(fn.value(), now);
        if (!pools[fn.value()].expiries.empty()) continue;
        pools[fn.value()].expiries.push_back(expiry);
        ++resident;
        ++result.spawned_containers[offset];
        note_expiry(fn.value(), expiry);
      }
    }
    prewarm_buckets[offset].clear();
    prewarm_buckets[offset].shrink_to_fit();

    // 3. Invocations: count-aware warm/cold resolution per function, and
    // a policy decision per invoked unit.
    invoked_units.clear();
    for (const auto& [fn, count] : index.at(now)) {
      const UnitId unit = units.unit_of(fn);
      UnitState& u = state[unit.value()];
      if (u.last_invocation != now) {
        invoked_units.emplace_back(unit.value(), u.last_invocation);
        u.last_invocation = now;
      }
      result.unit_invocation_events[unit.value()] += count;
      result.total_invocation_events += count;

      purge(fn.value(), now);
      auto& pool = pools[fn.value()].expiries;
      const auto warm = static_cast<std::uint32_t>(pool.size());
      const std::uint32_t cold = count > warm ? count - warm : 0;
      result.unit_cold_events[unit.value()] += cold;
      result.total_cold_events += cold;
      result.spawned_containers[offset] += cold;
      resident += cold;
      // Placeholder expiries; step 4 refreshes the whole pool to the
      // unit's fresh keep-alive decision.
      pool.insert(pool.end(), cold, now + 1);
    }

    // 4. Decisions: refresh every used container of every member of an
    // invoked unit to the unit's new keep-alive.
    for (const auto& [unit_value, prev] : invoked_units) {
      const UnitId unit{unit_value};
      UnitState& u = state[unit_value];
      if (prev >= 0) policy.ObserveIdleTime(unit, now - prev);
      ++u.generation;
      policy::UnitDecision decision = policy.OnInvocation(unit, now);
      if (decision.prewarm <= decision.linger) {
        decision.keepalive = std::max(decision.linger,
                                      decision.prewarm + decision.keepalive);
        decision.prewarm = 0;
      }
      const MinuteDelta effective_keepalive =
          decision.prewarm == 0 ? decision.keepalive : decision.linger;
      const Minute expiry =
          now + std::max<MinuteDelta>(effective_keepalive, 1);
      // "Schedule the dependency set as a whole" (paper §IV.D): a unit
      // invocation refreshes every member function's containers, and
      // members with no live container get one — this is exactly the
      // whole-app loading the paper criticizes when the unit is an
      // application, and the whole-set loading Defuse performs.
      for (const FunctionId fn : units.functions_of(unit)) {
        purge(fn.value(), now);
        auto& pool = pools[fn.value()].expiries;
        if (pool.empty()) {
          pool.push_back(expiry);
          ++resident;
          ++result.spawned_containers[offset];
        } else {
          for (auto& e : pool) e = expiry;
        }
        note_expiry(fn.value(), expiry);
      }
      if (decision.prewarm > 0) {
        const auto offset_pw =
            static_cast<std::size_t>(now + decision.prewarm - eval.begin);
        if (offset_pw < eval_len) {
          prewarm_buckets[offset_pw].push_back(
              PrewarmEvent{.unit = unit_value,
                           .generation = u.generation,
                           .keepalive = decision.keepalive});
        }
      }
    }

    // 5. Memory sample.
    result.resident_containers[offset] = resident;
  }
  return result;
}

}  // namespace defuse::sim
