#include "cli/shutdown.hpp"

#include <csignal>

namespace defuse::cli {
namespace {

// defuse-lint: suppress(DL008) async-signal-safe idiom: sig_atomic_t is the only type a signal handler may touch; a mutex here would deadlock the handler
volatile std::sig_atomic_t g_shutdown_requested = 0;

void OnShutdownSignal(int) { g_shutdown_requested = 1; }

}  // namespace

void InstallShutdownSignalHandlers() {
  struct sigaction action{};
  action.sa_handler = OnShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt blocking poll/read
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

bool ShutdownRequested() noexcept { return g_shutdown_requested != 0; }

void RequestShutdown() noexcept { g_shutdown_requested = 1; }

void ResetShutdownFlag() noexcept { g_shutdown_requested = 0; }

}  // namespace defuse::cli
