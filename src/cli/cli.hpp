// The `defuse` command-line tool: the library pipeline as a set of
// composable commands over on-disk traces and mined artifacts.
//
//   defuse generate  --users 100 --days 14 --seed 1 --out trace.csv
//   defuse inspect   --trace trace.csv
//   defuse mine      --trace trace.csv --sets-out sets.csv
//                    [--edges-out edges.csv] [--dot-out graph.dot]
//   defuse simulate  --trace trace.csv --method defuse [--sets sets.csv]
//   defuse sweep     --trace trace.csv --amplifications 1,2,4
//
// The command logic lives in a library (RunCli) so it is unit-testable
// in-process; main() is a thin wrapper.
#pragma once

#include <ostream>
#include <span>
#include <string>

namespace defuse::cli {

/// Runs one CLI invocation. `args` excludes the program name. Normal
/// output goes to `out`, diagnostics to `err`. Returns the process exit
/// code (0 on success, 1 on usage errors, 2 on runtime failures).
int RunCli(std::span<const std::string> args, std::ostream& out,
           std::ostream& err);

}  // namespace defuse::cli
