// Graceful-shutdown flag for the long-running CLI verbs.
//
// `defuse serve` and durable `defuse replay` install handlers for
// SIGINT/SIGTERM that set a process-wide flag; the verb's main loop
// polls it between iterations and exits through its normal drain path
// (stop accepting, flush, final checkpoint) instead of dying mid-write.
// The handler itself only flips a sig_atomic_t — everything else happens
// on the main thread, so the drain logic is testable without signals via
// RequestShutdown().
#pragma once

namespace defuse::cli {

/// Routes SIGINT and SIGTERM to the shutdown flag (without SA_RESTART,
/// so a blocking poll() returns EINTR and the loop re-checks promptly).
/// Idempotent.
void InstallShutdownSignalHandlers();

[[nodiscard]] bool ShutdownRequested() noexcept;

/// What the signal handler does, callable directly from tests.
void RequestShutdown() noexcept;

/// Clears the flag. Call at verb entry: the flag is process-wide, and
/// in-process callers (tests) run many verbs per process.
void ResetShutdownFlag() noexcept;

}  // namespace defuse::cli
