#include "cli/cli.hpp"

#include <optional>
#include <sstream>
#include <vector>

#include "analysis/analysis.hpp"
#include "arena/league.hpp"
#include "arena/registry.hpp"
#include "arena/scenarios.hpp"
#include "cli/shutdown.hpp"
#include "common/csv.hpp"
#include "core/adaptive.hpp"
#include "net/server_core.hpp"
#include "net/socket.hpp"
#include "server/client.hpp"
#include "server/platform_server.hpp"
#include "platform/durability/durable_state.hpp"
#include "platform/durability/recovery.hpp"
#include "platform/platform.hpp"
#include "router/hash_ring.hpp"
#include "router/shard_host.hpp"
#include "router/shard_router.hpp"
#include "router/state_merge.hpp"
#include "router/supervisor.hpp"
#include "common/flags.hpp"
#include "core/experiment.hpp"
#include "graph/serialization.hpp"
#include "stats/descriptive.hpp"
#include "trace/azure_csv.hpp"
#include "trace/generator.hpp"
#include "trace/transform.hpp"

namespace defuse::cli {
namespace {

constexpr const char* kUsage = R"(usage: defuse <command> [flags]

commands:
  generate   synthesize an Azure-like trace and write it as CSV
             --users N (120)  --days N (14)  --seed N (42)
             --out FILE       long-format CSV (required)
             --azure-dir DIR  additionally write Azure daily files
             --scenario SPEC  named workload preset (see `defuse
                              scenarios`), e.g. huawei_bursty or
                              skew_extreme:users=500; --users/--days
                              override the preset's scale when given
  inspect    characterize a trace (frequency skew, predictability)
             --trace FILE (required)
  mine       mine dependencies, write sets / edges / Graphviz
             --trace FILE (required)   --train-days N (all but 2)
             --support S (0.2)  --topk K (1)  --cv-threshold C (5)
             --strong-only | --weak-only
             --mine-threads N (0 = serial; any N is bit-identical)
             --sets-out FILE  --edges-out FILE  --dot-out FILE
  simulate   replay the tail of a trace under a scheduling method
             --trace FILE (required)   --train-days N (all but 2)
             --method defuse|strong-only|weak-only|hybrid-function|
                      hybrid-application|fixed|defuse-predictor|
                      defuse-diurnal   (defuse)
             --amplification A (1.0)
             --ar-fallback  enable the AR(1) time-series branch
             --sets FILE  use pre-mined dependency sets
             --policy SPEC  build the scheduler through the policy
                            registry instead of --method (see `defuse
                            policies`), e.g. spes:tier=cost or hiku
  arena      policy x scenario league table (CSV on stdout)
             --policies "a,b,..."   policy specs (default: the full
                                    built-in roster)
             --scenarios "x,y,..."  scenario specs (default: all named
                                    scenarios)
             --seed N (42)  --users N  --days N  scenario scale
             --out FILE     also write the CSV to a file
  policies   list registered scheduling policies and their param schemas
  scenarios  list named workload scenarios and their param schemas
  sweep      fig-7 style table: p75 cold rate vs memory for 3 methods
             --trace FILE (required)   --train-days N (all but 2)
             --amplifications "0.5,1,2,4" (1,2,4)
  filter     carve a smaller trace out of a big one
             --trace FILE (required)   --out FILE (required)
             --sample-users N  uniform user sample (--seed S)
             --first-days N    time-slice the first N days
  adaptive   simulate the daily re-mining daemon over the trace tail
             --trace FILE (required)   --last-days N (2)
             --epoch-days N (1)        --window-days N (4)
             --mine-threads N (0 = serial)
  replay     stream the whole trace through the online platform engine
             (live re-mining, residency carry-over)
             --trace FILE (required)   --remine-days N (1)
             --window-days N (4)       --mine-threads N (0 = serial)
             --delta-mine       incremental re-mining from streaming
                                accumulators (bit-identical results)
             --full-rebuild-every N (8)  anchor every Nth delta re-mine
                                with a full rebuild (0 = never)
             --state-dir DIR    durable mode: recover + resume, journal
                                every invocation, checkpoint on cadence
             --checkpoint-days N (1)
  recover    run the crash-recovery ladder over a state directory and
             report which rung restored the platform
             --state-dir DIR (required)   --trace FILE (required)
             --remine-days N (1)  --window-days N (4)
             --delta-mine  --full-rebuild-every N (8)
             exit 2 when corruption had to be repaired or skipped
  fsck       verify a state directory's snapshots and journals without
             repairing anything
             --state-dir DIR (required)   exit 2 on corruption
  serve      run the platform engine as a network daemon (framed binary
             protocol over TCP; SIGINT/SIGTERM drains and checkpoints)
             --trace FILE (required; defines the function model)
             --host H (127.0.0.1)  --port P (0 = ephemeral, printed)
             --remine-days N (1)   --window-days N (4)
             --mine-threads N (0 = serial)
             --delta-mine       incremental re-mining (bit-identical)
             --full-rebuild-every N (8)  anchor cadence (0 = never)
             --async-remine     mine off-path; invokes flow during mining
             --state-dir DIR    durable mode (journal + checkpoints)
             --checkpoint-days N (1)
             --queue-bound N (256)  admission queue depth; overflow
                                sheds newest-from-heaviest with advice
             --idempotency-window N (1024)  replies cached per request
                                id for exactly-once retries (0 = off)
             --shards N (1)     multi-shard tier: N platform shards
                                behind a consistent-hash router, each
                                with its own journal (state-dir/shard-K),
                                supervised restart on crash
             --vnodes N (64)    ring vnodes per shard
             --probe-threshold N (3)  lost probes before a shard is
                                declared down and restarted
  route      print the consistent-hash user->shard table, socket-free
             --trace FILE (required)  --shards N (required)
             --vnodes N (64)   --user NAME  look up one user
  drive      stream a trace into a running serve daemon and print the
             same per-day lines as replay
             --trace FILE (required)  --host H (127.0.0.1)
             --port P (required)
  health     probe a running serve daemon's readiness (control plane:
             answered even while the daemon drains or is overloaded)
             --host H (127.0.0.1)  --port P (required)
             --json  machine-readable report on stdout
             exit 0 when ready, 2 when unreachable or not ready (the
             failing conditions — draining / degraded-graph /
             stale-graph / recovering — are listed either way)
  compare    the paper's headline comparison on this trace: Defuse vs
             Hybrid-Function vs Hybrid-Application at restricted memory
             --trace FILE (required)   --train-days N (all but 2)
             --budget-factor F (0.85)  Defuse's share of HA's memory
  help       this text
)";

struct TraceBundle {
  trace::WorkloadModel model;
  trace::InvocationTrace trace;
  TimeRange train;
  TimeRange eval;
};

std::optional<TraceBundle> LoadTrace(const FlagParser& flags,
                                     std::ostream& err) {
  const auto path = flags.Get("trace");
  if (!path) {
    err << "error: --trace is required\n";
    return std::nullopt;
  }
  auto buffer = ReadFile(*path);
  if (!buffer.ok()) {
    err << "error: " << buffer.error().ToString() << "\n";
    return std::nullopt;
  }
  auto loaded = trace::ReadLongCsv(buffer.value());
  if (!loaded.ok()) {
    err << "error: " << loaded.error().ToString() << "\n";
    return std::nullopt;
  }

  const TimeRange horizon = loaded.value().trace.horizon();
  const auto train_days = flags.GetInt("train-days", -1);
  if (!train_days.ok()) {
    err << "error: " << train_days.error().ToString() << "\n";
    return std::nullopt;
  }
  TimeRange train, eval;
  if (train_days.value() < 0) {
    // Default: everything but the last 2 days (or the paper 6:1 split
    // for short traces).
    if (horizon.length() > 3 * kMinutesPerDay) {
      train = TimeRange{0, horizon.end - 2 * kMinutesPerDay};
      eval = TimeRange{train.end, horizon.end};
    } else {
      std::tie(train, eval) = core::SplitTrainEval(horizon);
    }
  } else {
    const Minute split = train_days.value() * kMinutesPerDay;
    if (split <= 0 || split >= horizon.end) {
      err << "error: --train-days must split the trace (horizon "
          << horizon.end / kMinutesPerDay << " days)\n";
      return std::nullopt;
    }
    train = TimeRange{0, split};
    eval = TimeRange{split, horizon.end};
  }
  return TraceBundle{.model = std::move(loaded.value().model),
                     .trace = std::move(loaded.value().trace),
                     .train = train,
                     .eval = eval};
}

/// Shared by mine/adaptive/replay: the --mine-threads fan-out width.
/// Any value yields a bit-identical graph; only wall-clock changes.
bool MineThreadsFromFlags(const FlagParser& flags, std::ostream& err,
                          mining::ParallelMineConfig& parallel) {
  const auto threads = flags.GetInt("mine-threads", 0);
  if (!threads.ok() || threads.value() < 0) {
    err << "error: --mine-threads must be a non-negative integer\n";
    return false;
  }
  parallel.num_threads = static_cast<std::size_t>(threads.value());
  return true;
}

/// Shared by replay/recover/serve: --delta-mine switches the platform's
/// periodic re-mining to the streaming-accumulator path (bit-identical
/// mined sets, O(new events) cost) and --full-rebuild-every N sets the
/// full-rebuild anchor cadence (every Nth mine; 0 = never).
bool DeltaMineFromFlags(const FlagParser& flags, std::ostream& err,
                        mining::DeltaMineConfig& delta) {
  delta.enabled = flags.Has("delta-mine");
  const auto every = flags.GetInt(
      "full-rebuild-every", static_cast<std::int64_t>(delta.full_rebuild_every));
  if (!every.ok() || every.value() < 0) {
    err << "error: --full-rebuild-every must be a non-negative integer\n";
    return false;
  }
  if (!delta.enabled && flags.Has("full-rebuild-every")) {
    err << "error: --full-rebuild-every requires --delta-mine\n";
    return false;
  }
  delta.full_rebuild_every = static_cast<std::uint32_t>(every.value());
  return true;
}

core::DefuseConfig MiningConfigFromFlags(const FlagParser& flags,
                                         std::ostream& err, bool& ok) {
  core::DefuseConfig config;
  ok = true;
  const auto support = flags.GetDouble("support", config.support);
  const auto topk = flags.GetInt("topk",
                                 static_cast<std::int64_t>(config.top_k));
  const auto cv = flags.GetDouble("cv-threshold", config.cv_threshold);
  for (const auto* error :
       {support.ok() ? nullptr : &support.error(),
        topk.ok() ? nullptr : &topk.error(),
        cv.ok() ? nullptr : &cv.error()}) {
    if (error != nullptr) {
      err << "error: " << error->ToString() << "\n";
      ok = false;
    }
  }
  if (!ok) return config;
  config.support = support.value();
  config.top_k = static_cast<std::size_t>(topk.value());
  config.cv_threshold = cv.value();
  if (flags.Has("strong-only")) config.use_weak = false;
  if (flags.Has("weak-only")) config.use_strong = false;
  if (!config.use_strong && !config.use_weak) {
    err << "error: --strong-only and --weak-only are mutually exclusive\n";
    ok = false;
  }
  if (!MineThreadsFromFlags(flags, err, config.parallel)) ok = false;
  return config;
}

std::optional<core::Method> ParseMethod(std::string_view name) {
  if (name == "defuse") return core::Method::kDefuse;
  if (name == "strong-only") return core::Method::kDefuseStrongOnly;
  if (name == "weak-only") return core::Method::kDefuseWeakOnly;
  if (name == "hybrid-function") return core::Method::kHybridFunction;
  if (name == "hybrid-application") return core::Method::kHybridApplication;
  if (name == "fixed") return core::Method::kFixedKeepAlive;
  if (name == "defuse-predictor") return core::Method::kDefusePredictor;
  if (name == "defuse-diurnal") return core::Method::kDefuseDiurnal;
  return std::nullopt;
}

bool WriteOrReport(const std::string& path, std::string_view content,
                   std::ostream& err) {
  const auto result = WriteFile(path, content);
  if (!result.ok()) {
    err << "error: " << result.error().ToString() << "\n";
    return false;
  }
  return true;
}

int CmdGenerate(const FlagParser& flags, std::ostream& out,
                std::ostream& err) {
  const auto users = flags.GetInt("users", 120);
  const auto days = flags.GetInt("days", 14);
  const auto seed = flags.GetInt("seed", 42);
  if (!users.ok() || !days.ok() || !seed.ok()) {
    err << "error: malformed numeric flag\n";
    return 1;
  }
  const auto out_path = flags.Get("out");
  if (!out_path) {
    err << "error: --out is required\n";
    return 1;
  }
  if (users.value() < 1 || days.value() < 1) {
    err << "error: --users and --days must be positive\n";
    return 1;
  }

  trace::GeneratorConfig config;
  if (const auto scenario = flags.Get("scenario")) {
    auto resolved = arena::ScenarioRegistry::Builtin().Resolve(
        *scenario, static_cast<std::uint64_t>(seed.value()));
    if (!resolved.ok()) {
      err << "error: " << resolved.error().ToString() << "\n";
      return 1;
    }
    trace::ScenarioSpec spec = std::move(resolved).value();
    // Explicit --users/--days win over the preset's scale.
    if (flags.Has("users")) {
      spec.num_users = static_cast<std::uint32_t>(users.value());
    }
    if (flags.Has("days")) {
      spec.horizon_minutes = days.value() * kMinutesPerDay;
    }
    config = trace::MakeScenarioConfig(spec);
  } else {
    config.num_users = static_cast<std::uint32_t>(users.value());
    config.horizon_minutes = days.value() * kMinutesPerDay;
    config.seed = static_cast<std::uint64_t>(seed.value());
  }
  const auto workload = trace::GenerateWorkload(config);
  const Minute horizon_days = config.horizon_minutes / kMinutesPerDay;

  if (!WriteOrReport(*out_path,
                     trace::WriteLongCsv(workload.model, workload.trace),
                     err)) {
    return 2;
  }
  out << "wrote " << *out_path << ": " << workload.model.num_users()
      << " users, " << workload.model.num_apps() << " apps, "
      << workload.model.num_functions() << " functions, "
      << workload.trace.TotalInvocations(workload.trace.horizon())
      << " invocations over " << horizon_days << " days\n";

  if (const auto dir = flags.Get("azure-dir")) {
    for (Minute day = 0; day < horizon_days; ++day) {
      char name[64];
      std::snprintf(name, sizeof name,
                    "/invocations_per_function_md.anon.d%02lld.csv",
                    static_cast<long long>(day + 1));
      if (!WriteOrReport(*dir + name,
                         trace::WriteAzureDayCsv(workload.model,
                                                 workload.trace, day),
                         err)) {
        return 2;
      }
    }
    out << "wrote " << horizon_days << " Azure daily files under " << *dir
        << "\n";
  }
  return 0;
}

int CmdInspect(const FlagParser& flags, std::ostream& out,
               std::ostream& err) {
  const auto bundle = LoadTrace(flags, err);
  if (!bundle) return 1;
  const auto report = analysis::AnalyzeWorkload(
      bundle->model, bundle->trace, bundle->trace.horizon());
  out << analysis::RenderWorkloadReport(report);
  return 0;
}

int CmdMine(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  const auto bundle = LoadTrace(flags, err);
  if (!bundle) return 1;
  bool config_ok = false;
  const auto config = MiningConfigFromFlags(flags, err, config_ok);
  if (!config_ok) return 1;

  auto mined = core::MineDependencies(bundle->trace, bundle->model,
                                      bundle->train, config);
  if (!mined.ok()) {
    err << "error: " << mined.error().ToString() << "\n";
    return 1;
  }
  const auto mining = std::move(mined).value();
  out << "mined " << mining.num_frequent_itemsets << " frequent itemsets, "
      << mining.num_weak_dependencies << " weak dependencies; "
      << mining.graph.num_strong_edges() << " strong + "
      << mining.graph.num_weak_edges() << " weak edges; "
      << mining.sets.size() << " dependency sets over "
      << bundle->model.num_functions() << " functions\n";

  std::size_t multi = 0, largest = 0;
  for (const auto& set : mining.sets) {
    if (set.functions.size() > 1) ++multi;
    largest = std::max(largest, set.functions.size());
  }
  out << multi << " multi-function sets; largest has " << largest
      << " functions\n";

  // Artifacts that cross the miner/scheduler process boundary carry a
  // checksum trailer; the readers verify it transparently.
  if (const auto path = flags.Get("sets-out")) {
    if (!WriteOrReport(*path,
                       graph::WriteDependencySetsCsvChecksummed(mining.sets,
                                                                bundle->model),
                       err)) {
      return 2;
    }
    out << "wrote dependency sets to " << *path << "\n";
  }
  if (const auto path = flags.Get("edges-out")) {
    if (!WriteOrReport(*path,
                       graph::WriteDependencyEdgesCsvChecksummed(
                           mining.graph, bundle->model),
                       err)) {
      return 2;
    }
    out << "wrote dependency edges to " << *path << "\n";
  }
  if (const auto path = flags.Get("dot-out")) {
    std::vector<std::string> names;
    names.reserve(bundle->model.num_functions());
    for (const auto& fn : bundle->model.functions()) {
      names.push_back(fn.name);
    }
    if (!WriteOrReport(*path, mining.graph.ToDot(&names), err)) return 2;
    out << "wrote Graphviz graph to " << *path << "\n";
  }
  return 0;
}

void PrintMetrics(const core::MethodResult& r, std::ostream& out) {
  out << "method: " << core::MethodName(r.method)
      << "  amplification: " << r.amplification << "\n"
      << "scheduling units: " << r.num_units << "\n"
      << "functions with invocations: " << r.cold_start_rates.size() << "\n"
      << "p75 function cold-start rate: " << r.p75_cold_start_rate << "\n"
      << "mean function cold-start rate: " << r.mean_cold_start_rate << "\n"
      << "cold fraction of invocation events: " << r.event_cold_fraction
      << "\n"
      << "avg memory (loaded functions): " << r.avg_memory << "\n"
      << "avg loads per minute: " << r.avg_loading << "\n";
}

int CmdSimulate(const FlagParser& flags, std::ostream& out,
                std::ostream& err) {
  const auto bundle = LoadTrace(flags, err);
  if (!bundle) return 1;
  const auto amplification = flags.GetDouble("amplification", 1.0);
  if (!amplification.ok()) {
    err << "error: " << amplification.error().ToString() << "\n";
    return 1;
  }

  // Arena path: build the scheduler from a registry policy spec.
  if (const auto policy_spec = flags.Get("policy")) {
    if (flags.Has("method") || flags.Has("sets")) {
      err << "error: --policy is exclusive with --method/--sets\n";
      return 1;
    }
    const arena::PolicyRegistry& registry = arena::PolicyRegistry::Builtin();
    auto resolved = registry.Resolve(*policy_spec);
    if (!resolved.ok()) {
      err << "error: " << resolved.error().ToString() << "\n";
      return 1;
    }
    auto mined = core::MineDependencies(bundle->trace, bundle->model,
                                        bundle->train, core::DefuseConfig{});
    if (!mined.ok()) {
      err << "error: " << mined.error().ToString() << "\n";
      return 1;
    }
    const core::MiningOutput mining = std::move(mined).value();
    arena::PolicyBuildContext context;
    context.model = &bundle->model;
    context.trace = &bundle->trace;
    context.train = bundle->train;
    context.mining = &mining;
    auto built = registry.Build(context, *policy_spec);
    if (!built.ok()) {
      err << "error: " << built.error().ToString() << "\n";
      return 1;
    }
    const auto policy = std::move(built).value();
    const auto sim = sim::Simulate(bundle->trace, bundle->eval, *policy);
    const auto rates = sim.FunctionColdStartRates(policy->unit_map());
    out << "policy: " << *policy_spec << " (" << policy->name() << ")\n"
        << "scheduling units: " << policy->unit_map().num_units() << "\n"
        << "functions with invocations: " << rates.size() << "\n"
        << "p75 function cold-start rate: "
        << sim.ColdStartRatePercentile(policy->unit_map(), 0.75) << "\n"
        << "mean function cold-start rate: " << stats::Mean(rates) << "\n"
        << "cold fraction of invocation events: "
        << (sim.function_invocation_minutes == 0
                ? 0.0
                : static_cast<double>(sim.function_cold_minutes) /
                      static_cast<double>(sim.function_invocation_minutes))
        << "\n"
        << "avg memory (loaded functions): " << sim.AverageMemoryUsage()
        << "\n"
        << "avg loads per minute: " << sim.AverageLoadingFunctions() << "\n";
    if (sim.triggered_prewarms > 0) {
      out << "triggered pre-warms: " << sim.triggered_prewarms << "\n";
    }
    return 0;
  }

  // Pre-mined sets path: bypass the driver and run the set scheduler.
  if (const auto sets_path = flags.Get("sets")) {
    auto buffer = ReadFile(*sets_path);
    if (!buffer.ok()) {
      err << "error: " << buffer.error().ToString() << "\n";
      return 2;
    }
    auto sets = graph::ReadDependencySetsCsv(buffer.value(), bundle->model);
    if (!sets.ok()) {
      err << "error: " << sets.error().ToString() << "\n";
      return 2;
    }
    policy::HybridConfig policy_config;
    policy_config.amplification = amplification.value();
    const auto policy = core::MakeSetScheduler(bundle->trace, sets.value(),
                                               bundle->train, policy_config);
    const auto sim = sim::Simulate(bundle->trace, bundle->eval, *policy);
    core::MethodResult r;
    r.method = core::Method::kDefuse;
    r.amplification = amplification.value();
    r.cold_start_rates = sim.FunctionColdStartRates(policy->unit_map());
    r.p75_cold_start_rate = sim.ColdStartRatePercentile(policy->unit_map(),
                                                        0.75);
    r.mean_cold_start_rate = stats::Mean(r.cold_start_rates);
    r.event_cold_fraction =
        sim.function_invocation_minutes == 0
            ? 0.0
            : static_cast<double>(sim.function_cold_minutes) /
                  static_cast<double>(sim.function_invocation_minutes);
    r.avg_memory = sim.AverageMemoryUsage();
    r.avg_loading = sim.AverageLoadingFunctions();
    r.num_units = policy->unit_map().num_units();
    out << "(using pre-mined dependency sets from " << *sets_path << ")\n";
    PrintMetrics(r, out);
    return 0;
  }

  const auto method = ParseMethod(flags.GetOr("method", "defuse"));
  if (!method) {
    err << "error: unknown --method '" << flags.GetOr("method", "") << "'\n";
    return 1;
  }
  policy::HybridConfig policy_config;
  policy_config.use_ar_fallback = flags.Has("ar-fallback");
  core::ExperimentDriver driver{bundle->model, bundle->trace, bundle->train,
                                bundle->eval, core::DefuseConfig{},
                                policy_config};
  PrintMetrics(driver.Run(*method, amplification.value()), out);
  return 0;
}

int CmdSweep(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  const auto bundle = LoadTrace(flags, err);
  if (!bundle) return 1;
  std::vector<double> amplifications;
  {
    const std::string spec = flags.GetOr("amplifications", "1,2,4");
    std::istringstream stream{spec};
    std::string token;
    while (std::getline(stream, token, ',')) {
      const auto value = ParseDouble(token);
      if (!value.ok() || value.value() <= 0) {
        err << "error: bad --amplifications entry '" << token << "'\n";
        return 1;
      }
      amplifications.push_back(value.value());
    }
  }
  core::ExperimentDriver driver{bundle->model, bundle->trace, bundle->train,
                                bundle->eval};
  out << "method,amplification,avg_memory,p75_cold_start_rate,"
         "avg_loads_per_minute\n";
  for (const auto method :
       {core::Method::kDefuse, core::Method::kHybridFunction,
        core::Method::kHybridApplication}) {
    for (const double a : amplifications) {
      const auto r = driver.Run(method, a);
      char line[160];
      std::snprintf(line, sizeof line, "%s,%.2f,%.1f,%.4f,%.2f\n",
                    core::MethodName(method), a, r.avg_memory,
                    r.p75_cold_start_rate, r.avg_loading);
      out << line;
    }
  }
  return 0;
}

int CmdFilter(const FlagParser& flags, std::ostream& out,
              std::ostream& err) {
  const auto bundle = LoadTrace(flags, err);
  if (!bundle) return 1;
  const auto out_path = flags.Get("out");
  if (!out_path) {
    err << "error: --out is required\n";
    return 1;
  }
  const auto sample = flags.GetInt("sample-users", 0);
  const auto first_days = flags.GetInt("first-days", 0);
  const auto seed = flags.GetInt("seed", 1);
  if (!sample.ok() || !first_days.ok() || !seed.ok()) {
    err << "error: malformed numeric flag\n";
    return 1;
  }
  if (sample.value() <= 0 && first_days.value() <= 0) {
    err << "error: give --sample-users and/or --first-days\n";
    return 1;
  }

  trace::LoadedTrace current{.model = std::move(bundle->model),
                             .trace = std::move(bundle->trace)};
  if (sample.value() > 0) {
    Rng rng{static_cast<std::uint64_t>(seed.value())};
    current = trace::SampleUsers(current.model, current.trace,
                                 static_cast<std::size_t>(sample.value()),
                                 rng);
  }
  if (first_days.value() > 0) {
    const Minute limit = std::min<Minute>(
        first_days.value() * kMinutesPerDay, current.trace.horizon().end);
    current = trace::SliceTime(current.model, current.trace,
                               TimeRange{0, limit});
  }
  if (!WriteOrReport(*out_path,
                     trace::WriteLongCsv(current.model, current.trace),
                     err)) {
    return 2;
  }
  out << "wrote " << *out_path << ": " << current.model.num_users()
      << " users, " << current.model.num_functions() << " functions, "
      << current.trace.TotalInvocations(current.trace.horizon())
      << " invocations over "
      << current.trace.horizon().length() / kMinutesPerDay << " days\n";
  return 0;
}

int CmdAdaptive(const FlagParser& flags, std::ostream& out,
                std::ostream& err) {
  const auto bundle = LoadTrace(flags, err);
  if (!bundle) return 1;
  const auto last_days = flags.GetInt("last-days", 2);
  const auto epoch_days = flags.GetInt("epoch-days", 1);
  const auto window_days = flags.GetInt("window-days", 4);
  if (!last_days.ok() || !epoch_days.ok() || !window_days.ok() ||
      last_days.value() < 1 || epoch_days.value() < 1 ||
      window_days.value() < 1) {
    err << "error: --last-days/--epoch-days/--window-days must be positive "
           "integers\n";
    return 1;
  }
  const TimeRange horizon = bundle->trace.horizon();
  const Minute span_begin = std::max<Minute>(
      horizon.begin, horizon.end - last_days.value() * kMinutesPerDay);

  core::AdaptiveConfig config;
  config.remine_interval = epoch_days.value() * kMinutesPerDay;
  config.mining_window = window_days.value() * kMinutesPerDay;
  if (!MineThreadsFromFlags(flags, err, config.mining.parallel)) return 1;
  const auto result =
      core::RunAdaptive(bundle->model, bundle->trace,
                        TimeRange{span_begin, horizon.end}, config);

  out << "epoch,mined_days,dependency_sets,avg_memory,cold_fraction\n";
  for (std::size_t i = 0; i < result.epochs.size(); ++i) {
    const auto& epoch = result.epochs[i];
    std::uint64_t invoked = 0, cold = 0;
    for (const auto& [inv, c] : epoch.function_counts) {
      invoked += inv;
      cold += c;
    }
    char line[128];
    std::snprintf(line, sizeof line, "%zu,%.1f,%zu,%.1f,%.4f\n", i,
                  static_cast<double>(epoch.mined_from.length()) /
                      static_cast<double>(kMinutesPerDay),
                  epoch.dependency_sets, epoch.sim.AverageMemoryUsage(),
                  invoked == 0 ? 0.0
                               : static_cast<double>(cold) /
                                     static_cast<double>(invoked));
    out << line;
  }
  const auto rates = result.FunctionColdStartRates();
  out << "aggregate: p75 function cold-start rate "
      << stats::Percentile(rates, 0.75) << ", avg memory "
      << result.AverageMemoryUsage() << "\n";
  return 0;
}

int CmdCompare(const FlagParser& flags, std::ostream& out,
               std::ostream& err) {
  const auto bundle = LoadTrace(flags, err);
  if (!bundle) return 1;
  const auto budget_factor = flags.GetDouble("budget-factor", 0.85);
  if (!budget_factor.ok() || budget_factor.value() <= 0) {
    err << "error: --budget-factor must be a positive number\n";
    return 1;
  }
  core::ExperimentDriver driver{bundle->model, bundle->trace, bundle->train,
                                bundle->eval};

  // The paper's procedure (§V.C): Hybrid-Application at its natural
  // point; Defuse and Hybrid-Function restricted to a memory budget.
  const auto ha = driver.Run(core::Method::kHybridApplication, 1.0);
  const auto fit_budget = [&](core::Method method, double budget) {
    core::MethodResult best = driver.Run(method, 0.25);
    for (const double a : {0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0,
                           6.0, 8.0}) {
      auto r = driver.Run(method, a);
      if (r.avg_memory <= budget) best = std::move(r);
    }
    return best;
  };
  const auto defuse = fit_budget(core::Method::kDefuse,
                                 budget_factor.value() * ha.avg_memory);
  const auto hf = fit_budget(core::Method::kHybridFunction, ha.avg_memory);

  out << "method,amplification,p75_cold_start_rate,avg_memory,"
         "avg_loads_per_minute\n";
  for (const auto* r : {&defuse, &hf, &ha}) {
    char line[160];
    std::snprintf(line, sizeof line, "%s,%.2f,%.4f,%.1f,%.2f\n",
                  core::MethodName(r->method), r->amplification,
                  r->p75_cold_start_rate, r->avg_memory, r->avg_loading);
    out << line;
  }
  char headline[256];
  std::snprintf(headline, sizeof headline,
                "Defuse vs Hybrid-Application: p75 %+.1f%%, memory %+.1f%%, "
                "loads %+.1f%% (paper: -35%% / -20%% / -79%%)\n",
                100.0 * (defuse.p75_cold_start_rate /
                             ha.p75_cold_start_rate -
                         1.0),
                100.0 * (defuse.avg_memory / ha.avg_memory - 1.0),
                100.0 * (defuse.avg_loading / ha.avg_loading - 1.0));
  out << headline;
  return 0;
}

int CmdPolicies(std::ostream& out) {
  out << "registered scheduling policies (spec: name[:key=value,...], a "
         "bare word means variant=<word>):\n";
  for (const auto& entry : arena::PolicyRegistry::Builtin().entries()) {
    out << "  " << entry.name << "  " << entry.description << "\n";
    for (const auto& param : entry.params) {
      out << "      " << arena::DescribeParam(param) << "  "
          << param.description << "\n";
    }
    if (entry.needs_mining) {
      out << "      (needs mined dependencies)\n";
    }
  }
  return 0;
}

int CmdScenarios(std::ostream& out) {
  out << "named workload scenarios (spec: name[:key=value,...]; each is a "
         "pure function of spec and seed):\n";
  for (const auto& entry : arena::ScenarioRegistry::Builtin().entries()) {
    out << "  " << entry.name << "  " << entry.description << "\n";
    for (const auto& param : entry.params) {
      out << "      " << arena::DescribeParam(param) << "  "
          << param.description << "\n";
    }
  }
  return 0;
}

/// Splits a comma-separated spec list ("hybrid:set,spes:tier=cost").
std::vector<std::string> SplitSpecList(const std::string& text) {
  std::vector<std::string> specs;
  std::istringstream stream{text};
  std::string token;
  while (std::getline(stream, token, ',')) {
    // Spec parameters also use ',' — but list entries never start with
    // 'key=' because names come first, so re-join tokens that contain
    // '=' but no leading name, i.e. tokens following a ':' spec whose
    // parameter list was split. Heuristic: a token containing '=' or a
    // bare variant word belongs to the previous spec when that spec has
    // an unfinished ':' tail.
    if (!specs.empty()) {
      const std::string& prev = specs.back();
      const bool prev_has_params = prev.find(':') != std::string::npos;
      const bool looks_like_param = token.find('=') != std::string::npos;
      if (prev_has_params && looks_like_param) {
        specs.back() += "," + token;
        continue;
      }
    }
    if (!token.empty()) specs.push_back(token);
  }
  return specs;
}

int CmdArena(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  const auto seed = flags.GetInt("seed", 42);
  const auto users = flags.GetInt("users", 0);
  const auto days = flags.GetInt("days", 0);
  if (!seed.ok() || !users.ok() || !days.ok() || users.value() < 0 ||
      days.value() < 0) {
    err << "error: malformed numeric flag\n";
    return 1;
  }

  arena::LeagueConfig config;
  config.seed = static_cast<std::uint64_t>(seed.value());
  config.num_users = static_cast<std::uint32_t>(users.value());
  config.horizon_minutes = days.value() * kMinutesPerDay;
  if (flags.Has("policies")) {
    config.policies = SplitSpecList(flags.GetOr("policies", ""));
  } else {
    config.policies = {"fixed",   "hybrid:set", "hybrid:function",
                       "hybrid:application", "diurnal", "predictor",
                       "ar",      "spes:tier=balanced", "hiku", "forecast"};
  }
  if (flags.Has("scenarios")) {
    config.scenarios = SplitSpecList(flags.GetOr("scenarios", ""));
  } else {
    for (const auto& entry : arena::ScenarioRegistry::Builtin().entries()) {
      config.scenarios.push_back(entry.name);
    }
  }

  auto table = arena::RunLeague(config);
  if (!table.ok()) {
    err << "error: " << table.error().ToString() << "\n";
    return 1;
  }
  const std::string csv = arena::RenderLeagueCsv(table.value());
  out << csv;
  if (const auto path = flags.Get("out")) {
    if (!WriteOrReport(*path, csv, err)) return 2;
  }
  return 0;
}

void PrintRecoveryReport(const platform::durability::RecoveryReport& report,
                         std::ostream& out) {
  out << "recovery: rung "
      << platform::durability::RecoveryRungName(report.rung)
      << ", base generation " << report.snapshot_generation << ", "
      << report.journal_records_replayed << " journal records replayed";
  if (report.snapshots_rejected > 0) {
    out << ", " << report.snapshots_rejected << " snapshots rejected";
  }
  if (report.journal_records_rejected > 0) {
    out << ", " << report.journal_records_rejected
        << " journal records dropped";
  }
  if (report.journal_truncated) {
    out << ", " << report.journal_bytes_dropped << " torn bytes truncated";
  }
  out << "\n";
  for (const auto& note : report.notes) out << "  note: " << note << "\n";
}

bool SawCorruption(const platform::durability::RecoveryReport& report) {
  return report.snapshots_rejected > 0 ||
         report.journal_records_rejected > 0 || report.journal_truncated;
}

int CmdReplay(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  const auto bundle = LoadTrace(flags, err);
  if (!bundle) return 1;
  const auto remine_days = flags.GetInt("remine-days", 1);
  const auto window_days = flags.GetInt("window-days", 4);
  const auto checkpoint_days = flags.GetInt("checkpoint-days", 1);
  if (!remine_days.ok() || !window_days.ok() || !checkpoint_days.ok() ||
      remine_days.value() < 1 || window_days.value() < 1 ||
      checkpoint_days.value() < 1) {
    err << "error: --remine-days/--window-days/--checkpoint-days must be "
           "positive integers\n";
    return 1;
  }

  platform::PlatformConfig config;
  config.horizon = bundle->trace.horizon().end;
  config.remine_interval = remine_days.value() * kMinutesPerDay;
  config.mining_window = window_days.value() * kMinutesPerDay;
  if (!MineThreadsFromFlags(flags, err, config.mining.parallel)) return 1;
  if (!DeltaMineFromFlags(flags, err, config.mining.delta)) return 1;
  platform::Platform engine{bundle->model, config};

  // Durable mode: recover whatever a previous (possibly crashed) replay
  // left in the state directory, resume after its last applied minute,
  // and journal + checkpoint from there on.
  std::optional<platform::durability::DurableState> durable;
  Minute start = 0;
  if (const auto dir = flags.Get("state-dir")) {
    platform::durability::DurableState::Options options;
    options.checkpoint_interval = checkpoint_days.value() * kMinutesPerDay;
    durable.emplace(*dir, options);
    if (const auto opened = durable->Open(); !opened.ok()) {
      err << "error: " << opened.error().ToString() << "\n";
      return 2;
    }
    auto recovered = durable->Recover(engine);
    if (!recovered.ok()) {
      err << "error: " << recovered.error().ToString() << "\n";
      return 2;
    }
    PrintRecoveryReport(recovered.value(), out);
    if (engine.stats().invocations > 0) {
      // Minute-granular resume: the boundary minute may have been
      // partially applied, so it is not replayed again.
      start = engine.last_invocation_minute() + 1;
    }
    if (start >= bundle->trace.horizon().end) {
      out << "trace already fully replayed (resume minute " << start
          << " past horizon)\n";
      return 0;
    }
    if (start > 0) out << "resuming at minute " << start << "\n";
  }

  // Durable replays are resumable, so SIGINT/SIGTERM can stop cleanly:
  // finish the current minute, take a final checkpoint, exit 0. A later
  // run recovers and resumes where this one stopped.
  if (durable) {
    ResetShutdownFlag();
    InstallShutdownSignalHandlers();
  }

  const auto index = bundle->trace.BuildMinuteIndex(bundle->trace.horizon());
  std::uint64_t day_invocations = 0, day_cold = 0;
  std::uint64_t journal_failures = 0;
  Minute day = start / kMinutesPerDay;
  bool interrupted = false;
  out << "day,invocations,cold_fraction,dependency_sets\n";
  for (Minute t = start; t < bundle->trace.horizon().end; ++t) {
    if (durable && ShutdownRequested()) {
      out << "shutdown requested; stopping before minute " << t << "\n";
      interrupted = true;
      break;
    }
    for (const auto& [fn, count] : index.at(t)) {
      if (durable) {
        // Write-ahead: the event becomes durable before it is applied.
        // A failed append degrades this event to lossy (it will not
        // survive a crash) but never stops the replay.
        if (const auto logged = durable->JournalInvocation(fn, t);
            !logged.ok()) {
          ++journal_failures;
        }
      }
      const auto outcome = engine.Invoke(fn, t);
      ++day_invocations;
      day_cold += outcome.cold ? 1 : 0;
    }
    if (durable && durable->ShouldCheckpoint(t)) {
      if (const auto saved = durable->Checkpoint(engine); !saved.ok()) {
        err << "warning: checkpoint failed: " << saved.error().ToString()
            << "\n";
      }
    }
    if ((t + 1) % kMinutesPerDay == 0 ||
        t + 1 == bundle->trace.horizon().end) {
      char line[96];
      std::snprintf(line, sizeof line, "%lld,%llu,%.4f,%zu\n",
                    static_cast<long long>(day),
                    static_cast<unsigned long long>(day_invocations),
                    day_invocations == 0
                        ? 0.0
                        : static_cast<double>(day_cold) /
                              static_cast<double>(day_invocations),
                    engine.units().num_units());
      out << line;
      day_invocations = day_cold = 0;
      ++day;
    }
  }
  out << "total: " << engine.stats().invocations << " invocations, cold "
      << engine.stats().cold_fraction() << ", " << engine.stats().remines
      << " re-mines\n";
  if (const auto* acc = engine.delta_accumulator()) {
    out << "delta mining: " << acc->books().delta_mines << " delta mines, "
        << acc->books().full_rebuilds << " full rebuilds, "
        << acc->books().aborted_deltas << " rolled back\n";
  }
  if (interrupted) {
    out << "interrupted: state checkpointed for resume; rerun the same "
           "command to continue\n";
  }
  if (durable) {
    if (const auto saved = durable->Checkpoint(engine); !saved.ok()) {
      err << "warning: final checkpoint failed: " << saved.error().ToString()
          << "\n";
    } else {
      out << "state saved: generation " << durable->generation() << " in "
          << durable->dir() << "\n";
    }
    if (journal_failures > 0) {
      err << "warning: " << journal_failures
          << " journal appends failed (those events were lossy)\n";
    }
  }
  return 0;
}

int CmdRecover(const FlagParser& flags, std::ostream& out,
               std::ostream& err) {
  const auto dir = flags.Get("state-dir");
  if (!dir) {
    err << "error: --state-dir is required\n";
    return 1;
  }
  const auto bundle = LoadTrace(flags, err);
  if (!bundle) return 1;
  const auto remine_days = flags.GetInt("remine-days", 1);
  const auto window_days = flags.GetInt("window-days", 4);
  if (!remine_days.ok() || !window_days.ok() || remine_days.value() < 1 ||
      window_days.value() < 1) {
    err << "error: --remine-days/--window-days must be positive integers\n";
    return 1;
  }

  // The platform must be rebuilt with the exact model + config the
  // state was saved under (the replay defaults, unless overridden).
  platform::PlatformConfig config;
  config.horizon = bundle->trace.horizon().end;
  config.remine_interval = remine_days.value() * kMinutesPerDay;
  config.mining_window = window_days.value() * kMinutesPerDay;
  if (!MineThreadsFromFlags(flags, err, config.mining.parallel)) return 1;
  if (!DeltaMineFromFlags(flags, err, config.mining.delta)) return 1;
  platform::Platform engine{bundle->model, config};

  const platform::durability::RecoveryManager manager{*dir};
  const auto report = manager.Recover(engine);
  PrintRecoveryReport(report, out);
  out << "recovered state: " << engine.stats().invocations
      << " invocations, cold " << engine.stats().cold_fraction() << ", "
      << engine.units().num_units() << " dependency sets, last minute "
      << engine.last_invocation_minute() << "\n";
  return SawCorruption(report) ? 2 : 0;
}

int CmdFsck(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  const auto dir = flags.Get("state-dir");
  if (!dir) {
    err << "error: --state-dir is required\n";
    return 1;
  }
  const platform::durability::RecoveryManager manager{*dir};
  const auto report = manager.Fsck();
  out << report.Render();
  return report.healthy ? 0 : 2;
}

/// The multi-shard serve path: N ShardHosts (each its own platform,
/// journal directory, admission queue, idempotency window) behind one
/// ShardRouter + ShardSupervisor, all served out of a single socket
/// listener. The supervisor ticks once per poll-loop iteration, so a
/// crashed shard is detected and restarted within one poll interval.
int ServeSharded(const TraceBundle& bundle,
                 const platform::PlatformConfig& config,
                 const FlagParser& flags, std::size_t num_shards,
                 const net::ServerLimits& limits,
                 std::size_t idempotency_window, Minute checkpoint_interval,
                 std::ostream& out, std::ostream& err) {
  const auto vnodes = flags.GetInt("vnodes", 64);
  const auto probe_threshold = flags.GetInt("probe-threshold", 3);
  const auto port = flags.GetInt("port", 0);
  if (!vnodes.ok() || vnodes.value() < 1) {
    err << "error: --vnodes must be a positive integer\n";
    return 1;
  }
  if (!probe_threshold.ok() || probe_threshold.value() < 1) {
    err << "error: --probe-threshold must be a positive integer\n";
    return 1;
  }

  const auto state_dir = flags.Get("state-dir");
  std::vector<std::unique_ptr<router::ShardHost>> hosts;
  std::vector<router::ShardHost*> shard_ptrs;
  hosts.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    router::ShardHost::Options options;
    options.platform = config;
    options.handler.idempotency_window = idempotency_window;
    options.limits = limits;
    if (state_dir) {
      options.state_dir = *state_dir + "/shard-" + std::to_string(i);
      options.durable.checkpoint_interval = checkpoint_interval;
    }
    hosts.push_back(
        std::make_unique<router::ShardHost>(bundle.model, options));
    auto started = hosts.back()->Start();
    if (!started.ok()) {
      err << "error: shard " << i
          << " failed to start: " << started.error().ToString() << "\n";
      return 2;
    }
    if (state_dir) {
      out << "shard " << i << " ";
      PrintRecoveryReport(started.value(), out);
    }
    shard_ptrs.push_back(hosts.back().get());
  }

  router::ShardRouterOptions router_options;
  router_options.vnodes_per_shard =
      static_cast<std::size_t>(vnodes.value());
  router::ShardRouter router{bundle.model, shard_ptrs, router_options};
  router::SupervisorOptions supervisor_options;
  supervisor_options.probe_loss_threshold =
      static_cast<std::uint32_t>(probe_threshold.value());
  router::ShardSupervisor supervisor{router, supervisor_options};

  net::ServerCore core{router, limits};
  net::SocketServer::Options socket_options;
  socket_options.host = flags.GetOr("host", "127.0.0.1");
  socket_options.port = static_cast<std::uint16_t>(port.value());
  net::SocketServer sock{core, socket_options};
  if (const auto listening = sock.Listen(); !listening.ok()) {
    err << "error: " << listening.error().ToString() << "\n";
    return 2;
  }
  out << "serving " << bundle.model.num_functions() << " functions on "
      << socket_options.host << ":" << sock.port() << " across "
      << num_shards << " shards (" << vnodes.value() << " vnodes each"
      << (config.async_remine ? ", async re-mining" : "")
      << (state_dir ? ", durable" : "") << ")\n";
  out.flush();

  ResetShutdownFlag();
  InstallShutdownSignalHandlers();
  while (!ShutdownRequested()) {
    if (const auto polled = sock.PollOnce(200); !polled.ok()) {
      err << "error: " << polled.error().ToString() << "\n";
      break;
    }
    supervisor.Tick();
  }

  out << "shutting down: draining " << core.open_connections()
      << " connections\n";
  sock.StopAccepting();
  core.BeginDrain();
  for (int i = 0; i < 100 && !(core.idle() && sock.flushed()); ++i) {
    if (const auto polled = sock.PollOnce(20); !polled.ok()) break;
  }
  std::vector<platform::PlatformStats> shard_stats;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (!hosts[i]->alive()) continue;  // down and unrecovered: journaled
    if (const auto drained = hosts[i]->handler().Drain(); !drained.ok()) {
      err << "warning: shard " << i << " final checkpoint failed: "
          << drained.error().ToString() << "\n";
    }
    shard_stats.push_back(hosts[i]->platform().stats());
  }
  sock.CloseAll();

  const platform::PlatformStats stats =
      router::MergeShardStats(shard_stats);
  const router::ShardRouterBooks& books = router.books();
  out << "served " << core.stats().requests_handled << " requests ("
      << books.forwarded << " forwarded, " << books.broadcasts
      << " broadcasts, " << books.unavailable_rejections
      << " shard-unavailable); " << stats.invocations
      << " invocations, cold " << stats.cold_fraction() << ", "
      << stats.remines << " re-mines\n";
  if (supervisor.books().restarts > 0 ||
      supervisor.books().downs_detected > 0) {
    out << "supervisor: " << supervisor.books().downs_detected
        << " shard deaths detected, " << supervisor.books().restarts
        << " restarts, " << supervisor.books().restart_failures
        << " restart failures\n";
  }
  return 0;
}

int CmdRoute(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  const auto bundle = LoadTrace(flags, err);
  if (!bundle) return 1;
  const auto shards = flags.GetInt("shards", 0);
  const auto vnodes = flags.GetInt("vnodes", 64);
  if (!shards.ok() || shards.value() < 1) {
    err << "error: --shards is required (a positive integer)\n";
    return 1;
  }
  if (!vnodes.ok() || vnodes.value() < 1) {
    err << "error: --vnodes must be a positive integer\n";
    return 1;
  }
  const router::HashRing ring{static_cast<std::size_t>(shards.value()),
                              static_cast<std::size_t>(vnodes.value())};
  if (const auto name = flags.Get("user")) {
    for (const auto& user : bundle->model.users()) {
      if (user.name == *name) {
        out << "user " << user.name << " -> shard "
            << ring.ShardForUser(user.id) << "\n";
        return 0;
      }
    }
    err << "error: no user named '" << *name << "' in the trace\n";
    return 1;
  }
  std::vector<std::size_t> users_per(ring.num_shards(), 0);
  std::vector<std::size_t> functions_per(ring.num_shards(), 0);
  for (const auto& user : bundle->model.users()) {
    ++users_per[ring.ShardForUser(user.id)];
  }
  for (const auto& fn : bundle->model.functions()) {
    ++functions_per[ring.ShardForUser(fn.user)];
  }
  out << "shard,users,functions\n";
  for (std::size_t s = 0; s < ring.num_shards(); ++s) {
    out << s << "," << users_per[s] << "," << functions_per[s] << "\n";
  }
  return 0;
}

int CmdServe(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  const auto bundle = LoadTrace(flags, err);
  if (!bundle) return 1;
  const auto remine_days = flags.GetInt("remine-days", 1);
  const auto window_days = flags.GetInt("window-days", 4);
  const auto checkpoint_days = flags.GetInt("checkpoint-days", 1);
  const auto port = flags.GetInt("port", 0);
  if (!remine_days.ok() || !window_days.ok() || !checkpoint_days.ok() ||
      remine_days.value() < 1 || window_days.value() < 1 ||
      checkpoint_days.value() < 1) {
    err << "error: --remine-days/--window-days/--checkpoint-days must be "
           "positive integers\n";
    return 1;
  }
  if (!port.ok() || port.value() < 0 || port.value() > 65535) {
    err << "error: --port must be in [0, 65535]\n";
    return 1;
  }
  const auto queue_bound = flags.GetInt("queue-bound", 256);
  const auto idempotency_window = flags.GetInt("idempotency-window", 1024);
  if (!queue_bound.ok() || queue_bound.value() < 1) {
    err << "error: --queue-bound must be a positive integer\n";
    return 1;
  }
  if (!idempotency_window.ok() || idempotency_window.value() < 0) {
    err << "error: --idempotency-window must be a non-negative integer\n";
    return 1;
  }

  platform::PlatformConfig config;
  config.horizon = bundle->trace.horizon().end;
  config.remine_interval = remine_days.value() * kMinutesPerDay;
  config.mining_window = window_days.value() * kMinutesPerDay;
  config.async_remine = flags.Has("async-remine");
  if (!MineThreadsFromFlags(flags, err, config.mining.parallel)) return 1;
  if (!DeltaMineFromFlags(flags, err, config.mining.delta)) return 1;

  net::ServerLimits limits;
  limits.max_queue_depth = static_cast<std::size_t>(queue_bound.value());
  const auto shards = flags.GetInt("shards", 1);
  if (!shards.ok() || shards.value() < 1) {
    err << "error: --shards must be a positive integer\n";
    return 1;
  }
  if (shards.value() > 1) {
    return ServeSharded(*bundle, config, flags,
                        static_cast<std::size_t>(shards.value()), limits,
                        static_cast<std::size_t>(idempotency_window.value()),
                        checkpoint_days.value() * kMinutesPerDay, out, err);
  }

  platform::Platform engine{bundle->model, config};

  std::optional<platform::durability::DurableState> durable;
  if (const auto dir = flags.Get("state-dir")) {
    platform::durability::DurableState::Options options;
    options.checkpoint_interval = checkpoint_days.value() * kMinutesPerDay;
    durable.emplace(*dir, options);
    if (const auto opened = durable->Open(); !opened.ok()) {
      err << "error: " << opened.error().ToString() << "\n";
      return 2;
    }
    auto recovered = durable->Recover(engine);
    if (!recovered.ok()) {
      err << "error: " << recovered.error().ToString() << "\n";
      return 2;
    }
    PrintRecoveryReport(recovered.value(), out);
  }

  server::PlatformServer::Options handler_options;
  handler_options.durable = durable ? &*durable : nullptr;
  handler_options.idempotency_window =
      static_cast<std::size_t>(idempotency_window.value());
  server::PlatformServer handler{engine, handler_options};
  net::ServerCore core{handler, limits};
  handler.set_core(&core);
  net::SocketServer::Options socket_options;
  socket_options.host = flags.GetOr("host", "127.0.0.1");
  socket_options.port = static_cast<std::uint16_t>(port.value());
  net::SocketServer sock{core, socket_options};
  if (const auto listening = sock.Listen(); !listening.ok()) {
    err << "error: " << listening.error().ToString() << "\n";
    return 2;
  }
  out << "serving " << bundle->model.num_functions() << " functions on "
      << socket_options.host << ":" << sock.port()
      << (config.async_remine ? " (async re-mining)" : "")
      << (durable ? " (durable)" : "") << "\n";
  out.flush();

  ResetShutdownFlag();
  InstallShutdownSignalHandlers();
  while (!ShutdownRequested()) {
    if (const auto polled = sock.PollOnce(200); !polled.ok()) {
      err << "error: " << polled.error().ToString() << "\n";
      break;
    }
  }

  // Drain: stop accepting, reject new requests, flush what is buffered
  // (bounded — a peer that never reads cannot hold shutdown hostage),
  // finish any background re-mine, take the final checkpoint.
  out << "shutting down: draining " << core.open_connections()
      << " connections\n";
  sock.StopAccepting();
  core.BeginDrain();
  for (int i = 0; i < 100 && !(core.idle() && sock.flushed()); ++i) {
    if (const auto polled = sock.PollOnce(20); !polled.ok()) break;
  }
  if (const auto drained = handler.Drain(); !drained.ok()) {
    err << "warning: final checkpoint failed: " << drained.error().ToString()
        << "\n";
  }
  sock.CloseAll();
  const auto& stats = engine.stats();
  out << "served " << core.stats().requests_handled << " requests ("
      << core.stats().requests_shed << " backpressure-shed, "
      << core.stats().requests_shed_overflow << " overflow-shed, "
      << core.stats().requests_expired + handler.deadline_rejections()
      << " deadline-expired, " << handler.duplicates_served()
      << " duplicates replayed); " << stats.invocations
      << " invocations, cold " << stats.cold_fraction() << ", "
      << stats.remines << " re-mines\n";
  if (const auto* acc = engine.delta_accumulator()) {
    out << "delta mining: " << acc->books().delta_mines << " delta mines, "
        << acc->books().full_rebuilds << " full rebuilds, "
        << acc->books().aborted_deltas << " rolled back\n";
  }
  if (handler.journal_failures() > 0) {
    err << "warning: " << handler.journal_failures()
        << " journal appends failed (those events were lossy)\n";
  }
  return 0;
}

int CmdDrive(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  const auto bundle = LoadTrace(flags, err);
  if (!bundle) return 1;
  const auto port = flags.GetInt("port", 0);
  if (!port.ok() || port.value() <= 0 || port.value() > 65535) {
    err << "error: --port is required (the port serve printed)\n";
    return 1;
  }
  auto channel = net::SocketChannel::Connect(
      flags.GetOr("host", "127.0.0.1"),
      static_cast<std::uint16_t>(port.value()));
  if (!channel.ok()) {
    err << "error: " << channel.error().ToString() << "\n";
    return 2;
  }
  server::Client client{std::move(channel).value()};

  // Same minute-index walk as replay, so the per-day lines of a driven
  // daemon are byte-comparable with a local replay of the same trace.
  const auto index = bundle->trace.BuildMinuteIndex(bundle->trace.horizon());
  std::uint64_t day_invocations = 0, day_cold = 0;
  Minute day = 0;
  out << "day,invocations,cold_fraction\n";
  for (Minute t = 0; t < bundle->trace.horizon().end; ++t) {
    for (const auto& [fn, count] : index.at(t)) {
      const auto outcome = client.Invoke(fn, t);
      if (!outcome.ok()) {
        err << "error: invoke(" << fn.value() << ", " << t
            << ") failed: " << outcome.error().ToString() << "\n";
        return 2;
      }
      ++day_invocations;
      day_cold += outcome.value().cold ? 1u : 0u;
    }
    if ((t + 1) % kMinutesPerDay == 0 ||
        t + 1 == bundle->trace.horizon().end) {
      char line[96];
      std::snprintf(line, sizeof line, "%lld,%llu,%.4f\n",
                    static_cast<long long>(day),
                    static_cast<unsigned long long>(day_invocations),
                    day_invocations == 0
                        ? 0.0
                        : static_cast<double>(day_cold) /
                              static_cast<double>(day_invocations));
      out << line;
      day_invocations = day_cold = 0;
      ++day;
    }
  }
  const auto stats = client.Stats();
  if (!stats.ok()) {
    err << "error: stats failed: " << stats.error().ToString() << "\n";
    return 2;
  }
  out << "server total: " << stats.value().stats.invocations
      << " invocations, cold " << stats.value().stats.cold_fraction() << ", "
      << stats.value().stats.remines << " re-mines\n";
  return 0;
}

int CmdHealth(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  const auto port = flags.GetInt("port", 0);
  if (!port.ok() || port.value() <= 0 || port.value() > 65535) {
    err << "error: --port is required (the port serve printed)\n";
    return 1;
  }
  auto channel = net::SocketChannel::Connect(
      flags.GetOr("host", "127.0.0.1"),
      static_cast<std::uint16_t>(port.value()));
  if (!channel.ok()) {
    err << "error: " << channel.error().ToString() << "\n";
    return 2;
  }
  server::Client client{std::move(channel).value()};
  const auto hello = client.Hello();
  if (!hello.ok()) {
    err << "error: hello failed: " << hello.error().ToString() << "\n";
    return 2;
  }
  const auto health = client.Health();
  if (!health.ok()) {
    err << "error: health probe failed: " << health.error().ToString()
        << "\n";
    return 2;
  }
  const auto& h = health.value();
  // Named conditions a prober alerts on. "recovering" is the residual
  // not-ready cause: the daemon is up but recovery has not completed
  // and no drain is in progress.
  std::vector<std::string> conditions;
  if (h.draining) conditions.push_back("draining");
  if (h.degraded_graph) conditions.push_back("degraded-graph");
  if (h.stale_graph_minutes > 0) conditions.push_back("stale-graph");
  if (!h.ready && !h.draining) conditions.push_back("recovering");
  if (flags.Has("json")) {
    out << "{\"ready\":" << (h.ready ? "true" : "false")
        << ",\"draining\":" << (h.draining ? "true" : "false")
        << ",\"remine_in_flight\":" << (h.remine_in_flight ? "true" : "false")
        << ",\"degraded_graph\":" << (h.degraded_graph ? "true" : "false")
        << ",\"queue_depth\":" << h.queue_depth
        << ",\"idempotency_entries\":" << h.idempotency_entries
        << ",\"stale_graph_minutes\":" << h.stale_graph_minutes
        << ",\"clock_minute\":" << h.clock_minute << ",\"conditions\":[";
    for (std::size_t i = 0; i < conditions.size(); ++i) {
      out << (i > 0 ? "," : "") << "\"" << conditions[i] << "\"";
    }
    out << "]}\n";
  } else {
    out << "ready: " << (h.ready ? "yes" : "no") << "\n"
        << "draining: " << (h.draining ? "yes" : "no") << "\n"
        << "remine in flight: " << (h.remine_in_flight ? "yes" : "no") << "\n"
        << "degraded graph: " << (h.degraded_graph ? "yes" : "no") << "\n"
        << "queue depth: " << h.queue_depth << "\n"
        << "idempotency entries: " << h.idempotency_entries << "\n"
        << "stale graph minutes: " << h.stale_graph_minutes << "\n"
        << "clock minute: " << h.clock_minute << "\n";
    if (!conditions.empty()) {
      out << "conditions:";
      for (const auto& c : conditions) out << " " << c;
      out << "\n";
    }
  }
  return h.ready ? 0 : 2;
}

}  // namespace

int RunCli(std::span<const std::string> args, std::ostream& out,
           std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << kUsage;
    return args.empty() ? 1 : 0;
  }
  const std::string& command = args[0];
  const FlagParser flags{args.subspan(1)};
  if (command == "generate") return CmdGenerate(flags, out, err);
  if (command == "inspect") return CmdInspect(flags, out, err);
  if (command == "mine") return CmdMine(flags, out, err);
  if (command == "simulate") return CmdSimulate(flags, out, err);
  if (command == "sweep") return CmdSweep(flags, out, err);
  if (command == "filter") return CmdFilter(flags, out, err);
  if (command == "adaptive") return CmdAdaptive(flags, out, err);
  if (command == "replay") return CmdReplay(flags, out, err);
  if (command == "recover") return CmdRecover(flags, out, err);
  if (command == "fsck") return CmdFsck(flags, out, err);
  if (command == "serve") return CmdServe(flags, out, err);
  if (command == "route") return CmdRoute(flags, out, err);
  if (command == "drive") return CmdDrive(flags, out, err);
  if (command == "health") return CmdHealth(flags, out, err);
  if (command == "compare") return CmdCompare(flags, out, err);
  if (command == "arena") return CmdArena(flags, out, err);
  if (command == "policies") return CmdPolicies(out);
  if (command == "scenarios") return CmdScenarios(out);
  err << "error: unknown command '" << command << "'\n" << kUsage;
  return 1;
}

}  // namespace defuse::cli
