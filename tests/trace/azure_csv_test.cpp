#include "trace/azure_csv.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "trace/generator.hpp"

namespace defuse::trace {
namespace {

/// A small hand-built workload for exact-content assertions.
LoadedTrace MakeTinyWorkload() {
  WorkloadModel model;
  const UserId u = model.AddUser("alice");
  const AppId a = model.AddApp(u, "shop");
  const FunctionId f0 = model.AddFunction(a, "checkout");
  const FunctionId f1 = model.AddFunction(a, "pay");
  InvocationTrace trace{2, TimeRange{0, 2 * kMinutesPerDay}};
  trace.Add(f0, 0, 3);
  trace.Add(f0, 100, 1);
  trace.Add(f1, 100, 2);
  trace.Add(f1, kMinutesPerDay + 5, 1);  // second day
  trace.Finalize();
  return LoadedTrace{.model = std::move(model), .trace = std::move(trace)};
}

TEST(LongCsv, RoundTripsExactly) {
  const auto original = MakeTinyWorkload();
  const std::string csv = WriteLongCsv(original.model, original.trace);
  const auto loaded = ReadLongCsv(csv, 2 * kMinutesPerDay);
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToString();
  const auto& lt = loaded.value();
  ASSERT_EQ(lt.model.num_functions(), 2u);
  EXPECT_EQ(lt.model.num_users(), 1u);
  EXPECT_EQ(lt.model.num_apps(), 1u);
  for (std::uint32_t f = 0; f < 2; ++f) {
    const FunctionId fn{f};
    const auto a = original.trace.series(fn);
    const auto b = lt.trace.series(fn);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(LongCsv, HeaderIsStable) {
  const auto w = MakeTinyWorkload();
  const std::string csv = WriteLongCsv(w.model, w.trace);
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "user,app,function,minute,count");
}

TEST(LongCsv, DefaultHorizonIsLastMinutePlusOne) {
  const auto w = MakeTinyWorkload();
  const auto loaded = ReadLongCsv(WriteLongCsv(w.model, w.trace));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().trace.horizon().end, kMinutesPerDay + 6);
}

TEST(LongCsv, RejectsBadHeader) {
  const auto loaded = ReadLongCsv("wrong,header\n");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kParseError);
}

TEST(LongCsv, RejectsShortRows) {
  const auto loaded =
      ReadLongCsv("user,app,function,minute,count\nu,a,f,3\n");
  ASSERT_FALSE(loaded.ok());
}

TEST(LongCsv, RejectsNonNumericMinute) {
  const auto loaded =
      ReadLongCsv("user,app,function,minute,count\nu,a,f,xyz,1\n");
  ASSERT_FALSE(loaded.ok());
}

TEST(LongCsv, RejectsHorizonShorterThanTrace) {
  const auto w = MakeTinyWorkload();
  const auto loaded = ReadLongCsv(WriteLongCsv(w.model, w.trace), 100);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kOutOfRange);
}

TEST(LongCsv, SameFunctionNameInDifferentAppsStaysDistinct) {
  const std::string csv =
      "user,app,function,minute,count\n"
      "u,a1,f,1,1\n"
      "u,a2,f,2,1\n";
  const auto loaded = ReadLongCsv(csv);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().model.num_functions(), 2u);
  EXPECT_EQ(loaded.value().model.num_apps(), 2u);
}

TEST(AzureCsv, DayFileHasHeaderAnd1444Columns) {
  const auto w = MakeTinyWorkload();
  const std::string day0 = WriteAzureDayCsv(w.model, w.trace, 0);
  const auto header_end = day0.find('\n');
  const std::string_view header{day0.data(), header_end};
  EXPECT_EQ(std::count(header.begin(), header.end(), ','), 1443);
  EXPECT_EQ(header.substr(0, 34), "HashOwner,HashApp,HashFunction,Tri");
}

TEST(AzureCsv, SilentFunctionsAreOmittedFromTheDay) {
  const auto w = MakeTinyWorkload();
  // Day 1 has only one active function ("pay").
  const std::string day1 = WriteAzureDayCsv(w.model, w.trace, 1);
  EXPECT_EQ(std::count(day1.begin(), day1.end(), '\n'), 2);  // header + 1 row
  EXPECT_NE(day1.find("pay"), std::string::npos);
  EXPECT_EQ(day1.find("checkout"), std::string::npos);
}

TEST(AzureCsv, RoundTripsThroughDailyFiles) {
  const auto original = MakeTinyWorkload();
  const std::vector<std::string> days{
      WriteAzureDayCsv(original.model, original.trace, 0),
      WriteAzureDayCsv(original.model, original.trace, 1)};
  const auto loaded = ReadAzureDayCsvs(days);
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToString();
  const auto& lt = loaded.value();
  ASSERT_EQ(lt.model.num_functions(), 2u);
  EXPECT_EQ(lt.trace.horizon().end, 2 * kMinutesPerDay);
  // Map by function name: ids may be permuted.
  for (const auto& fn : lt.model.functions()) {
    FunctionId orig_id = FunctionId::invalid();
    for (const auto& ofn : original.model.functions()) {
      if (ofn.name == fn.name) orig_id = ofn.id;
    }
    ASSERT_TRUE(orig_id.valid());
    const auto a = original.trace.series(orig_id);
    const auto b = lt.trace.series(fn.id);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(AzureCsv, EmptyDayListIsAnError) {
  const auto loaded = ReadAzureDayCsvs({});
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kInvalidArgument);
}

TEST(AzureCsv, RejectsWrongColumnCount) {
  const auto loaded = ReadAzureDayCsvs({"h\nu,a,f,trigger,1,2,3\n"});
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kParseError);
}

// ---------------------------------------------------------------------
// Malformed-input behavior, table-driven: every case lists what strict
// mode must reject and what lenient mode must skip/repair while keeping
// the load alive.

struct MalformedCase {
  const char* name;
  const char* csv;
  // Strict expectations.
  bool strict_ok;
  ErrorCode strict_code;  // meaningful when !strict_ok
  // Lenient expectations.
  std::uint64_t rows_skipped;
  std::uint64_t values_clamped;
  std::uint64_t duplicate_rows;
  std::size_t functions;  // surviving functions in the lenient model
};

constexpr MalformedCase kLongCsvCases[] = {
    {"empty buffer", "",
     false, ErrorCode::kParseError, 0, 0, 0, 0},
    {"header only", "user,app,function,minute,count\n",
     true, ErrorCode::kParseError, 0, 0, 0, 0},
    {"wrong column count",
     "user,app,function,minute,count\nu,a,f,3\nu,a,g,4,1\n",
     false, ErrorCode::kParseError, 1, 0, 0, 1},
    {"too many columns",
     "user,app,function,minute,count\nu,a,f,3,1,9\nu,a,g,4,1\n",
     false, ErrorCode::kParseError, 1, 0, 0, 1},
    {"non-numeric count",
     "user,app,function,minute,count\nu,a,f,3,x\nu,a,g,4,1\n",
     false, ErrorCode::kParseError, 1, 0, 0, 1},
    {"non-numeric minute",
     "user,app,function,minute,count\nu,a,f,?,1\nu,a,g,4,1\n",
     false, ErrorCode::kParseError, 1, 0, 0, 1},
    {"negative minute",
     "user,app,function,minute,count\nu,a,f,-2,1\nu,a,g,4,1\n",
     false, ErrorCode::kOutOfRange, 1, 0, 0, 1},
    {"count overflows uint32",
     "user,app,function,minute,count\nu,a,f,3,99999999999\n",
     false, ErrorCode::kOutOfRange, 0, 1, 0, 1},
    {"duplicate (function, minute) row",
     "user,app,function,minute,count\nu,a,f,3,1\nu,a,f,3,2\n",
     false, ErrorCode::kInvalidArgument, 0, 0, 1, 1},
    {"truncated final row",
     "user,app,function,minute,count\nu,a,f,3,1\nu,a,g,4",
     false, ErrorCode::kParseError, 1, 0, 0, 1},
};

TEST(LongCsvMalformed, StrictModeRejectsEachCase) {
  for (const auto& c : kLongCsvCases) {
    const auto loaded = ReadLongCsv(c.csv);
    if (c.strict_ok) {
      EXPECT_TRUE(loaded.ok()) << c.name;
      continue;
    }
    ASSERT_FALSE(loaded.ok()) << c.name;
    EXPECT_EQ(loaded.error().code, c.strict_code) << c.name;
  }
}

TEST(LongCsvMalformed, LenientModeSkipsCountsAndKeepsLoading) {
  for (const auto& c : kLongCsvCases) {
    ParseReport report;
    const auto loaded =
        ReadLongCsv(c.csv, 0, ParseMode::kLenient, &report);
    ASSERT_TRUE(loaded.ok()) << c.name << ": "
                             << (loaded.ok() ? "" : loaded.error().ToString());
    EXPECT_EQ(report.rows_skipped, c.rows_skipped) << c.name;
    EXPECT_EQ(report.values_clamped, c.values_clamped) << c.name;
    EXPECT_EQ(report.duplicate_rows, c.duplicate_rows) << c.name;
    EXPECT_EQ(loaded.value().model.num_functions(), c.functions) << c.name;
  }
}

TEST(LongCsvLenient, ReportTalliesPerErrorCode) {
  const std::string csv =
      "user,app,function,minute,count\n"
      "u,a,f,1,1\n"
      "u,a,f,bad,1\n"       // parse error
      "u,a,f,-1,1\n"        // out of range
      "u,a,f,1,2\n"         // duplicate
      "u,a,g,2,99999999999\n";  // clamped
  ParseReport report;
  const auto loaded = ReadLongCsv(csv, 0, ParseMode::kLenient, &report);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(report.data_rows, 5u);
  EXPECT_EQ(report.count(ErrorCode::kParseError), 1u);
  EXPECT_EQ(report.count(ErrorCode::kOutOfRange), 2u);  // negative + clamp
  EXPECT_EQ(report.count(ErrorCode::kInvalidArgument), 1u);
  EXPECT_EQ(report.total_anomalies(), 4u);
  EXPECT_FALSE(report.clean());
  // Duplicate keeps the FIRST occurrence.
  const auto& lt = loaded.value();
  ASSERT_EQ(lt.model.num_functions(), 2u);
  EXPECT_EQ(lt.trace.series(FunctionId{0})[0].count, 1u);
  // The clamped row survives with the max representable count.
  EXPECT_EQ(lt.trace.series(FunctionId{1})[0].count, 4294967295u);
}

TEST(LongCsvLenient, CleanInputLeavesReportClean) {
  const auto w = MakeTinyWorkload();
  ParseReport report;
  const auto loaded = ReadLongCsv(WriteLongCsv(w.model, w.trace), 0,
                                  ParseMode::kLenient, &report);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.rows_skipped, 0u);
}

TEST(LongCsvLenient, RejectedRowsLeaveNoPhantomFunctions) {
  // The malformed row names a function that appears nowhere else; the
  // lenient model must not contain it.
  const std::string csv =
      "user,app,function,minute,count\n"
      "u,a,ghost,bad,1\n"
      "u,a,real,1,1\n";
  const auto loaded = ReadLongCsv(csv, 0, ParseMode::kLenient);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().model.num_functions(), 1u);
  EXPECT_EQ(loaded.value().model.functions()[0].name, "real");
}

TEST(LongCsvLenient, RowsPastForcedHorizonAreDropped) {
  const std::string csv =
      "user,app,function,minute,count\n"
      "u,a,f,1,1\n"
      "u,a,f,500,1\n";
  ParseReport report;
  const auto loaded = ReadLongCsv(csv, 100, ParseMode::kLenient, &report);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(report.rows_skipped, 1u);
  EXPECT_EQ(loaded.value().trace.horizon().end, 100);
}

TEST(AzureCsvLenient, SkipsWrongColumnCountRows) {
  const auto w = MakeTinyWorkload();
  std::string day0 = WriteAzureDayCsv(w.model, w.trace, 0);
  day0 += "short,row,with,few,columns\n";
  ParseReport report;
  const auto loaded =
      ReadAzureDayCsvs({day0}, ParseMode::kLenient, &report);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(report.rows_skipped, 1u);
  EXPECT_EQ(report.count(ErrorCode::kParseError), 1u);
  EXPECT_EQ(loaded.value().model.num_functions(), 2u);
}

TEST(AzureCsvLenient, DuplicateFunctionRowKeepsFirst) {
  const auto w = MakeTinyWorkload();
  std::string day0 = WriteAzureDayCsv(w.model, w.trace, 0);
  // Append a duplicate of the first data row with different counts.
  const std::size_t first = day0.find('\n') + 1;
  std::string dup = day0.substr(first, day0.find('\n', first) + 1 - first);
  day0 += dup;
  ParseReport report;
  const auto loaded =
      ReadAzureDayCsvs({day0}, ParseMode::kLenient, &report);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(report.duplicate_rows, 1u);
}

TEST(AzureCsvLenient, TornCellIsDroppedRowSurvives) {
  std::string day0 = "header\nowner,app,fn,trigger";
  for (int m = 0; m < 1440; ++m) {
    day0 += (m == 7) ? ",x" : (m % 9 == 0 ? ",2" : ",0");
  }
  day0 += "\n";
  ParseReport report;
  const auto loaded =
      ReadAzureDayCsvs({day0}, ParseMode::kLenient, &report);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(report.count(ErrorCode::kParseError), 1u);
  EXPECT_EQ(loaded.value().model.num_functions(), 1u);
  EXPECT_GT(loaded.value().trace.TotalInvocations(
                loaded.value().trace.horizon()),
            0u);
  // Strict mode fails the same buffer.
  EXPECT_FALSE(ReadAzureDayCsvs({day0}).ok());
}

TEST(GeneratedWorkloadCsv, LongRoundTripOnSynthetic) {
  auto cfg = GeneratorConfig::Tiny();
  cfg.seed = 5;
  const auto w = GenerateWorkload(cfg);
  const auto loaded = ReadLongCsv(WriteLongCsv(w.model, w.trace),
                                  cfg.horizon_minutes);
  ASSERT_TRUE(loaded.ok());
  // The long format carries only functions with at least one event;
  // functions that never fired are (by design) not representable.
  std::size_t active_functions = 0;
  for (const auto& fn : w.model.functions()) {
    if (!w.trace.series(fn.id).empty()) ++active_functions;
  }
  EXPECT_EQ(loaded.value().model.num_functions(), active_functions);
  EXPECT_EQ(loaded.value().trace.TotalInvocations(w.trace.horizon()),
            w.trace.TotalInvocations(w.trace.horizon()));
}

}  // namespace
}  // namespace defuse::trace
