#include "trace/builder.hpp"

#include <gtest/gtest.h>

namespace defuse::trace {
namespace {

struct Chain {
  WorkloadBuilder builder{123};
  FunctionId a, b, c;
  Chain() {
    const UserId u = builder.AddUser("u");
    const AppId app = builder.AddApp(u, "app");
    a = builder.AddFunction(app, "a");
    b = builder.AddFunction(app, "b");
    c = builder.AddFunction(app, "c");
  }
};

TEST(WorkloadBuilder, PeriodicTriggerFiresOnSchedule) {
  Chain fx;
  fx.builder.AddPeriodicTrigger(fx.a, 10);
  const auto w = fx.builder.Build(100);
  const auto s = w.trace.series(fx.a);
  ASSERT_EQ(s.size(), 10u);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i].minute, static_cast<Minute>(i * 10));
  }
}

TEST(WorkloadBuilder, PeriodicPhaseOffsetsTheSchedule) {
  Chain fx;
  fx.builder.AddPeriodicTrigger(fx.a, 10, 7);
  const auto w = fx.builder.Build(30);
  const auto s = w.trace.series(fx.a);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].minute, 7);
  EXPECT_EQ(s[1].minute, 17);
}

TEST(WorkloadBuilder, CertainCallsPropagateTransitively) {
  Chain fx;
  fx.builder.AddCall(fx.a, fx.b);
  fx.builder.AddCall(fx.b, fx.c);
  fx.builder.AddPeriodicTrigger(fx.a, 20);
  const auto w = fx.builder.Build(200);
  EXPECT_EQ(w.trace.ActiveMinutes(fx.a, w.trace.horizon()),
            w.trace.ActiveMinutes(fx.b, w.trace.horizon()));
  EXPECT_EQ(w.trace.ActiveMinutes(fx.a, w.trace.horizon()),
            w.trace.ActiveMinutes(fx.c, w.trace.horizon()));
}

TEST(WorkloadBuilder, ProbabilisticCallsFireProportionally) {
  Chain fx;
  fx.builder.AddCall(fx.a, fx.b, 0.3);
  fx.builder.AddPeriodicTrigger(fx.a, 1);
  const auto w = fx.builder.Build(20000);
  const double ratio =
      static_cast<double>(w.trace.ActiveMinutes(fx.b, w.trace.horizon())) /
      static_cast<double>(w.trace.ActiveMinutes(fx.a, w.trace.horizon()));
  EXPECT_NEAR(ratio, 0.3, 0.02);
}

TEST(WorkloadBuilder, ZeroProbabilityNeverFires) {
  Chain fx;
  fx.builder.AddCall(fx.a, fx.b, 0.0);
  fx.builder.AddPeriodicTrigger(fx.a, 5);
  const auto w = fx.builder.Build(1000);
  EXPECT_EQ(w.trace.ActiveMinutes(fx.b, w.trace.horizon()), 0u);
}

TEST(WorkloadBuilder, CallDelaysShiftTheCallee) {
  Chain fx;
  fx.builder.AddCall(fx.a, fx.b, 1.0, 3);
  fx.builder.AddManualInvocation(fx.a, 10);
  // Manual invocations do not propagate; trigger the chain instead.
  fx.builder.AddPeriodicTrigger(fx.a, 50, 20);
  const auto w = fx.builder.Build(60);
  const auto sb = w.trace.series(fx.b);
  ASSERT_EQ(sb.size(), 1u);
  EXPECT_EQ(sb[0].minute, 23);
}

TEST(WorkloadBuilder, CyclesAreSafe) {
  Chain fx;
  fx.builder.AddCall(fx.a, fx.b);
  fx.builder.AddCall(fx.b, fx.c);
  fx.builder.AddCall(fx.c, fx.a);  // cycle
  fx.builder.AddPeriodicTrigger(fx.a, 10);
  const auto w = fx.builder.Build(100);
  // Each root event invokes each function exactly once.
  EXPECT_EQ(w.trace.ActiveMinutes(fx.a, w.trace.horizon()), 10u);
  EXPECT_EQ(w.trace.ActiveMinutes(fx.b, w.trace.horizon()), 10u);
  EXPECT_EQ(w.trace.ActiveMinutes(fx.c, w.trace.horizon()), 10u);
  for (const auto& e : w.trace.series(fx.a)) EXPECT_EQ(e.count, 1u);
}

TEST(WorkloadBuilder, DiamondInvokesSharedCalleeOnce) {
  Chain fx;
  // a -> b, a -> c, b -> c: c reached twice per event, fires once.
  fx.builder.AddCall(fx.a, fx.b);
  fx.builder.AddCall(fx.a, fx.c);
  fx.builder.AddCall(fx.b, fx.c);
  fx.builder.AddPeriodicTrigger(fx.a, 10);
  const auto w = fx.builder.Build(100);
  for (const auto& e : w.trace.series(fx.c)) EXPECT_EQ(e.count, 1u);
  EXPECT_EQ(w.trace.ActiveMinutes(fx.c, w.trace.horizon()), 10u);
}

TEST(WorkloadBuilder, PoissonTriggerMeanGapIsRespected) {
  Chain fx;
  fx.builder.AddPoissonTrigger(fx.a, 20.0);
  const auto w = fx.builder.Build(100000);
  const auto n = w.trace.ActiveMinutes(fx.a, w.trace.horizon());
  EXPECT_NEAR(static_cast<double>(n), 5000.0, 350.0);
}

TEST(WorkloadBuilder, DiurnalTriggerStaysInWindow) {
  Chain fx;
  fx.builder.AddDiurnalTrigger(fx.a, 600, 120, 5.0);  // 10:00-12:00 daily
  const auto w = fx.builder.Build(5 * kMinutesPerDay);
  for (const auto& e : w.trace.series(fx.a)) {
    const Minute in_day = e.minute % kMinutesPerDay;
    EXPECT_GE(in_day, 600);
    EXPECT_LT(in_day, 720);
  }
  EXPECT_GT(w.trace.ActiveMinutes(fx.a, w.trace.horizon()), 50u);
}

TEST(WorkloadBuilder, ManualInvocationsLandVerbatim) {
  Chain fx;
  fx.builder.AddManualInvocation(fx.b, 42, 3);
  fx.builder.AddManualInvocation(fx.b, 999999, 1);  // outside the horizon
  const auto w = fx.builder.Build(100);
  const auto s = w.trace.series(fx.b);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], (InvocationEvent{42, 3}));
}

TEST(WorkloadBuilder, BuildIsDeterministicPerSeed) {
  const auto make = [](std::uint64_t seed) {
    WorkloadBuilder b{seed};
    const UserId u = b.AddUser("u");
    const AppId app = b.AddApp(u, "app");
    const FunctionId a = b.AddFunction(app, "a");
    const FunctionId c = b.AddFunction(app, "c");
    b.AddCall(a, c, 0.5);
    b.AddPoissonTrigger(a, 15.0);
    return b.Build(5000);
  };
  const auto w1 = make(9);
  const auto w2 = make(9);
  const auto w3 = make(10);
  EXPECT_EQ(w1.trace.TotalInvocations(w1.trace.horizon()),
            w2.trace.TotalInvocations(w2.trace.horizon()));
  EXPECT_NE(w1.trace.TotalInvocations(w1.trace.horizon()),
            w3.trace.TotalInvocations(w3.trace.horizon()));
}

TEST(WorkloadBuilder, ModelIsSharedWithTheTrace) {
  Chain fx;
  fx.builder.AddPeriodicTrigger(fx.a, 10);
  const auto w = fx.builder.Build(100);
  EXPECT_EQ(w.model.num_functions(), 3u);
  EXPECT_EQ(w.model.function(fx.a).name, "a");
}

}  // namespace
}  // namespace defuse::trace
