#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "stats/descriptive.hpp"

namespace defuse::trace {
namespace {

GeneratorConfig TestConfig() {
  GeneratorConfig cfg = GeneratorConfig::Tiny();
  cfg.seed = 99;
  return cfg;
}

TEST(Generator, ProducesEntities) {
  const auto w = GenerateWorkload(TestConfig());
  EXPECT_GT(w.model.num_users(), 0u);
  EXPECT_GT(w.model.num_apps(), 0u);
  EXPECT_GT(w.model.num_functions(), 0u);
  EXPECT_GT(w.trace.TotalInvocations(w.trace.horizon()), 0u);
}

TEST(Generator, IsDeterministicInSeed) {
  const auto a = GenerateWorkload(TestConfig());
  const auto b = GenerateWorkload(TestConfig());
  ASSERT_EQ(a.model.num_functions(), b.model.num_functions());
  for (std::size_t f = 0; f < a.model.num_functions(); ++f) {
    const FunctionId fn{static_cast<std::uint32_t>(f)};
    const auto sa = a.trace.series(fn);
    const auto sb = b.trace.series(fn);
    ASSERT_EQ(sa.size(), sb.size()) << "function " << f;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i], sb[i]);
    }
  }
}

TEST(Generator, DifferentSeedsProduceDifferentTraces) {
  auto cfg = TestConfig();
  const auto a = GenerateWorkload(cfg);
  cfg.seed = 100;
  const auto b = GenerateWorkload(cfg);
  // Same structure parameters, but invocation patterns must differ.
  std::uint64_t diff = 0;
  const std::size_t n = std::min(a.model.num_functions(),
                                 b.model.num_functions());
  for (std::size_t f = 0; f < n; ++f) {
    const FunctionId fn{static_cast<std::uint32_t>(f)};
    if (a.trace.ActiveMinutes(fn, a.trace.horizon()) !=
        b.trace.ActiveMinutes(fn, b.trace.horizon())) {
      ++diff;
    }
  }
  EXPECT_GT(diff, 0u);
}

TEST(Generator, HorizonMatchesConfig) {
  auto cfg = TestConfig();
  cfg.horizon_minutes = 3 * kMinutesPerDay;
  const auto w = GenerateWorkload(cfg);
  EXPECT_EQ(w.trace.horizon(), (TimeRange{0, 3 * kMinutesPerDay}));
  // No events outside the horizon (Add would have asserted, but check the
  // boundary explicitly).
  for (const auto& fn : w.model.functions()) {
    const auto s = w.trace.series(fn.id);
    if (!s.empty()) {
      EXPECT_GE(s.front().minute, 0);
      EXPECT_LT(s.back().minute, cfg.horizon_minutes);
    }
  }
}

TEST(Generator, EveryFunctionBelongsToAnAppAndUser) {
  const auto w = GenerateWorkload(TestConfig());
  for (const auto& fn : w.model.functions()) {
    ASSERT_TRUE(fn.app.valid());
    ASSERT_TRUE(fn.user.valid());
    EXPECT_EQ(w.model.app(fn.app).user, fn.user);
  }
}

TEST(Generator, StrongGroupsShareAnApp) {
  const auto w = GenerateWorkload(TestConfig());
  ASSERT_FALSE(w.truth.strong_groups.empty());
  for (const auto& group : w.truth.strong_groups) {
    ASSERT_GE(group.size(), 2u);
    const AppId app = w.model.function(group.front()).app;
    for (const FunctionId fn : group) {
      EXPECT_EQ(w.model.function(fn).app, app);
    }
  }
}

TEST(Generator, StrongGroupMembersCoFire) {
  const auto w = GenerateWorkload(TestConfig());
  // Core groups fire together on every workflow trigger. Members may have
  // *extra* active minutes (common-service functions also receive weak
  // pings), so the invariant is: the least-active member's minutes are a
  // subset of every other member's.
  const auto minutes_of = [&](FunctionId fn) {
    std::vector<Minute> m;
    for (const auto& e : w.trace.series(fn)) m.push_back(e.minute);
    return m;
  };
  for (const auto& group : w.truth.strong_groups) {
    auto least = minutes_of(group.front());
    for (const FunctionId fn : group) {
      auto m = minutes_of(fn);
      if (m.size() < least.size()) least = std::move(m);
    }
    for (const FunctionId fn : group) {
      const auto m = minutes_of(fn);
      EXPECT_TRUE(std::includes(m.begin(), m.end(), least.begin(),
                                least.end()))
          << "member " << fn << " misses trigger minutes of its group";
    }
  }
}

TEST(Generator, WeakLinksConnectDistinctApps) {
  auto cfg = TestConfig();
  cfg.num_users = 40;  // enough users that some get common services
  const auto w = GenerateWorkload(cfg);
  ASSERT_FALSE(w.truth.weak_links.empty());
  for (const auto& [from, to] : w.truth.weak_links) {
    EXPECT_EQ(w.model.function(from).user, w.model.function(to).user);
    EXPECT_NE(w.model.function(from).app, w.model.function(to).app);
  }
}

TEST(Generator, FunctionTriggerKindsCoverTheMix) {
  auto cfg = TestConfig();
  cfg.num_users = 40;
  const auto w = GenerateWorkload(cfg);
  std::set<TriggerKind> kinds(w.truth.function_trigger.begin(),
                              w.truth.function_trigger.end());
  EXPECT_GE(kinds.size(), 3u);  // at least 3 of the 4 archetypes present
}

TEST(Generator, InvocationFrequencySkewExists) {
  // Paper Fig 2: most functions are invoked in a small fraction of their
  // app's active minutes. Verify the median within-app frequency is well
  // below 1.
  auto cfg = TestConfig();
  cfg.num_users = 30;
  const auto w = GenerateWorkload(cfg);
  std::vector<double> freqs;
  for (const auto& app : w.model.apps()) {
    const auto app_active = w.trace.GroupIdleTimes(app.functions,
                                                   w.trace.horizon());
    const double app_minutes =
        static_cast<double>(app_active.size()) + 1.0;
    if (app.functions.size() < 2 || app_minutes < 10) continue;
    for (const FunctionId fn : app.functions) {
      freqs.push_back(
          static_cast<double>(w.trace.ActiveMinutes(fn, w.trace.horizon())) /
          app_minutes);
    }
  }
  ASSERT_GT(freqs.size(), 20u);
  EXPECT_LT(stats::Percentile(freqs, 0.5), 0.8);
  // And some functions must be genuinely rare.
  EXPECT_LT(stats::Percentile(freqs, 0.1), 0.3);
}

TEST(Generator, CommonServiceUsersExist) {
  auto cfg = TestConfig();
  cfg.num_users = 40;
  cfg.frac_users_with_common_service = 1.0;
  const auto w = GenerateWorkload(cfg);
  // Every user should now have a "-common" app.
  std::size_t common_apps = 0;
  for (const auto& app : w.model.apps()) {
    if (app.name.find("-common") != std::string::npos) ++common_apps;
  }
  EXPECT_EQ(common_apps, w.model.num_users());
}

TEST(Generator, NoCommonServiceMeansNoWeakLinks) {
  auto cfg = TestConfig();
  cfg.frac_users_with_common_service = 0.0;
  const auto w = GenerateWorkload(cfg);
  EXPECT_TRUE(w.truth.weak_links.empty());
}

TEST(Generator, DefaultWeightsAreAllOnes) {
  const auto w = GenerateWorkload(TestConfig());
  ASSERT_EQ(w.function_weights.size(), w.model.num_functions());
  for (const double weight : w.function_weights) {
    EXPECT_DOUBLE_EQ(weight, 1.0);
  }
}

TEST(Generator, LognormalWeightsHaveMeanAboutOne) {
  auto cfg = TestConfig();
  cfg.num_users = 60;
  cfg.size_lognormal_sigma = 1.0;
  const auto w = GenerateWorkload(cfg);
  ASSERT_GT(w.function_weights.size(), 200u);
  double sum = 0.0;
  bool varied = false;
  for (const double weight : w.function_weights) {
    EXPECT_GT(weight, 0.0);
    sum += weight;
    varied |= std::abs(weight - 1.0) > 1e-9;
  }
  EXPECT_TRUE(varied);
  EXPECT_NEAR(sum / static_cast<double>(w.function_weights.size()), 1.0,
              0.25);
}

TEST(Generator, WeightsAreDeterministic) {
  auto cfg = TestConfig();
  cfg.size_lognormal_sigma = 0.5;
  const auto a = GenerateWorkload(cfg);
  const auto b = GenerateWorkload(cfg);
  EXPECT_EQ(a.function_weights, b.function_weights);
}

TEST(Generator, PresetScalesAreOrdered) {
  EXPECT_LT(GeneratorConfig::Tiny().num_users,
            GeneratorConfig::Small().num_users);
  EXPECT_LT(GeneratorConfig::Small().num_users,
            GeneratorConfig::Medium().num_users);
}

class GeneratorTriggerKindTest
    : public ::testing::TestWithParam<TriggerKind> {};

TEST_P(GeneratorTriggerKindTest, SingleKindWorkloadsGenerate) {
  auto cfg = TestConfig();
  cfg.frac_periodic = GetParam() == TriggerKind::kPeriodic ? 1.0 : 0.0;
  cfg.frac_poisson = GetParam() == TriggerKind::kPoisson ? 1.0 : 0.0;
  cfg.frac_diurnal = GetParam() == TriggerKind::kDiurnal ? 1.0 : 0.0;
  cfg.frac_bursty = GetParam() == TriggerKind::kBursty ? 1.0 : 0.0;
  cfg.frac_users_with_common_service = 0.0;
  const auto w = GenerateWorkload(cfg);
  EXPECT_GT(w.trace.TotalInvocations(w.trace.horizon()), 0u);
  for (const auto kind : w.truth.function_trigger) {
    EXPECT_EQ(kind, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, GeneratorTriggerKindTest,
                         ::testing::Values(TriggerKind::kPeriodic,
                                           TriggerKind::kPoisson,
                                           TriggerKind::kDiurnal,
                                           TriggerKind::kBursty));

TEST(Generator, DiurnalWorkloadConcentratesInADailyWindow) {
  auto cfg = TestConfig();
  cfg.frac_diurnal = 1.0;
  cfg.frac_periodic = cfg.frac_poisson = cfg.frac_bursty = 0.0;
  cfg.frac_users_with_common_service = 0.0;
  cfg.horizon_minutes = 6 * kMinutesPerDay;
  const auto w = GenerateWorkload(cfg);
  // Pick an active core function and check its minute-of-day spread is
  // bounded by the configured window (max 10 h).
  std::size_t checked = 0;
  for (const auto& group : w.truth.strong_groups) {
    const auto events = w.trace.series(group.front());
    if (events.size() < 30) continue;
    std::vector<Minute> mods;
    for (const auto& e : events) mods.push_back(e.minute % kMinutesPerDay);
    std::sort(mods.begin(), mods.end());
    // The circularly-smallest covering arc must be <= the max window.
    MinuteDelta best = kMinutesPerDay;
    for (std::size_t i = 0; i < mods.size(); ++i) {
      const Minute start = mods[i];
      const Minute prev = i == 0 ? mods.back() - kMinutesPerDay : mods[i - 1];
      best = std::min<MinuteDelta>(best, kMinutesPerDay - (start - prev));
    }
    EXPECT_LE(best, cfg.diurnal_window_max + 2);
    if (++checked >= 5) break;
  }
  EXPECT_GE(checked, 1u);
}

TEST(Generator, BurstyWorkloadHasDenseOnPeriods) {
  auto cfg = TestConfig();
  cfg.frac_bursty = 1.0;
  cfg.frac_periodic = cfg.frac_poisson = cfg.frac_diurnal = 0.0;
  cfg.frac_users_with_common_service = 0.0;
  const auto w = GenerateWorkload(cfg);
  // Bursty traffic: a large share of idle gaps are tiny (inside a
  // burst), with occasional long OFF gaps.
  std::vector<MinuteDelta> gaps;
  for (const auto& group : w.truth.strong_groups) {
    const auto g = w.trace.IdleTimes(group.front(), w.trace.horizon());
    gaps.insert(gaps.end(), g.begin(), g.end());
  }
  ASSERT_GT(gaps.size(), 100u);
  std::size_t tiny = 0, long_off = 0;
  for (const auto g : gaps) {
    if (g <= 5) ++tiny;
    if (g >= 100) ++long_off;
  }
  EXPECT_GT(static_cast<double>(tiny) / static_cast<double>(gaps.size()),
            0.5);
  EXPECT_GT(long_off, 10u);
}

TEST(Generator, PeriodicWorkloadHasPeakedIdleTimes) {
  auto cfg = TestConfig();
  cfg.frac_periodic = 1.0;
  cfg.frac_poisson = cfg.frac_diurnal = cfg.frac_bursty = 0.0;
  cfg.frac_users_with_common_service = 0.0;
  cfg.periodic_skip_prob = 0.0;
  cfg.periodic_jitter_prob = 0.0;
  const auto w = GenerateWorkload(cfg);
  // Pick a core function with enough activity; all gaps equal its period.
  bool checked = false;
  for (const auto& group : w.truth.strong_groups) {
    const auto gaps = w.trace.IdleTimes(group.front(), w.trace.horizon());
    if (gaps.size() < 10) continue;
    const auto first = gaps.front();
    EXPECT_TRUE(std::all_of(gaps.begin(), gaps.end(),
                            [&](MinuteDelta g) { return g == first; }));
    checked = true;
    break;
  }
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace defuse::trace
