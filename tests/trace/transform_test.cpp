#include "trace/transform.hpp"

#include <gtest/gtest.h>

#include "trace/generator.hpp"

namespace defuse::trace {
namespace {

SyntheticWorkload TinyWorkload(std::uint64_t seed = 61) {
  auto cfg = GeneratorConfig::Tiny();
  cfg.num_users = 8;
  cfg.seed = seed;
  return GenerateWorkload(cfg);
}

TEST(FilterUsers, KeepsOnlySelectedUsersEntities) {
  const auto w = TinyWorkload();
  const std::vector<UserId> keep{UserId{1}, UserId{3}};
  const auto filtered = FilterUsers(w.model, w.trace, keep);
  EXPECT_EQ(filtered.model.num_users(), 2u);
  const std::size_t expected_functions =
      w.model.FunctionsOfUser(UserId{1}).size() +
      w.model.FunctionsOfUser(UserId{3}).size();
  EXPECT_EQ(filtered.model.num_functions(), expected_functions);
  // Names survive the renumbering.
  EXPECT_EQ(filtered.model.user(UserId{0}).name, w.model.user(UserId{1}).name);
}

TEST(FilterUsers, PreservesInvocationSeries) {
  const auto w = TinyWorkload();
  const std::vector<UserId> keep{UserId{2}};
  const auto filtered = FilterUsers(w.model, w.trace, keep);
  // Match by function name and compare series exactly.
  for (const auto& new_fn : filtered.model.functions()) {
    FunctionId old_id = FunctionId::invalid();
    for (const auto& old_fn : w.model.functions()) {
      if (old_fn.name == new_fn.name) old_id = old_fn.id;
    }
    ASSERT_TRUE(old_id.valid());
    const auto a = w.trace.series(old_id);
    const auto b = filtered.trace.series(new_fn.id);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(FilterUsers, DuplicatesInSelectionAreIgnored) {
  const auto w = TinyWorkload();
  const std::vector<UserId> keep{UserId{0}, UserId{0}, UserId{0}};
  const auto filtered = FilterUsers(w.model, w.trace, keep);
  EXPECT_EQ(filtered.model.num_users(), 1u);
}

TEST(FilterUsers, EmptySelectionYieldsEmptyWorkload) {
  const auto w = TinyWorkload();
  const auto filtered = FilterUsers(w.model, w.trace, {});
  EXPECT_EQ(filtered.model.num_users(), 0u);
  EXPECT_EQ(filtered.model.num_functions(), 0u);
}

TEST(SampleUsers, SamplesTheRequestedCount) {
  const auto w = TinyWorkload();
  Rng rng{9};
  const auto sampled = SampleUsers(w.model, w.trace, 3, rng);
  EXPECT_EQ(sampled.model.num_users(), 3u);
}

TEST(SampleUsers, OversampleKeepsEverything) {
  const auto w = TinyWorkload();
  Rng rng{9};
  const auto sampled = SampleUsers(w.model, w.trace, 1000, rng);
  EXPECT_EQ(sampled.model.num_users(), w.model.num_users());
  EXPECT_EQ(sampled.trace.TotalInvocations(sampled.trace.horizon()),
            w.trace.TotalInvocations(w.trace.horizon()));
}

TEST(SampleUsers, DifferentSeedsDifferentSamples) {
  const auto w = TinyWorkload();
  Rng rng1{1}, rng2{2};
  const auto a = SampleUsers(w.model, w.trace, 4, rng1);
  const auto b = SampleUsers(w.model, w.trace, 4, rng2);
  std::vector<std::string> names_a, names_b;
  for (const auto& u : a.model.users()) names_a.push_back(u.name);
  for (const auto& u : b.model.users()) names_b.push_back(u.name);
  EXPECT_NE(names_a, names_b);
}

TEST(SliceTime, RebasesMinutesToZero) {
  const auto w = TinyWorkload();
  const TimeRange slice{kMinutesPerDay, 2 * kMinutesPerDay};
  const auto sliced = SliceTime(w.model, w.trace, slice);
  EXPECT_EQ(sliced.trace.horizon(), (TimeRange{0, kMinutesPerDay}));
  EXPECT_EQ(sliced.trace.TotalInvocations(sliced.trace.horizon()),
            w.trace.TotalInvocations(slice));
  EXPECT_EQ(sliced.model.num_functions(), w.model.num_functions());
}

TEST(SliceTime, SeriesShiftExactly) {
  WorkloadModel model;
  const UserId u = model.AddUser("u");
  const AppId a = model.AddApp(u, "a");
  const FunctionId f = model.AddFunction(a, "f");
  InvocationTrace trace{1, TimeRange{0, 100}};
  trace.Add(f, 30, 2);
  trace.Add(f, 70, 1);
  trace.Finalize();
  const auto sliced = SliceTime(model, trace, TimeRange{25, 75});
  const auto s = sliced.trace.series(f);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], (InvocationEvent{5, 2}));
  EXPECT_EQ(s[1], (InvocationEvent{45, 1}));
}

TEST(Merge, CombinesDisjointWorkloads) {
  const auto a = TinyWorkload(61);
  const auto b = TinyWorkload(62);
  const auto merged = Merge(a.model, a.trace, b.model, b.trace, "x-");
  EXPECT_EQ(merged.model.num_users(),
            a.model.num_users() + b.model.num_users());
  EXPECT_EQ(merged.model.num_functions(),
            a.model.num_functions() + b.model.num_functions());
  EXPECT_EQ(merged.trace.TotalInvocations(merged.trace.horizon()),
            a.trace.TotalInvocations(a.trace.horizon()) +
                b.trace.TotalInvocations(b.trace.horizon()));
}

TEST(Merge, PrefixesSecondWorkloadNames) {
  const auto a = TinyWorkload(61);
  const auto b = TinyWorkload(62);
  const auto merged = Merge(a.model, a.trace, b.model, b.trace, "x-");
  std::size_t prefixed = 0;
  for (const auto& user : merged.model.users()) {
    if (user.name.rfind("x-", 0) == 0) ++prefixed;
  }
  EXPECT_EQ(prefixed, b.model.num_users());
}

TEST(Merge, HorizonIsTheMax) {
  const auto a = TinyWorkload();
  auto cfg = GeneratorConfig::Tiny();
  cfg.horizon_minutes = 6 * kMinutesPerDay;
  cfg.num_users = 4;
  const auto b = GenerateWorkload(cfg);
  const auto merged = Merge(a.model, a.trace, b.model, b.trace);
  EXPECT_EQ(merged.trace.horizon().end, 6 * kMinutesPerDay);
}

TEST(RoundTrip, FilteredWorkloadSurvivesCsv) {
  const auto w = TinyWorkload();
  Rng rng{3};
  const auto sampled = SampleUsers(w.model, w.trace, 3, rng);
  const auto loaded = ReadLongCsv(
      WriteLongCsv(sampled.model, sampled.trace),
      sampled.trace.horizon().end);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().trace.TotalInvocations(loaded.value().trace.horizon()),
            sampled.trace.TotalInvocations(sampled.trace.horizon()));
}

}  // namespace
}  // namespace defuse::trace
