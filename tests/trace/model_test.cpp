#include "trace/model.hpp"

#include <gtest/gtest.h>

namespace defuse::trace {
namespace {

TEST(WorkloadModel, StartsEmpty) {
  WorkloadModel model;
  EXPECT_EQ(model.num_users(), 0u);
  EXPECT_EQ(model.num_apps(), 0u);
  EXPECT_EQ(model.num_functions(), 0u);
}

TEST(WorkloadModel, AddUserAssignsDenseIds) {
  WorkloadModel model;
  EXPECT_EQ(model.AddUser("u0").value(), 0u);
  EXPECT_EQ(model.AddUser("u1").value(), 1u);
  EXPECT_EQ(model.user(UserId{1}).name, "u1");
}

TEST(WorkloadModel, AddAppLinksToUser) {
  WorkloadModel model;
  const UserId u = model.AddUser("u");
  const AppId a = model.AddApp(u, "a");
  EXPECT_EQ(model.app(a).user, u);
  ASSERT_EQ(model.user(u).apps.size(), 1u);
  EXPECT_EQ(model.user(u).apps[0], a);
}

TEST(WorkloadModel, AddFunctionLinksToAppAndUser) {
  WorkloadModel model;
  const UserId u = model.AddUser("u");
  const AppId a = model.AddApp(u, "a");
  const FunctionId f = model.AddFunction(a, "f");
  EXPECT_EQ(model.function(f).app, a);
  EXPECT_EQ(model.function(f).user, u);
  ASSERT_EQ(model.app(a).functions.size(), 1u);
  EXPECT_EQ(model.app(a).functions[0], f);
}

TEST(WorkloadModel, FunctionsOfUserSpansApps) {
  WorkloadModel model;
  const UserId u0 = model.AddUser("u0");
  const UserId u1 = model.AddUser("u1");
  const AppId a0 = model.AddApp(u0, "a0");
  const AppId a1 = model.AddApp(u0, "a1");
  const AppId b0 = model.AddApp(u1, "b0");
  const FunctionId f0 = model.AddFunction(a0, "f0");
  const FunctionId f1 = model.AddFunction(a1, "f1");
  const FunctionId f2 = model.AddFunction(a1, "f2");
  const FunctionId g0 = model.AddFunction(b0, "g0");

  EXPECT_EQ(model.FunctionsOfUser(u0),
            (std::vector<FunctionId>{f0, f1, f2}));
  EXPECT_EQ(model.FunctionsOfUser(u1), (std::vector<FunctionId>{g0}));
}

TEST(WorkloadModel, FunctionsOfUserWithNoAppsIsEmpty) {
  WorkloadModel model;
  const UserId u = model.AddUser("u");
  EXPECT_TRUE(model.FunctionsOfUser(u).empty());
}

TEST(WorkloadModel, IdsIndexTheVectors) {
  WorkloadModel model;
  const UserId u = model.AddUser("u");
  const AppId a = model.AddApp(u, "a");
  for (int i = 0; i < 5; ++i) {
    model.AddFunction(a, "f" + std::to_string(i));
  }
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(model.functions()[i].id, FunctionId{i});
  }
}

}  // namespace
}  // namespace defuse::trace
