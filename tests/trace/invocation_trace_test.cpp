#include "trace/invocation_trace.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace defuse::trace {
namespace {

constexpr FunctionId kF0{0};
constexpr FunctionId kF1{1};

TEST(InvocationTrace, EmptyTrace) {
  InvocationTrace trace{2, TimeRange{0, 100}};
  trace.Finalize();
  EXPECT_TRUE(trace.series(kF0).empty());
  EXPECT_EQ(trace.TotalInvocations(kF0, TimeRange{0, 100}), 0u);
}

TEST(InvocationTrace, AddAccumulatesSameMinute) {
  InvocationTrace trace{1, TimeRange{0, 10}};
  trace.Add(kF0, 3, 2);
  trace.Add(kF0, 3, 5);
  trace.Finalize();
  ASSERT_EQ(trace.series(kF0).size(), 1u);
  EXPECT_EQ(trace.series(kF0)[0], (InvocationEvent{3, 7}));
}

TEST(InvocationTrace, ZeroCountIsIgnored) {
  InvocationTrace trace{1, TimeRange{0, 10}};
  trace.Add(kF0, 3, 0);
  trace.Finalize();
  EXPECT_TRUE(trace.series(kF0).empty());
}

TEST(InvocationTrace, OutOfOrderEventsAreSortedAndCoalesced) {
  InvocationTrace trace{1, TimeRange{0, 10}};
  trace.Add(kF0, 5);
  trace.Add(kF0, 2);
  trace.Add(kF0, 5, 3);
  trace.Add(kF0, 2);
  trace.Finalize();
  const auto s = trace.series(kF0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], (InvocationEvent{2, 2}));
  EXPECT_EQ(s[1], (InvocationEvent{5, 4}));
}

TEST(InvocationTrace, FinalizeIsIdempotent) {
  InvocationTrace trace{1, TimeRange{0, 10}};
  trace.Add(kF0, 5);
  trace.Add(kF0, 2);
  trace.Finalize();
  trace.Finalize();
  EXPECT_EQ(trace.series(kF0).size(), 2u);
}

TEST(InvocationTrace, SeriesInRangeClipsBothEnds) {
  InvocationTrace trace{1, TimeRange{0, 100}};
  for (Minute t : {10, 20, 30, 40, 50}) trace.Add(kF0, t);
  trace.Finalize();
  const auto s = trace.SeriesInRange(kF0, TimeRange{20, 41});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].minute, 20);
  EXPECT_EQ(s[2].minute, 40);
}

TEST(InvocationTrace, SeriesInRangeEmptyRange) {
  InvocationTrace trace{1, TimeRange{0, 100}};
  trace.Add(kF0, 5);
  trace.Finalize();
  EXPECT_TRUE(trace.SeriesInRange(kF0, TimeRange{6, 6}).empty());
  EXPECT_TRUE(trace.SeriesInRange(kF0, TimeRange{50, 60}).empty());
}

TEST(InvocationTrace, TotalAndActiveMinutes) {
  InvocationTrace trace{2, TimeRange{0, 100}};
  trace.Add(kF0, 1, 10);
  trace.Add(kF0, 2, 5);
  trace.Add(kF1, 2, 1);
  trace.Finalize();
  EXPECT_EQ(trace.TotalInvocations(kF0, TimeRange{0, 100}), 15u);
  EXPECT_EQ(trace.ActiveMinutes(kF0, TimeRange{0, 100}), 2u);
  EXPECT_EQ(trace.TotalInvocations(TimeRange{0, 100}), 16u);
  EXPECT_EQ(trace.TotalInvocations(TimeRange{2, 3}), 6u);
}

TEST(InvocationTrace, IdleTimesAreGapsBetweenActiveMinutes) {
  InvocationTrace trace{1, TimeRange{0, 100}};
  for (Minute t : {3, 5, 10}) trace.Add(kF0, t);
  trace.Finalize();
  EXPECT_EQ(trace.IdleTimes(kF0, TimeRange{0, 100}),
            (std::vector<MinuteDelta>{2, 5}));
}

TEST(InvocationTrace, IdleTimesNeedTwoEvents) {
  InvocationTrace trace{1, TimeRange{0, 100}};
  trace.Add(kF0, 3);
  trace.Finalize();
  EXPECT_TRUE(trace.IdleTimes(kF0, TimeRange{0, 100}).empty());
}

TEST(InvocationTrace, IdleTimesRespectRange) {
  InvocationTrace trace{1, TimeRange{0, 100}};
  for (Minute t : {0, 10, 20, 30}) trace.Add(kF0, t);
  trace.Finalize();
  // Only events at 10 and 20 are inside [5, 25).
  EXPECT_EQ(trace.IdleTimes(kF0, TimeRange{5, 25}),
            (std::vector<MinuteDelta>{10}));
}

TEST(InvocationTrace, GroupIdleTimesUnionActiveMinutes) {
  InvocationTrace trace{2, TimeRange{0, 100}};
  for (Minute t : {0, 20}) trace.Add(kF0, t);
  for (Minute t : {10, 30}) trace.Add(kF1, t);
  trace.Finalize();
  const std::vector<FunctionId> group{kF0, kF1};
  EXPECT_EQ(trace.GroupIdleTimes(group, TimeRange{0, 100}),
            (std::vector<MinuteDelta>{10, 10, 10}));
}

TEST(InvocationTrace, GroupIdleTimesDeduplicatesSharedMinutes) {
  InvocationTrace trace{2, TimeRange{0, 100}};
  trace.Add(kF0, 5);
  trace.Add(kF1, 5);
  trace.Add(kF0, 9);
  trace.Finalize();
  const std::vector<FunctionId> group{kF0, kF1};
  EXPECT_EQ(trace.GroupIdleTimes(group, TimeRange{0, 100}),
            (std::vector<MinuteDelta>{4}));
}

TEST(InvocationTrace, GroupIdleTimesSingleFunctionMatchesIdleTimes) {
  InvocationTrace trace{1, TimeRange{0, 100}};
  for (Minute t : {1, 4, 9}) trace.Add(kF0, t);
  trace.Finalize();
  const std::vector<FunctionId> group{kF0};
  EXPECT_EQ(trace.GroupIdleTimes(group, TimeRange{0, 100}),
            trace.IdleTimes(kF0, TimeRange{0, 100}));
}

TEST(MinuteIndex, ListsFunctionsPerMinute) {
  InvocationTrace trace{3, TimeRange{0, 10}};
  trace.Add(kF0, 2, 1);
  trace.Add(kF1, 2, 4);
  trace.Add(FunctionId{2}, 5, 2);
  trace.Finalize();
  const auto index = trace.BuildMinuteIndex(TimeRange{0, 10});
  EXPECT_TRUE(index.at(0).empty());
  ASSERT_EQ(index.at(2).size(), 2u);
  EXPECT_EQ(index.at(2)[0].first, kF0);
  EXPECT_EQ(index.at(2)[1].first, kF1);
  EXPECT_EQ(index.at(2)[1].second, 4u);
  ASSERT_EQ(index.at(5).size(), 1u);
  EXPECT_TRUE(index.at(11).empty());  // out of range
}

TEST(MinuteIndex, SubRangeOnly) {
  InvocationTrace trace{1, TimeRange{0, 100}};
  trace.Add(kF0, 5);
  trace.Add(kF0, 50);
  trace.Finalize();
  const auto index = trace.BuildMinuteIndex(TimeRange{40, 60});
  EXPECT_TRUE(index.at(5).empty());  // outside the indexed range
  EXPECT_EQ(index.at(50).size(), 1u);
}

}  // namespace
}  // namespace defuse::trace
