// Loopback transport + ServerCore: framing, dispatch, backpressure and
// drain, exercised without a socket. The loopback channel pumps the
// core synchronously on the calling thread, so every scenario here is a
// pure function of the bytes sent — the same properties the poll-based
// socket transport relies on, enforced in the one shared place.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/io/framed.hpp"
#include "common/result.hpp"
#include "net/frame_decoder.hpp"
#include "net/loopback.hpp"
#include "net/server_core.hpp"
#include "net/transport.hpp"

namespace defuse::net {
namespace {

/// Minimal application half: echoes the request back with a marker, and
/// encodes transport errors as "err:<code>:<message>" so tests can tell
/// a shed from a drain rejection without the full protocol.
class EchoHandler final : public RequestHandler {
 public:
  std::string HandleRequest(std::string_view request) override {
    return "echo:" + std::string{request};
  }
  std::string EncodeTransportError(const Error& error) override {
    return "err:" + std::to_string(static_cast<int>(error.code)) + ":" +
           error.message;
  }
};

/// Reads from `channel` until `decoder` yields one frame.
Result<std::string> ReadFrame(ClientChannel& channel, FrameDecoder& decoder) {
  std::string payload;
  for (;;) {
    switch (decoder.Next(payload)) {
      case FrameDecoder::State::kFrame:
        return payload;
      case FrameDecoder::State::kCorrupt:
        return decoder.last_error();
      case FrameDecoder::State::kNeedMore:
        break;
    }
    std::string chunk;
    auto got = channel.Read(chunk, 4096);
    if (!got.ok()) return got.error();
    decoder.Feed(chunk);
  }
}

Result<std::string> RoundTrip(ClientChannel& channel, FrameDecoder& decoder,
                              std::string_view request) {
  std::string framed;
  io::AppendFrame(framed, request);
  if (auto wrote = channel.WriteAll(framed); !wrote.ok()) {
    return wrote.error();
  }
  return ReadFrame(channel, decoder);
}

TEST(Loopback, EchoRoundTripsAreDeterministic) {
  EchoHandler handler;
  ServerCore core{handler};
  LoopbackServer server{core};
  auto channel = server.Connect();
  ASSERT_TRUE(channel.ok()) << channel.error().message;
  FrameDecoder decoder;

  for (int i = 0; i < 50; ++i) {
    const std::string request = "ping " + std::to_string(i);
    auto reply = RoundTrip(*channel.value(), decoder, request);
    ASSERT_TRUE(reply.ok()) << reply.error().message;
    EXPECT_EQ(reply.value(), "echo:" + request);
  }
  EXPECT_EQ(core.stats().requests_handled, 50u);
  EXPECT_EQ(core.stats().requests_shed, 0u);
  EXPECT_EQ(core.stats().protocol_errors, 0u);
}

TEST(Loopback, ConnectionsAreIsolated) {
  EchoHandler handler;
  ServerCore core{handler};
  LoopbackServer server{core};
  auto a = server.Connect();
  auto b = server.Connect();
  ASSERT_TRUE(a.ok() && b.ok());
  FrameDecoder da, db;

  // Interleave: write on both before reading either. Each connection
  // must only ever see its own responses.
  std::string frame_a, frame_b;
  io::AppendFrame(frame_a, "from-a");
  io::AppendFrame(frame_b, "from-b");
  ASSERT_TRUE(a.value()->WriteAll(frame_a).ok());
  ASSERT_TRUE(b.value()->WriteAll(frame_b).ok());

  auto ra = ReadFrame(*a.value(), da);
  auto rb = ReadFrame(*b.value(), db);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra.value(), "echo:from-a");
  EXPECT_EQ(rb.value(), "echo:from-b");
  EXPECT_EQ(core.open_connections(), 2u);
}

// A slow reader: requests keep arriving while nothing is drained. Once
// the connection's output backlog passes max_write_buffer the handler
// must stop being invoked (shed, kResourceExhausted); past 2x the
// connection is condemned and, after its buffered output is read, the
// channel reports closed.
TEST(Loopback, BackpressureShedsThenCondemns) {
  EchoHandler handler;
  ServerLimits limits;
  limits.max_write_buffer = 256;  // tiny, so a few echoes blow it
  ServerCore core{handler, limits};
  LoopbackServer server{core};
  auto channel = server.Connect();
  ASSERT_TRUE(channel.ok());

  const std::string request(100, 'x');  // ~100-byte echo per request
  std::string framed;
  io::AppendFrame(framed, request);

  // Stuff requests without reading until the core condemns the conn.
  // Writes must keep succeeding while the server sheds — the error
  // responses are queued for the client to read, not thrown away.
  int writes = 0;
  for (; writes < 64; ++writes) {
    auto wrote = channel.value()->WriteAll(framed);
    ASSERT_TRUE(wrote.ok()) << wrote.error().message;
    if (core.stats().requests_shed > 0 && core.open_connections() == 0) {
      ++writes;
      break;
    }
  }
  EXPECT_GT(core.stats().requests_shed, 0u);
  EXPECT_LT(core.stats().requests_handled,
            static_cast<std::uint64_t>(writes));

  // Drain the pending output: echoes first, then shed error responses.
  FrameDecoder decoder;
  std::uint64_t echoes = 0, sheds = 0;
  for (;;) {
    auto reply = ReadFrame(*channel.value(), decoder);
    if (!reply.ok()) break;  // server closed after the flush
    if (reply.value().rfind("echo:", 0) == 0) {
      ++echoes;
    } else {
      const std::string expect =
          "err:" + std::to_string(static_cast<int>(
                       ErrorCode::kResourceExhausted));
      EXPECT_EQ(reply.value().substr(0, expect.size()), expect);
      ++sheds;
    }
  }
  EXPECT_EQ(echoes, core.stats().requests_handled);
  EXPECT_EQ(sheds, core.stats().requests_shed);
  EXPECT_EQ(core.open_connections(), 0u);
  EXPECT_EQ(core.stats().connections_closed, 1u);
}

TEST(Loopback, OversizedFrameCondemnsWithOneError) {
  EchoHandler handler;
  ServerLimits limits;
  limits.max_frame_payload = 64;
  ServerCore core{handler, limits};
  LoopbackServer server{core};
  auto channel = server.Connect();
  ASSERT_TRUE(channel.ok());

  std::string framed;
  io::AppendFrame(framed, std::string(1000, 'z'));
  ASSERT_TRUE(channel.value()->WriteAll(framed).ok());

  FrameDecoder decoder;
  auto reply = ReadFrame(*channel.value(), decoder);
  ASSERT_TRUE(reply.ok());
  const std::string expect =
      "err:" +
      std::to_string(static_cast<int>(ErrorCode::kResourceExhausted));
  EXPECT_EQ(reply.value().substr(0, expect.size()), expect);
  EXPECT_EQ(core.stats().protocol_errors, 1u);

  auto next = ReadFrame(*channel.value(), decoder);
  EXPECT_FALSE(next.ok());  // closed after the error flushed
  EXPECT_EQ(core.open_connections(), 0u);
}

TEST(Loopback, GarbageBytesCondemnWithOneError) {
  EchoHandler handler;
  ServerCore core{handler};
  LoopbackServer server{core};
  auto channel = server.Connect();
  ASSERT_TRUE(channel.ok());

  ASSERT_TRUE(channel.value()->WriteAll("not a frame at all\n").ok());
  FrameDecoder decoder;
  auto reply = ReadFrame(*channel.value(), decoder);
  ASSERT_TRUE(reply.ok());
  const std::string expect =
      "err:" + std::to_string(static_cast<int>(ErrorCode::kDataLoss));
  EXPECT_EQ(reply.value().substr(0, expect.size()), expect);
  EXPECT_EQ(core.stats().protocol_errors, 1u);
  EXPECT_FALSE(ReadFrame(*channel.value(), decoder).ok());
}

TEST(Loopback, DrainRejectsNewWorkButFlushesBufferedOutput) {
  EchoHandler handler;
  ServerCore core{handler};
  LoopbackServer server{core};
  auto channel = server.Connect();
  ASSERT_TRUE(channel.ok());
  FrameDecoder decoder;

  // Queue one response, then start draining before reading it.
  std::string framed;
  io::AppendFrame(framed, "before-drain");
  ASSERT_TRUE(channel.value()->WriteAll(framed).ok());
  core.BeginDrain();
  EXPECT_FALSE(core.idle());  // the buffered echo still owes a flush

  // New connections are refused...
  auto late = server.Connect();
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.error().code, ErrorCode::kResourceExhausted);

  // ...new requests on existing connections are rejected with
  // kFailedPrecondition...
  std::string framed2;
  io::AppendFrame(framed2, "during-drain");
  ASSERT_TRUE(channel.value()->WriteAll(framed2).ok());

  // ...but the buffered response and the rejection both flush.
  auto first = ReadFrame(*channel.value(), decoder);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), "echo:before-drain");
  auto second = ReadFrame(*channel.value(), decoder);
  ASSERT_TRUE(second.ok());
  const std::string expect =
      "err:" +
      std::to_string(static_cast<int>(ErrorCode::kFailedPrecondition));
  EXPECT_EQ(second.value().substr(0, expect.size()), expect);
  EXPECT_EQ(core.stats().requests_rejected_draining, 1u);
  EXPECT_TRUE(core.idle());
}

}  // namespace
}  // namespace defuse::net
