// Frame-decoder fuzz table: the serving layer trusts FrameDecoder to
// turn an adversarial byte stream into either verified payloads or a
// terminal corrupt state — never a wrong payload, never an over-read.
//
// The tables below cover the failure modes a network peer can produce:
// truncation at every byte boundary, a single flipped bit anywhere in
// the stream, oversized/zero-length frames, header floods, and plain
// garbage. Every case must either reproduce the original frames exactly
// (as a prefix) or stop cleanly — and the suite runs under the same
// ASan/UBSan flags as the rest of tier 1, so an over-read would abort.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/io/framed.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "net/frame_decoder.hpp"

namespace defuse::net {
namespace {

/// Payloads chosen to attack the framing: embedded newlines, embedded
/// "f " pseudo-headers, empty, binary with NUL and 0xff bytes.
std::vector<std::string> HostilePayloads() {
  std::vector<std::string> payloads;
  payloads.emplace_back("hello");
  payloads.emplace_back("");  // zero-length frame is legal
  payloads.emplace_back("line1\nline2\n");
  payloads.emplace_back("f 12 deadbeef\nnot a frame\n");
  std::string binary;
  for (int i = 0; i < 64; ++i) {
    binary.push_back(static_cast<char>(i * 5 % 256));
  }
  binary.push_back('\0');
  binary.push_back(static_cast<char>(0xff));
  payloads.push_back(binary);
  payloads.emplace_back("tail");
  return payloads;
}

std::string EncodeAll(const std::vector<std::string>& payloads) {
  std::string wire;
  for (const auto& p : payloads) io::AppendFrame(wire, p);
  return wire;
}

/// Feeds `wire` in chunks drawn from `rng` and returns every decoded
/// frame. Fails the test if the decoder ever reports corruption.
std::vector<std::string> DecodeChunked(std::string_view wire, Rng& rng) {
  FrameDecoder decoder;
  std::vector<std::string> frames;
  std::string payload;
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const std::size_t chunk = 1 + rng.NextBelow(7);
    const std::size_t n = std::min(chunk, wire.size() - pos);
    decoder.Feed(wire.substr(pos, n));
    pos += n;
    for (;;) {
      const FrameDecoder::State state = decoder.Next(payload);
      if (state == FrameDecoder::State::kFrame) {
        frames.push_back(payload);
        continue;
      }
      EXPECT_EQ(state, FrameDecoder::State::kNeedMore)
          << decoder.last_error().message;
      break;
    }
  }
  return frames;
}

TEST(FrameDecoder, ChunkedRoundTripMatchesScanFramesForManySeeds) {
  const std::vector<std::string> payloads = HostilePayloads();
  const std::string wire = EncodeAll(payloads);
  // The whole-buffer scanner is the reference implementation.
  const io::FrameScan scan = io::ScanFrames(wire);
  ASSERT_FALSE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), payloads.size());

  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    Rng rng{seed};
    const std::vector<std::string> frames = DecodeChunked(wire, rng);
    ASSERT_EQ(frames.size(), payloads.size()) << "seed " << seed;
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      EXPECT_EQ(frames[i], payloads[i]) << "seed " << seed << " frame " << i;
    }
  }
}

TEST(FrameDecoder, SingleByteFeedsDecodeEveryFrame) {
  const std::vector<std::string> payloads = HostilePayloads();
  const std::string wire = EncodeAll(payloads);
  FrameDecoder decoder;
  std::vector<std::string> frames;
  std::string payload;
  for (char byte : wire) {
    decoder.Feed(std::string_view{&byte, 1});
    while (decoder.Next(payload) == FrameDecoder::State::kFrame) {
      frames.push_back(payload);
    }
  }
  ASSERT_EQ(frames.size(), payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(frames[i], payloads[i]);
  }
}

// Truncation table: for EVERY strict prefix of a valid multi-frame
// stream, a fresh decoder must produce exactly the frames that are
// complete within the prefix and then ask for more — never a wrong
// frame, never corruption, never a read past the prefix.
TEST(FrameDecoder, TruncationAtEveryPrefixIsClean) {
  const std::vector<std::string> payloads = HostilePayloads();
  const std::string wire = EncodeAll(payloads);

  // Frame boundaries, so we know how many frames each prefix holds.
  std::vector<std::size_t> ends;
  {
    std::string partial;
    for (const auto& p : payloads) {
      io::AppendFrame(partial, p);
      ends.push_back(partial.size());
    }
  }

  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    // Copy the prefix into an exactly-sized buffer so ASan catches any
    // read past the truncation point.
    const std::string prefix{wire.substr(0, cut)};
    std::size_t expect_frames = 0;
    while (expect_frames < ends.size() && ends[expect_frames] <= cut) {
      ++expect_frames;
    }

    FrameDecoder decoder;
    decoder.Feed(prefix);
    std::string payload;
    std::size_t got = 0;
    FrameDecoder::State state;
    while ((state = decoder.Next(payload)) == FrameDecoder::State::kFrame) {
      ASSERT_LT(got, payloads.size()) << "cut " << cut;
      EXPECT_EQ(payload, payloads[got]) << "cut " << cut;
      ++got;
    }
    EXPECT_EQ(state, FrameDecoder::State::kNeedMore)
        << "cut " << cut << ": " << decoder.last_error().message;
    EXPECT_EQ(got, expect_frames) << "cut " << cut;
  }
}

// Bit-flip table: flipping ANY single bit of the stream must never
// produce a frame that differs from the originals. The CRC32C covers
// every payload bit; the header and terminators are syntax-checked; so
// each run yields a prefix of the original frames and then either
// corruption or a stall (a flipped length digit can legally make the
// decoder wait for bytes that will never come). A handful of header
// flips are semantically neutral — hex parsing accepts both cases, so
// 'a'^0x20 = 'A' decodes the same frame — which is why the invariant is
// "never a WRONG frame", not "the flipped frame never decodes".
TEST(FrameDecoder, EverySingleBitFlipIsContained) {
  std::vector<std::string> payloads;
  payloads.emplace_back("alpha\n");
  payloads.emplace_back("bravo bravo");
  payloads.emplace_back("");
  payloads.emplace_back("charlie\0delta", 13);
  const std::string wire = EncodeAll(payloads);

  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    std::string flipped = wire;
    flipped[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(flipped[bit / 8]) ^ (1u << (bit % 8)));

    FrameDecoder decoder;
    decoder.Feed(flipped);
    std::string payload;
    std::size_t got = 0;
    FrameDecoder::State state;
    while ((state = decoder.Next(payload)) == FrameDecoder::State::kFrame) {
      ASSERT_LT(got, payloads.size()) << "bit " << bit;
      ASSERT_EQ(payload, payloads[got])
          << "bit " << bit << " produced a frame that never existed";
      ++got;
    }
    if (state == FrameDecoder::State::kCorrupt) {
      const ErrorCode code = decoder.last_error().code;
      EXPECT_TRUE(code == ErrorCode::kDataLoss ||
                  code == ErrorCode::kResourceExhausted)
          << "bit " << bit << ": " << decoder.last_error().message;
    } else {
      EXPECT_EQ(state, FrameDecoder::State::kNeedMore) << "bit " << bit;
    }
  }
}

TEST(FrameDecoder, ZeroLengthFrameRoundTrips) {
  FrameDecoder decoder;
  decoder.Feed(io::EncodeFrame(""));
  std::string payload{"sentinel"};
  ASSERT_EQ(decoder.Next(payload), FrameDecoder::State::kFrame);
  EXPECT_TRUE(payload.empty());
  EXPECT_EQ(decoder.Next(payload), FrameDecoder::State::kNeedMore);
}

TEST(FrameDecoder, OversizedPayloadIsResourceExhaustedBeforeBuffering) {
  FrameDecoderLimits limits;
  limits.max_payload_bytes = 32;
  FrameDecoder decoder{limits};
  // Only the header needs to arrive: the decoder must reject from the
  // declared length alone instead of buffering a gigabyte first.
  decoder.Feed("f 1048576 00000000\n");
  std::string payload;
  ASSERT_EQ(decoder.Next(payload), FrameDecoder::State::kCorrupt);
  EXPECT_EQ(decoder.last_error().code, ErrorCode::kResourceExhausted);
}

TEST(FrameDecoder, HeaderFloodWithoutNewlineIsCorrupt) {
  FrameDecoder decoder;
  decoder.Feed(std::string(200, 'f'));  // no newline within max_header_bytes
  std::string payload;
  ASSERT_EQ(decoder.Next(payload), FrameDecoder::State::kCorrupt);
  EXPECT_EQ(decoder.last_error().code, ErrorCode::kDataLoss);
}

TEST(FrameDecoder, GarbageIsCorruptNotCrash) {
  FrameDecoder decoder;
  decoder.Feed("GET / HTTP/1.1\r\nHost: example\r\n\r\n");
  std::string payload;
  EXPECT_EQ(decoder.Next(payload), FrameDecoder::State::kCorrupt);
  EXPECT_EQ(decoder.last_error().code, ErrorCode::kDataLoss);
}

TEST(FrameDecoder, CorruptIsTerminalUntilReset) {
  FrameDecoder decoder;
  decoder.Feed("garbage\n");
  std::string payload;
  ASSERT_EQ(decoder.Next(payload), FrameDecoder::State::kCorrupt);

  // Feeding a perfectly valid frame afterwards must not resurrect the
  // stream: a mangled length field means nothing downstream is trusted.
  decoder.Feed(io::EncodeFrame("valid"));
  EXPECT_EQ(decoder.Next(payload), FrameDecoder::State::kCorrupt);

  decoder.Reset();
  decoder.Feed(io::EncodeFrame("fresh"));
  ASSERT_EQ(decoder.Next(payload), FrameDecoder::State::kFrame);
  EXPECT_EQ(payload, "fresh");
}

TEST(FrameDecoder, LongStreamStaysCompact) {
  FrameDecoder decoder;
  std::string payload;
  std::string frame = io::EncodeFrame(std::string(100, 'x'));
  for (int i = 0; i < 1000; ++i) {
    decoder.Feed(frame);
    ASSERT_EQ(decoder.Next(payload), FrameDecoder::State::kFrame);
  }
  // Everything consumed: the internal buffer must not have retained the
  // ~120KB of history (compaction is in place).
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

}  // namespace
}  // namespace defuse::net
