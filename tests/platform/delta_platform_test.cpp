// The delta-mining differential suite — this PR's acceptance criterion:
// a platform re-mining incrementally from streaming accumulators must be
// BIT-IDENTICAL to its full-rebuild twin at every mine boundary, across
// serial and async serving, seeds 0-9 — plus the re-mine accounting
// sweep: catch-up collapse folds every skipped interval into one delta,
// degraded re-mines roll the accumulators back to the last-good
// boundary, and the v4 durable snapshot resumes mid-delta (or rebuilds
// when its [delta] section is torn).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "faults/injector.hpp"
#include "platform/platform.hpp"
#include "trace/generator.hpp"

namespace defuse::platform {
namespace {

PlatformConfig DeltaConfig(MinuteDelta horizon, bool delta,
                           bool async = false) {
  PlatformConfig cfg;
  cfg.horizon = horizon;
  // Eight boundaries over two generated days, with a window short enough
  // that it slides (so eviction runs) and an anchor cadence short enough
  // that the sweep crosses both delta mines and full rebuilds.
  cfg.remine_interval = 480;
  cfg.mining_window = 720;
  cfg.async_remine = async;
  cfg.mining.delta.enabled = delta;
  cfg.mining.delta.full_rebuild_every = 3;
  return cfg;
}

trace::GeneratorConfig Gen(std::uint64_t seed) {
  auto gen = trace::GeneratorConfig::Tiny();
  gen.seed = seed;
  gen.horizon_minutes = 2 * kMinutesPerDay;
  return gen;
}

/// Drives `delta` and `full` through the same generated workload in
/// lockstep and asserts byte-identical SaveState at every mine boundary
/// and at the end. With `async`, a barrier right after the boundary
/// fires (before the minute's invocations) pins the swap to the same
/// minute on both platforms — without it, the delta miner's much
/// shorter run adopts mid-minute while the full miner is still working,
/// and the comparison would race on wall-clock.
void AssertLockstepIdentity(std::uint64_t seed, bool async) {
  const auto gen = Gen(seed);
  const auto workload = trace::GenerateWorkload(gen);
  const auto index =
      workload.trace.BuildMinuteIndex(workload.trace.horizon());
  const Minute end = workload.trace.horizon().end;

  Platform full{workload.model, DeltaConfig(gen.horizon_minutes, false, async)};
  Platform delta{workload.model, DeltaConfig(gen.horizon_minutes, true, async)};
  ASSERT_EQ(full.delta_accumulator(), nullptr);
  ASSERT_NE(delta.delta_accumulator(), nullptr);

  std::uint64_t boundaries = 0;
  for (Minute t = 0; t < end; ++t) {
    full.AdvanceTo(t);
    delta.AdvanceTo(t);
    if (async) {
      if (full.remine_in_flight()) full.FinishPendingRemine();
      if (delta.remine_in_flight()) delta.FinishPendingRemine();
    }
    for (const auto& [fn, count] : index.at(t)) {
      (void)count;
      const auto a = full.Invoke(fn, t);
      const auto b = delta.Invoke(fn, t);
      ASSERT_EQ(a.cold, b.cold)
          << "seed " << seed << " t " << t << " fn " << fn.value();
    }
    if (full.stats().remines > boundaries) {
      boundaries = full.stats().remines;
      ASSERT_EQ(delta.stats().remines, boundaries) << "seed " << seed;
      ASSERT_EQ(delta.SaveState(), full.SaveState())
          << "seed " << seed << " diverged at boundary " << boundaries
          << " (minute " << t << ")";
    }
  }
  ASSERT_GE(boundaries, 4u) << "seed " << seed;
  EXPECT_EQ(delta.stats(), full.stats()) << "seed " << seed;
  EXPECT_EQ(delta.SaveState(), full.SaveState()) << "seed " << seed;

  // The sweep crossed both kinds of committed mine, and the books add up
  // to exactly the adopted re-mines.
  const auto& books = delta.delta_accumulator()->books();
  EXPECT_GT(books.delta_mines, 0u) << "seed " << seed;
  EXPECT_GT(books.full_rebuilds, 0u) << "seed " << seed;
  EXPECT_EQ(books.delta_mines + books.full_rebuilds, delta.stats().remines)
      << "seed " << seed;
  EXPECT_EQ(books.aborted_deltas, 0u) << "seed " << seed;
}

TEST(DeltaDifferential, SerialMatchesFullRebuildAtEveryBoundary) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    AssertLockstepIdentity(seed, /*async=*/false);
  }
}

TEST(DeltaDifferential, AsyncMatchesFullRebuildAtEveryBoundary) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    AssertLockstepIdentity(seed, /*async=*/true);
  }
}

TEST(DeltaDifferential, NonUnitWindowMinutesFallbackStaysIdentical) {
  // window_minutes != 1 disables the accumulator fast paths; the delta
  // platform mines the materialized window through the standard pipeline
  // and must still match the full twin byte for byte.
  const auto gen = Gen(2);
  const auto workload = trace::GenerateWorkload(gen);
  const auto index =
      workload.trace.BuildMinuteIndex(workload.trace.horizon());
  auto full_cfg = DeltaConfig(gen.horizon_minutes, false);
  auto delta_cfg = DeltaConfig(gen.horizon_minutes, true);
  full_cfg.mining.window_minutes = 2;
  delta_cfg.mining.window_minutes = 2;
  Platform full{workload.model, full_cfg};
  Platform delta{workload.model, delta_cfg};
  for (Minute t = 0; t < workload.trace.horizon().end; ++t) {
    full.AdvanceTo(t);
    delta.AdvanceTo(t);
    for (const auto& [fn, count] : index.at(t)) {
      (void)count;
      ASSERT_EQ(full.Invoke(fn, t).cold, delta.Invoke(fn, t).cold) << t;
    }
  }
  EXPECT_GT(full.stats().remines, 0u);
  EXPECT_EQ(delta.SaveState(), full.SaveState());
}

/// One user, a periodic service plus a checkout that pings it — the
/// accounting tests need a workload whose events are cheap to replay
/// across multi-day gaps.
struct Fixture {
  trace::WorkloadModel model;
  FunctionId svc, fe;
  Fixture() {
    const UserId u = model.AddUser("u");
    const AppId sa = model.AddApp(u, "svc-app");
    svc = model.AddFunction(sa, "svc");
    const AppId ca = model.AddApp(u, "checkout");
    fe = model.AddFunction(ca, "fe");
  }
};

PlatformConfig GapConfig(bool delta) {
  PlatformConfig cfg;
  cfg.horizon = 30 * kMinutesPerDay;
  cfg.remine_interval = kMinutesPerDay;
  cfg.mining.delta.enabled = delta;
  return cfg;
}

// Satellite regression: a multi-day offline gap must collapse into ONE
// delta re-mine that folds every skipped interval — the accumulator
// advances straight to the collapsed boundary, and the books match it.
TEST(DeltaAccounting, OfflineGapCollapsesIntoOneDelta) {
  Fixture fx;
  Platform p{fx.model, GapConfig(true)};
  for (Minute t = 0; t < kMinutesPerDay; t += 10) (void)p.Invoke(fx.svc, t);
  // Nine days of silence: boundaries 1..9 fall due together.
  const Minute resume = 9 * kMinutesPerDay + 1;
  (void)p.Invoke(fx.svc, resume);
  EXPECT_EQ(p.stats().remines, 1u);
  EXPECT_EQ(p.stats().catchup_remines_skipped, 8u);
  EXPECT_EQ(p.stats().degraded_remines, 0u);
  EXPECT_EQ(p.stats().stale_graph_minutes, 0);

  const auto* acc = p.delta_accumulator();
  ASSERT_NE(acc, nullptr);
  // The one catch-up mine committed at the collapsed boundary (day 9),
  // its window slid past the gap, and nothing was abandoned.
  EXPECT_EQ(acc->last_good(), 9 * kMinutesPerDay);
  EXPECT_EQ(acc->sealed_end(), 9 * kMinutesPerDay);
  EXPECT_EQ(acc->store_begin(),
            9 * kMinutesPerDay - GapConfig(true).mining_window);
  EXPECT_EQ(acc->books().delta_mines + acc->books().full_rebuilds, 1u);
  EXPECT_EQ(acc->books().aborted_deltas, 0u);

  // Cadence resumes from the collapsed boundary.
  (void)p.Invoke(fx.svc, 10 * kMinutesPerDay + 1);
  EXPECT_EQ(p.stats().remines, 2u);
  EXPECT_EQ(p.stats().catchup_remines_skipped, 8u);
  EXPECT_EQ(acc->last_good(), 10 * kMinutesPerDay);
}

// Satellite regression: when the collapsed catch-up mine DEGRADES, every
// folded interval ran on the stale graph — stale_graph_minutes must book
// all of them, not just one, and the accumulator rolls back.
TEST(DeltaAccounting, DegradedCatchupBooksEverySkippedInterval) {
  for (const bool delta : {false, true}) {
    Fixture fx;
    faults::FaultProfile profile;
    profile.remine_failure_fraction = 1.0;
    faults::FaultInjector injector{7, profile};
    Platform p{fx.model, GapConfig(delta)};
    p.set_fault_injector(&injector);
    for (Minute t = 0; t < kMinutesPerDay; t += 10) (void)p.Invoke(fx.svc, t);
    (void)p.Invoke(fx.svc, 9 * kMinutesPerDay + 1);

    EXPECT_EQ(p.stats().remines, 1u) << "delta " << delta;
    EXPECT_EQ(p.stats().degraded_remines, 1u) << "delta " << delta;
    EXPECT_EQ(p.stats().catchup_remines_skipped, 8u) << "delta " << delta;
    // The one degraded mine served nine cadence intervals stale.
    EXPECT_EQ(p.stats().stale_graph_minutes, 9 * kMinutesPerDay)
        << "delta " << delta;
    if (delta) {
      const auto* acc = p.delta_accumulator();
      ASSERT_NE(acc, nullptr);
      EXPECT_EQ(acc->books().aborted_deltas, 1u);
      EXPECT_EQ(acc->last_good(), -1);  // nothing ever adopted
    }
  }
}

// Satellite regression: under injected mining failures the delta
// platform must keep the last-good sets AND roll its accumulators back,
// staying byte-identical to the full-rebuild twin under the same draws.
TEST(DeltaAccounting, DegradedReminesRollBackAndStayIdentical) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto gen = Gen(seed);
    const auto workload = trace::GenerateWorkload(gen);
    const auto index =
        workload.trace.BuildMinuteIndex(workload.trace.horizon());
    faults::FaultProfile profile;
    profile.remine_failure_fraction = 0.5;
    faults::FaultInjector full_inj{seed, profile};
    faults::FaultInjector delta_inj{seed, profile};
    Platform full{workload.model, DeltaConfig(gen.horizon_minutes, false)};
    Platform delta{workload.model, DeltaConfig(gen.horizon_minutes, true)};
    full.set_fault_injector(&full_inj);
    delta.set_fault_injector(&delta_inj);

    for (Minute t = 0; t < workload.trace.horizon().end; ++t) {
      full.AdvanceTo(t);
      delta.AdvanceTo(t);
      for (const auto& [fn, count] : index.at(t)) {
        (void)count;
        ASSERT_EQ(full.Invoke(fn, t).cold, delta.Invoke(fn, t).cold)
            << "seed " << seed << " t " << t;
      }
    }

    EXPECT_EQ(delta.SaveState(), full.SaveState()) << "seed " << seed;
    EXPECT_EQ(delta.stats(), full.stats()) << "seed " << seed;
    // Exact rollback accounting: every injected kRemine fault became one
    // degraded re-mine and one abandoned delta; every adopted mine is a
    // committed delta or anchor. The kDeltaWindowSkew site draws on its
    // own stream (fraction 0 here), so kRemine draws match the twin's.
    EXPECT_GT(delta.stats().degraded_remines, 0u) << "seed " << seed;
    EXPECT_EQ(delta.stats().degraded_remines,
              delta_inj.injected(faults::FaultSite::kRemine))
        << "seed " << seed;
    const auto& books = delta.delta_accumulator()->books();
    EXPECT_EQ(books.aborted_deltas, delta.stats().degraded_remines)
        << "seed " << seed;
    EXPECT_EQ(books.delta_mines + books.full_rebuilds,
              delta.stats().remines - delta.stats().degraded_remines)
        << "seed " << seed;
  }
}

// An injected accumulator/window skew is recovered by rebuilding from
// history and anchoring — output stays byte-identical to the fault-free
// full twin, only the delta books show the recovery.
TEST(DeltaAccounting, WindowSkewRecoversByAnchoredRebuild) {
  const auto gen = Gen(4);
  const auto workload = trace::GenerateWorkload(gen);
  const auto index =
      workload.trace.BuildMinuteIndex(workload.trace.horizon());
  faults::FaultProfile profile;
  profile.delta_window_skew_fraction = 1.0;
  faults::FaultInjector injector{4, profile};
  Platform full{workload.model, DeltaConfig(gen.horizon_minutes, false)};
  Platform delta{workload.model, DeltaConfig(gen.horizon_minutes, true)};
  delta.set_fault_injector(&injector);

  for (Minute t = 0; t < workload.trace.horizon().end; ++t) {
    full.AdvanceTo(t);
    delta.AdvanceTo(t);
    for (const auto& [fn, count] : index.at(t)) {
      (void)count;
      ASSERT_EQ(full.Invoke(fn, t).cold, delta.Invoke(fn, t).cold) << t;
    }
  }
  EXPECT_EQ(delta.SaveState(), full.SaveState());
  const auto& books = delta.delta_accumulator()->books();
  EXPECT_GT(delta.stats().remines, 0u);
  // Every boundary drew a skew: every mine ran as an anchored rebuild.
  EXPECT_EQ(books.skew_rebuilds, delta.stats().remines);
  EXPECT_EQ(books.full_rebuilds, delta.stats().remines);
  EXPECT_EQ(books.delta_mines, 0u);
}

TEST(DeltaDurable, V4SnapshotResumesMidDelta) {
  const auto gen = Gen(5);
  const auto workload = trace::GenerateWorkload(gen);
  const auto index =
      workload.trace.BuildMinuteIndex(workload.trace.horizon());
  const auto cfg = DeltaConfig(gen.horizon_minutes, true);
  Platform original{workload.model, cfg};

  // Stop mid-delta: past two boundaries, with an unsealed ingest tail.
  const Minute cut = 2 * cfg.remine_interval + 200;
  for (Minute t = 0; t < cut; ++t) {
    original.AdvanceTo(t);
    for (const auto& [fn, count] : index.at(t)) {
      (void)count;
      (void)original.Invoke(fn, t);
    }
  }
  ASSERT_EQ(original.stats().remines, 2u);
  const std::string durable = original.SaveDurableState();
  // The durable form is exactly the v3 snapshot under a v4 header plus
  // the [delta] tail — the wire snapshot itself is unchanged by delta
  // mining.
  const std::string plain = original.SaveState();
  std::string expected = plain;
  expected.replace(0, std::string{"defuse-platform-state-v3"}.size(),
                   "defuse-platform-state-v4");
  expected += "[delta]\n";
  expected += original.delta_accumulator()->Serialize();
  EXPECT_EQ(durable, expected);

  Platform restored{workload.model, cfg};
  ASSERT_TRUE(restored.LoadState(durable));
  EXPECT_EQ(restored.SaveState(), plain);
  ASSERT_NE(restored.delta_accumulator(), nullptr);
  // Mid-delta resume, not a rebuild: the accumulator state round-trips
  // byte for byte and nothing was booked as torn.
  EXPECT_EQ(restored.delta_accumulator()->Serialize(),
            original.delta_accumulator()->Serialize());
  EXPECT_EQ(restored.delta_accumulator()->books().torn_snapshot_loads, 0u);

  // Driven forward in lockstep, the twins stay byte-identical through
  // the remaining boundaries.
  for (Minute t = cut; t < workload.trace.horizon().end; ++t) {
    original.AdvanceTo(t);
    restored.AdvanceTo(t);
    for (const auto& [fn, count] : index.at(t)) {
      (void)count;
      ASSERT_EQ(original.Invoke(fn, t).cold, restored.Invoke(fn, t).cold)
          << t;
    }
  }
  EXPECT_GT(original.stats().remines, 2u);
  EXPECT_EQ(restored.SaveState(), original.SaveState());
  EXPECT_EQ(restored.delta_accumulator()->Serialize(),
            original.delta_accumulator()->Serialize());
}

TEST(DeltaDurable, TornDeltaSectionRebuildsFromHistory) {
  const auto gen = Gen(6);
  const auto workload = trace::GenerateWorkload(gen);
  const auto index =
      workload.trace.BuildMinuteIndex(workload.trace.horizon());
  const auto cfg = DeltaConfig(gen.horizon_minutes, true);
  Platform original{workload.model, cfg};
  const Minute cut = 2 * cfg.remine_interval + 200;
  for (Minute t = 0; t < cut; ++t) {
    original.AdvanceTo(t);
    for (const auto& [fn, count] : index.at(t)) {
      (void)count;
      (void)original.Invoke(fn, t);
    }
  }

  faults::FaultProfile profile;
  profile.delta_snapshot_torn_fraction = 1.0;
  faults::FaultInjector injector{3, profile};
  original.set_fault_injector(&injector);
  const std::string torn = original.SaveDurableState();
  original.set_fault_injector(nullptr);
  EXPECT_EQ(injector.injected(faults::FaultSite::kDeltaSnapshotTorn), 1u);
  ASSERT_NE(torn, original.SaveDurableState());

  // The platform body is intact, so the snapshot loads; the torn [delta]
  // tail is booked and the accumulator rebuilt from the restored history.
  Platform restored{workload.model, cfg};
  ASSERT_TRUE(restored.LoadState(torn));
  EXPECT_EQ(restored.SaveState(), original.SaveState());
  ASSERT_NE(restored.delta_accumulator(), nullptr);
  EXPECT_EQ(restored.delta_accumulator()->books().torn_snapshot_loads, 1u);

  // The rebuilt accumulator is exact: both twins mine identically from
  // here on.
  for (Minute t = cut; t < workload.trace.horizon().end; ++t) {
    original.AdvanceTo(t);
    restored.AdvanceTo(t);
    for (const auto& [fn, count] : index.at(t)) {
      (void)count;
      ASSERT_EQ(original.Invoke(fn, t).cold, restored.Invoke(fn, t).cold)
          << t;
    }
  }
  EXPECT_GT(original.stats().remines, 2u);
  EXPECT_EQ(restored.SaveState(), original.SaveState());
}

TEST(DeltaDurable, PlainV3LoadsIntoADeltaPlatform) {
  // Back-compat: a delta-off snapshot (no [delta] section) restores into
  // a delta-on platform, which rebuilds its accumulator from the
  // restored history and keeps mining bit-identically to the full twin.
  const auto gen = Gen(7);
  const auto workload = trace::GenerateWorkload(gen);
  const auto index =
      workload.trace.BuildMinuteIndex(workload.trace.horizon());
  Platform full{workload.model, DeltaConfig(gen.horizon_minutes, false)};
  const Minute cut = 2 * DeltaConfig(gen.horizon_minutes, false).remine_interval + 100;
  for (Minute t = 0; t < cut; ++t) {
    full.AdvanceTo(t);
    for (const auto& [fn, count] : index.at(t)) {
      (void)count;
      (void)full.Invoke(fn, t);
    }
  }
  const std::string v3 = full.SaveState();

  Platform delta{workload.model, DeltaConfig(gen.horizon_minutes, true)};
  ASSERT_TRUE(delta.LoadState(v3));
  EXPECT_EQ(delta.SaveState(), v3);
  // A missing section is not "torn" — no corruption is booked.
  ASSERT_NE(delta.delta_accumulator(), nullptr);
  EXPECT_EQ(delta.delta_accumulator()->books().torn_snapshot_loads, 0u);

  for (Minute t = cut; t < workload.trace.horizon().end; ++t) {
    full.AdvanceTo(t);
    delta.AdvanceTo(t);
    for (const auto& [fn, count] : index.at(t)) {
      (void)count;
      ASSERT_EQ(full.Invoke(fn, t).cold, delta.Invoke(fn, t).cold) << t;
    }
  }
  EXPECT_EQ(delta.SaveState(), full.SaveState());

  // And the reverse: a delta platform's durable (v4) snapshot loads into
  // a delta-OFF platform, which simply ignores the [delta] tail.
  const std::string v4 = delta.SaveDurableState();
  Platform off{workload.model, DeltaConfig(gen.horizon_minutes, false)};
  ASSERT_TRUE(off.LoadState(v4));
  EXPECT_EQ(off.SaveState(), full.SaveState());
}

// Satellite sweep: the histogram quarantine (negative-idle counter) and
// the overflow-rejecting histogram parser must survive the new durable
// snapshot path — a [delta] tail does not soften [histograms]
// validation, and quarantined counts round-trip through v4.
TEST(DeltaDurable, HistogramGuardsSurviveTheDurablePath) {
  const auto gen = Gen(8);
  const auto workload = trace::GenerateWorkload(gen);
  const auto index =
      workload.trace.BuildMinuteIndex(workload.trace.horizon());
  const auto cfg = DeltaConfig(gen.horizon_minutes, true);
  Platform original{workload.model, cfg};
  for (Minute t = 0; t < 2 * cfg.remine_interval + 100; ++t) {
    original.AdvanceTo(t);
    for (const auto& [fn, count] : index.at(t)) {
      (void)count;
      (void)original.Invoke(fn, t);
    }
  }
  const std::string durable = original.SaveDurableState();

  // Locate the first serialized histogram's "width|oob|neg|" fields.
  const std::size_t section = durable.find("[histograms]\n");
  ASSERT_NE(section, std::string::npos);
  const std::size_t p1 = durable.find('|', section);
  ASSERT_NE(p1, std::string::npos);
  const std::size_t p2 = durable.find('|', p1 + 1);
  const std::size_t p3 = durable.find('|', p2 + 1);
  ASSERT_NE(p3, std::string::npos);

  struct Case {
    const char* name;
    std::size_t begin, end;   // field to replace (exclusive of the pipes)
    const char* replacement;
    bool loads;
  };
  const std::vector<Case> cases{
      // A quarantined negative-idle count is DATA: it must load and
      // round-trip, not be rejected or zeroed by the v4 path.
      {"quarantined count survives", p2 + 1, p3, "7", true},
      // PR 5's overflow rejection: a 2^64-overflowing counter would wrap
      // into a small value if parsed unchecked — must reject the load.
      {"oob overflow rejected", p1 + 1, p2, "18446744073709551616", false},
      {"neg overflow rejected", p2 + 1, p3, "18446744073709551616", false},
      {"garbage neg rejected", p2 + 1, p3, "x", false},
  };
  for (const auto& c : cases) {
    std::string mangled = durable;
    mangled.replace(c.begin, c.end - c.begin, c.replacement);
    Platform victim{workload.model, cfg};
    ASSERT_EQ(victim.LoadState(mangled), c.loads) << c.name;
    if (!c.loads) continue;
    // The quarantined count rides every later snapshot, durable or not.
    EXPECT_NE(victim.SaveState().find("|7|"), std::string::npos) << c.name;
    EXPECT_NE(victim.SaveDurableState().find("|7|"), std::string::npos)
        << c.name;
  }
}

}  // namespace
}  // namespace defuse::platform
