#include "platform/platform.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace defuse::platform {
namespace {

/// One user: a periodic service (svc) every 10 min, and an unpredictable
/// checkout (fe) that pings svc on each firing.
struct Fixture {
  trace::WorkloadModel model;
  FunctionId svc, fe;
  Fixture() {
    const UserId u = model.AddUser("u");
    const AppId sa = model.AddApp(u, "svc-app");
    svc = model.AddFunction(sa, "svc");
    const AppId ca = model.AddApp(u, "checkout");
    fe = model.AddFunction(ca, "fe");
  }
};

PlatformConfig TestConfig() {
  PlatformConfig cfg;
  cfg.horizon = 10 * kMinutesPerDay;
  return cfg;
}

TEST(Platform, FirstInvocationIsCold) {
  Fixture fx;
  Platform p{fx.model, TestConfig()};
  const auto outcome = p.Invoke(fx.svc, 0);
  EXPECT_TRUE(outcome.cold);
  EXPECT_EQ(p.stats().invocations, 1u);
  EXPECT_EQ(p.stats().cold_invocations, 1u);
}

TEST(Platform, WarmWithinKeepAlive) {
  Fixture fx;
  Platform p{fx.model, TestConfig()};
  EXPECT_TRUE(p.Invoke(fx.svc, 0).cold);
  EXPECT_FALSE(p.Invoke(fx.svc, 5).cold);  // within the 10-min fallback
  EXPECT_TRUE(p.Invoke(fx.svc, 30).cold);  // expired
}

TEST(Platform, InvocationsMustBeMonotone) {
  Fixture fx;
  Platform p{fx.model, TestConfig()};
  (void)p.Invoke(fx.svc, 100);
  // Same minute is fine and shares the first resolution (here: cold —
  // both invocations are part of the batch the cold load serves).
  EXPECT_TRUE(p.Invoke(fx.svc, 100).cold);
  EXPECT_FALSE(p.Invoke(fx.svc, 101).cold);  // next minute is warm
#ifndef NDEBUG
  EXPECT_DEATH((void)p.Invoke(fx.svc, 99), "time order");
#endif
}

TEST(Platform, BootstrapSchedulesPerFunction) {
  Fixture fx;
  Platform p{fx.model, TestConfig()};
  EXPECT_EQ(p.units().num_units(), fx.model.num_functions());
  EXPECT_EQ(p.stats().remines, 0u);
}

TEST(Platform, RemineFiresOnSchedule) {
  Fixture fx;
  auto cfg = TestConfig();
  cfg.remine_interval = kMinutesPerDay;
  Platform p{fx.model, cfg};
  (void)p.Invoke(fx.svc, 0);
  (void)p.Invoke(fx.svc, kMinutesPerDay + 5);
  EXPECT_EQ(p.stats().remines, 1u);
  EXPECT_EQ(p.stats().catchup_remines_skipped, 0u);
  // Two boundaries elapsed unserved: ONE catch-up re-mine fires (at the
  // latest boundary), the other is booked as skipped — not re-mined.
  (void)p.Invoke(fx.svc, 3 * kMinutesPerDay + 5);
  EXPECT_EQ(p.stats().remines, 2u);
  EXPECT_EQ(p.stats().catchup_remines_skipped, 1u);
  // Cadence resumes from the caught-up boundary.
  (void)p.Invoke(fx.svc, 4 * kMinutesPerDay + 5);
  EXPECT_EQ(p.stats().remines, 3u);
  EXPECT_EQ(p.stats().catchup_remines_skipped, 1u);
}

// Regression: MaybeRemine used to loop `while (now >= next_remine_)`,
// firing one full mining pass per elapsed interval after an offline gap
// — a week of downtime meant seven back-to-back re-mines, six of whose
// results were immediately overwritten. A multi-day gap must cost
// exactly one re-mine.
TEST(Platform, OfflineGapCollapsesToOneCatchUpRemine) {
  Fixture fx;
  auto cfg = TestConfig();
  cfg.remine_interval = kMinutesPerDay;
  cfg.horizon = 30 * kMinutesPerDay;
  Platform p{fx.model, cfg};
  (void)p.Invoke(fx.svc, 0);
  // The daemon comes back after nine days of silence.
  (void)p.Invoke(fx.svc, 9 * kMinutesPerDay + 1);
  EXPECT_EQ(p.stats().remines, 1u);
  EXPECT_EQ(p.stats().catchup_remines_skipped, 8u);
  // AdvanceTo heartbeats hit the same collapsed path.
  p.AdvanceTo(12 * kMinutesPerDay);
  EXPECT_EQ(p.stats().remines, 2u);
  EXPECT_EQ(p.stats().catchup_remines_skipped, 10u);
}

TEST(Platform, RemineGroupsDependentFunctions) {
  Fixture fx;
  auto cfg = TestConfig();
  Platform p{fx.model, cfg};
  Rng rng{5};
  // Day 0-1: periodic svc every 10; fe pings svc at random times.
  Minute fe_next = 13;
  for (Minute t = 0; t < 2 * kMinutesPerDay; ++t) {
    if (t % 10 == 0) (void)p.Invoke(fx.svc, t);
    if (t == fe_next) {
      (void)p.Invoke(fx.fe, t);
      (void)p.Invoke(fx.svc, t);
      fe_next += 20 + static_cast<Minute>(rng.NextBelow(80));
    }
  }
  EXPECT_GE(p.stats().remines, 1u);
  // After re-mining, fe and svc share a dependency set (weak link).
  EXPECT_EQ(p.units().unit_of(fx.fe), p.units().unit_of(fx.svc));
}

TEST(Platform, OnlineDefuseKeepsUnpredictableFunctionWarm) {
  Fixture fx;
  Platform p{fx.model, TestConfig()};
  Rng rng{7};
  std::uint64_t fe_after_day1 = 0, fe_cold_after_day1 = 0;
  Minute fe_next = 13;
  for (Minute t = 0; t < 6 * kMinutesPerDay; ++t) {
    if (t % 10 == 0) (void)p.Invoke(fx.svc, t);
    if (t == fe_next) {
      const auto outcome = p.Invoke(fx.fe, t);
      (void)p.Invoke(fx.svc, t);
      if (t >= 2 * kMinutesPerDay) {
        ++fe_after_day1;
        fe_cold_after_day1 += outcome.cold ? 1 : 0;
      }
      fe_next += 20 + static_cast<Minute>(rng.NextBelow(80));
    }
  }
  ASSERT_GT(fe_after_day1, 30u);
  // Once mined into the service's set, the checkout function rides the
  // periodic warm pool: almost never cold.
  EXPECT_LT(static_cast<double>(fe_cold_after_day1) /
                static_cast<double>(fe_after_day1),
            0.1);
}

TEST(Platform, ResidencySurvivesARemine) {
  Fixture fx;
  auto cfg = TestConfig();
  cfg.remine_interval = 100;
  cfg.mining_window = 100;
  Platform p{fx.model, cfg};
  (void)p.Invoke(fx.svc, 95);  // resident until at least 105
  (void)p.Invoke(fx.fe, 101);  // crosses the re-mine boundary
  EXPECT_EQ(p.stats().remines, 1u);
  // svc was loaded before the re-mine and must still be warm at 103.
  EXPECT_FALSE(p.Invoke(fx.svc, 103).cold);
}

TEST(Platform, ResidentFunctionsCountsWindows) {
  Fixture fx;
  Platform p{fx.model, TestConfig()};
  EXPECT_EQ(p.ResidentFunctions(0), 0u);
  (void)p.Invoke(fx.svc, 10);
  EXPECT_EQ(p.ResidentFunctions(10), 1u);
  EXPECT_EQ(p.ResidentFunctions(19), 1u);   // 10-minute fallback window
  EXPECT_EQ(p.ResidentFunctions(25), 0u);
}

TEST(Platform, PerFunctionCountersMatchStats) {
  Fixture fx;
  Platform p{fx.model, TestConfig()};
  (void)p.Invoke(fx.svc, 0);
  (void)p.Invoke(fx.svc, 5);
  (void)p.Invoke(fx.fe, 200);
  EXPECT_EQ(p.function_invocations()[fx.svc.value()], 2u);
  EXPECT_EQ(p.function_invocations()[fx.fe.value()], 1u);
  std::uint64_t cold = 0;
  for (const auto c : p.function_cold()) cold += c;
  EXPECT_EQ(cold, p.stats().cold_invocations);
}

TEST(Platform, SaveLoadRoundTripsMidStream) {
  Fixture fx;
  auto cfg = TestConfig();
  Platform original{fx.model, cfg};
  Rng rng{11};
  Minute fe_next = 13;
  Minute t = 0;
  const auto drive = [&](Platform& p, Minute until) {
    for (; t < until; ++t) {
      if (t % 10 == 0) (void)p.Invoke(fx.svc, t);
      if (t == fe_next) {
        (void)p.Invoke(fx.fe, t);
        (void)p.Invoke(fx.svc, t);
        fe_next += 20 + static_cast<Minute>(rng.NextBelow(60));
      }
    }
  };
  // Run 2.5 days, snapshot, and continue in a restored twin: the twin
  // must behave identically to the original from that point on.
  drive(original, 2 * kMinutesPerDay + 700);
  const std::string state = original.SaveState();

  Platform restored{fx.model, cfg};
  ASSERT_TRUE(restored.LoadState(state));
  EXPECT_EQ(restored.stats().invocations, original.stats().invocations);
  EXPECT_EQ(restored.stats().cold_invocations,
            original.stats().cold_invocations);
  EXPECT_EQ(restored.stats().remines, original.stats().remines);
  EXPECT_EQ(restored.units().num_units(), original.units().num_units());

  // Drive both forward with identical input; outcomes must match.
  const Minute resume = t;
  Rng drive_rng{77};
  for (Minute m = resume; m < resume + 2 * kMinutesPerDay; ++m) {
    if (m % 10 == 0) {
      EXPECT_EQ(original.Invoke(fx.svc, m).cold,
                restored.Invoke(fx.svc, m).cold)
          << "svc diverged at " << m;
    }
    if (drive_rng.NextBernoulli(0.02)) {
      EXPECT_EQ(original.Invoke(fx.fe, m).cold,
                restored.Invoke(fx.fe, m).cold)
          << "fe diverged at " << m;
    }
  }
  EXPECT_EQ(original.stats().cold_invocations,
            restored.stats().cold_invocations);
}

TEST(Platform, LoadStateRejectsGarbage) {
  Fixture fx;
  Platform p{fx.model, TestConfig()};
  EXPECT_FALSE(p.LoadState(""));
  EXPECT_FALSE(p.LoadState("not-a-state\n"));
  EXPECT_FALSE(p.LoadState("defuse-platform-state-v1\nmeta,x\n"));
}

TEST(Platform, FailedLoadLeavesLiveStateUntouched) {
  // Regression: LoadState used to mutate sections in place as it parsed,
  // so a state that broke halfway through left a franken-state behind.
  // Every section now parses into a staging area that commits in one
  // step, making a failed load a no-op.
  Fixture fx;
  Platform donor{fx.model, TestConfig()};
  for (Minute t = 0; t < 2 * kMinutesPerDay; t += 10) {
    (void)donor.Invoke(fx.svc, t);
    if (t % 30 == 0) (void)donor.Invoke(fx.fe, t);
  }
  const std::string good = donor.SaveState();

  // A warm platform with different live state than the donor.
  Platform warm{fx.model, TestConfig()};
  for (Minute t = 0; t < kMinutesPerDay; t += 25) {
    (void)warm.Invoke(fx.fe, t);
  }
  const std::string before = warm.SaveState();
  ASSERT_NE(before, good);

  // The front half of `good` parses fine; the load must fail deep into
  // the later sections and still leave `warm` untouched.
  ASSERT_FALSE(warm.LoadState(good.substr(0, good.size() * 4 / 5)));
  EXPECT_EQ(warm.SaveState(), before);
  std::string mangled = good;
  mangled.replace(mangled.size() - 4, 3, "x,y");
  ASSERT_FALSE(warm.LoadState(mangled));
  EXPECT_EQ(warm.SaveState(), before);

  // The platform stays fully usable: a good load still lands cleanly.
  ASSERT_TRUE(warm.LoadState(good));
  EXPECT_EQ(warm.SaveState(), good);
}

TEST(Platform, SaveStateOfFreshPlatformLoads) {
  Fixture fx;
  Platform a{fx.model, TestConfig()};
  Platform b{fx.model, TestConfig()};
  EXPECT_TRUE(b.LoadState(a.SaveState()));
  EXPECT_EQ(b.stats().invocations, 0u);
}

TEST(Platform, ForcedRemineUsesTheGivenWindow) {
  Fixture fx;
  Platform p{fx.model, TestConfig()};
  for (Minute t = 0; t < 500; t += 10) {
    (void)p.Invoke(fx.svc, t);
    (void)p.Invoke(fx.fe, t);
  }
  p.RemineNow(500);
  EXPECT_GE(p.stats().remines, 1u);
  // svc and fe always co-fire: strong dependency, same set.
  EXPECT_EQ(p.units().unit_of(fx.fe), p.units().unit_of(fx.svc));
}

}  // namespace
}  // namespace defuse::platform
