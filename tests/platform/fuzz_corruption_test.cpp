// Deterministic fuzz/corruption harness for every loader on the
// durability path: Platform::LoadState, the snapshot decoder, the
// journal scanner, and the lenient trace reader. Each case derives its
// mutations from a fixed seed, so a failure reproduces bit-identically
// under the same seed — no flaky fuzzing.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/rng.hpp"
#include "faults/injector.hpp"
#include "platform/durability/journal.hpp"
#include "platform/durability/snapshot_store.hpp"
#include "platform/platform.hpp"
#include "trace/azure_csv.hpp"

namespace defuse::platform::durability {
namespace {

namespace fs = std::filesystem;

struct Fixture {
  trace::WorkloadModel model;
  FunctionId slow, fast, bursty;
  Fixture() {
    const UserId u = model.AddUser("u");
    const AppId a = model.AddApp(u, "app");
    slow = model.AddFunction(a, "slow60");
    fast = model.AddFunction(a, "fast10");
    bursty = model.AddFunction(a, "bursty");
  }
};

PlatformConfig TestConfig() {
  PlatformConfig cfg;
  cfg.horizon = 10 * kMinutesPerDay;
  cfg.remine_interval = kMinutesPerDay;
  return cfg;
}

void Drive(Platform& p, const Fixture& fx, Minute minutes) {
  Rng rng{11};
  Minute bursty_next = 17;
  for (Minute t = 0; t < minutes; ++t) {
    if (t % 60 == 0) (void)p.Invoke(fx.slow, t);
    if (t % 10 == 3) (void)p.Invoke(fx.fast, t);
    if (t == bursty_next) {
      (void)p.Invoke(fx.bursty, t);
      bursty_next += 20 + static_cast<Minute>(rng.NextBelow(80));
    }
  }
}

/// One deterministic mutation of `buffer` chosen by `seed`: truncation,
/// 1–8 bit flips, or a garbage splice.
std::string Mutate(std::string_view buffer, std::uint64_t seed) {
  std::string out{buffer};
  Rng rng{seed * 2654435761u + 1};
  if (out.empty()) return out;
  switch (seed % 3) {
    case 0:  // truncate somewhere, including mid-line
      out.resize(rng.NextBelow(out.size()));
      break;
    case 1: {  // flip 1..8 bits
      const std::size_t flips = 1 + rng.NextBelow(8);
      for (std::size_t i = 0; i < flips; ++i) {
        const std::size_t pos = rng.NextBelow(out.size());
        const unsigned bit = 1u << static_cast<unsigned>(rng.NextBelow(8));
        out[pos] =
            static_cast<char>(static_cast<unsigned char>(out[pos]) ^ bit);
      }
      break;
    }
    default: {  // splice garbage (including a NUL byte) into the middle
      const std::size_t pos = rng.NextBelow(out.size());
      out.insert(pos, std::string_view{"\xff\x00 garbage,42,\n\n", 16});
      break;
    }
  }
  return out;
}

TEST(FuzzLoadState, WarmPlatformIsUntouchedByAnyRejectedState) {
  Fixture fx;
  Platform donor{fx.model, TestConfig()};
  Drive(donor, fx, 3 * kMinutesPerDay);
  const std::string valid = donor.SaveState();

  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const std::string mutated = Mutate(valid, seed);
    if (mutated == valid) continue;
    // A *warm* platform with different live state: the regression case
    // for the old partial-mutation hazard, where a half-parsed load
    // left a franken-state behind.
    Platform warm{fx.model, TestConfig()};
    Drive(warm, fx, kMinutesPerDay);
    const std::string before = warm.SaveState();
    const bool loaded = warm.LoadState(mutated);
    if (!loaded) {
      EXPECT_EQ(warm.SaveState(), before) << "seed " << seed;
    } else {
      // Rare but legal: the mutation still parsed and validated. The
      // platform must then be in exactly the loaded state, not a blend.
      EXPECT_NE(warm.SaveState(), before) << "seed " << seed;
    }
  }
}

TEST(FuzzLoadState, FreshPlatformIsUntouchedByAnyRejectedState) {
  Fixture fx;
  Platform donor{fx.model, TestConfig()};
  Drive(donor, fx, 2 * kMinutesPerDay);
  const std::string valid = donor.SaveState();

  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const std::string mutated = Mutate(valid, seed);
    if (mutated == valid) continue;
    Platform fresh{fx.model, TestConfig()};
    const std::string before = fresh.SaveState();
    if (!fresh.LoadState(mutated)) {
      EXPECT_EQ(fresh.SaveState(), before) << "seed " << seed;
    }
  }
}

TEST(FuzzSnapshotDecode, ErrorOrExactPayloadNeverGarbage) {
  Fixture fx;
  Platform donor{fx.model, TestConfig()};
  Drive(donor, fx, 2 * kMinutesPerDay);
  const std::string payload = donor.SaveState();
  const std::string file = SnapshotStore::EncodeSnapshotFile(5, payload);

  for (std::uint64_t seed = 0; seed < 80; ++seed) {
    const std::string mutated = Mutate(file, seed);
    if (mutated == file) continue;
    const auto decoded = SnapshotStore::DecodeSnapshotFile(mutated, 5);
    if (decoded.ok()) {
      // The decoder may only ever hand back the exact sealed payload.
      EXPECT_EQ(decoded.value(), payload) << "seed " << seed;
    } else {
      EXPECT_EQ(decoded.error().code, ErrorCode::kDataLoss)
          << "seed " << seed;
    }
  }
}

TEST(FuzzJournalScan, RecordsAreAlwaysAPrefixOfTheOriginals) {
  const fs::path dir = fs::temp_directory_path() /
                       ("defuse_fuzz_journal_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  std::vector<JournalRecord> originals;
  {
    StateJournal journal{dir.string()};
    ASSERT_TRUE(journal.StartGeneration(1).ok());
    for (Minute t = 0; t < 40; ++t) {
      const JournalRecord record =
          t % 7 == 0 ? JournalRecord::Heartbeat(t)
                     : JournalRecord::Invocation(FunctionId{0}, t);
      originals.push_back(record);
      ASSERT_TRUE(journal.Append(record).ok());
    }
    journal.Close();
  }
  std::string valid;
  {
    std::ifstream in{JournalPath(dir.string(), 1), std::ios::binary};
    valid.assign(std::istreambuf_iterator<char>{in},
                 std::istreambuf_iterator<char>{});
  }

  for (std::uint64_t seed = 0; seed < 80; ++seed) {
    const std::string mutated = Mutate(valid, seed);
    {
      std::ofstream out{JournalPath(dir.string(), 1),
                        std::ios::binary | std::ios::trunc};
      out << mutated;
    }
    const auto scan = StateJournal::Read(dir.string(), 1);
    ASSERT_TRUE(scan.ok()) << "seed " << seed;
    ASSERT_LE(scan.value().records.size(), originals.size())
        << "seed " << seed;
    // CRC framing guarantees everything before the first damaged frame
    // is bit-exact; the scan must stop there rather than resynchronize
    // onto garbage. Truncations and bit flips keep byte positions, so
    // the surviving records are an exact prefix of the originals. (A
    // splice can shift frame boundaries, so splice seeds only get the
    // no-crash + bounded-size check above.)
    if (seed % 3 != 2) {
      for (std::size_t i = 0; i < scan.value().records.size(); ++i) {
        EXPECT_EQ(scan.value().records[i], originals[i])
            << "seed " << seed << " record " << i;
      }
    }
  }
  fs::remove_all(dir);
}

TEST(FuzzTraceIngestion, LenientReaderSurvivesCorruptCsv) {
  // A small long-format trace, corrupted by the injector's CSV mangler
  // under ten seeds: the lenient reader must keep loading and tally
  // every anomaly instead of failing the day.
  std::string csv = "user,app,function,minute,count\n";
  for (Minute t = 0; t < 300; t += 5) {
    csv += "u,app,f1," + std::to_string(t) + ",2\n";
    if (t % 15 == 0) csv += "u,app,f2," + std::to_string(t) + ",1\n";
  }
  ASSERT_TRUE(trace::ReadLongCsv(csv).ok());

  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    faults::FaultProfile profile;
    profile.malformed_row_fraction = 0.1;
    profile.duplicate_row_fraction = 0.1;
    profile.reorder_row_fraction = 0.1;
    profile.truncate_probability = 0.5;
    faults::FaultInjector injector{seed, profile};
    const std::string corrupted = injector.CorruptCsv(csv);

    trace::ParseReport report;
    const auto loaded = trace::ReadLongCsv(
        corrupted, 0, trace::ParseMode::kLenient, &report);
    ASSERT_TRUE(loaded.ok()) << "seed " << seed;
    EXPECT_GT(loaded.value().model.num_functions(), 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace defuse::platform::durability
