// Durability subsystem tests: snapshot format, write-ahead journal,
// recovery ladder, and the end-to-end crash-consistency property the PR
// promises — recovery always lands on a pre- or post-write state, never
// a partial one.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "faults/injector.hpp"
#include "platform/durability/durable_state.hpp"
#include "platform/durability/journal.hpp"
#include "platform/durability/recovery.hpp"
#include "platform/durability/snapshot_store.hpp"
#include "platform/platform.hpp"

namespace defuse::platform::durability {
namespace {

namespace fs = std::filesystem;

/// Same workload shape as the chaos suite: a 60-min strict periodic, a
/// 10-min periodic, and a bursty function that co-fires with the fast
/// one.
struct Fixture {
  trace::WorkloadModel model;
  FunctionId slow, fast, bursty;
  Fixture() {
    const UserId u = model.AddUser("u");
    const AppId a = model.AddApp(u, "app");
    slow = model.AddFunction(a, "slow60");
    fast = model.AddFunction(a, "fast10");
    bursty = model.AddFunction(a, "bursty");
  }
};

PlatformConfig TestConfig() {
  PlatformConfig cfg;
  cfg.horizon = 10 * kMinutesPerDay;
  cfg.remine_interval = kMinutesPerDay;
  return cfg;
}

/// The fixture's full event sequence for minutes [0, minutes), as
/// (function, minute) pairs. Generated in one pass so any prefix of the
/// returned vector is a valid (deterministic) partial run.
std::vector<std::pair<FunctionId, Minute>> Events(const Fixture& fx,
                                                  Minute minutes,
                                                  std::uint64_t seed) {
  std::vector<std::pair<FunctionId, Minute>> out;
  Rng rng{seed};
  Minute bursty_next = 17;
  for (Minute t = 0; t < minutes; ++t) {
    if (t % 60 == 0) out.emplace_back(fx.slow, t);
    if (t % 10 == 3) out.emplace_back(fx.fast, t);
    if (t == bursty_next) {
      out.emplace_back(fx.bursty, t);
      out.emplace_back(fx.fast, t);
      bursty_next += 20 + static_cast<Minute>(rng.NextBelow(80));
    }
  }
  return out;
}

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_path_ = fs::temp_directory_path() /
                ("defuse_durability_" + std::to_string(::getpid()) + "_" +
                 info->name());
    dir_ = dir_path_.string();
  }
  void TearDown() override { fs::remove_all(dir_path_); }

  /// Flips one byte near the end of a file in place (payload corruption
  /// a checksum must catch).
  static void CorruptFile(const std::string& path) {
    std::fstream f{path, std::ios::in | std::ios::out | std::ios::binary};
    ASSERT_TRUE(f.good()) << path;
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    ASSERT_GT(size, 4);
    f.seekg(size - 3);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(size - 3);
    byte = static_cast<char>(byte ^ 0x20);
    f.write(&byte, 1);
  }

  fs::path dir_path_;
  std::string dir_;
};

// ---------------------------------------------------------------- journal

TEST(JournalRecordFormat, EncodeDecodeRoundTrips) {
  const JournalRecord cases[] = {
      JournalRecord::Invocation(FunctionId{7}, 1234),
      JournalRecord::Invocation(FunctionId{0}, 0),
      JournalRecord::ForcedRemine(5000),
      JournalRecord::Heartbeat(99999),
  };
  for (const auto& record : cases) {
    const auto decoded = DecodeJournalRecord(EncodeJournalRecord(record));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), record);
  }
}

TEST(JournalRecordFormat, DecodeRejectsGarbage) {
  for (const char* bad :
       {"", "x,1,2", "i,1", "i,1,2,3", "i,notanumber,5", "i,1,-4", "r",
        "r,1,2", "h,", "i,99999999999999999999,1"}) {
    EXPECT_FALSE(DecodeJournalRecord(bad).ok()) << "'" << bad << "'";
  }
}

TEST_F(DurabilityTest, JournalAppendReadRoundTrips) {
  fs::create_directories(dir_path_);
  const std::vector<JournalRecord> records = {
      JournalRecord::Invocation(FunctionId{1}, 10),
      JournalRecord::ForcedRemine(11),
      JournalRecord::Heartbeat(12),
      JournalRecord::Invocation(FunctionId{2}, 12),
  };
  StateJournal journal{dir_};
  ASSERT_TRUE(journal.StartGeneration(3).ok());
  for (const auto& record : records) {
    ASSERT_TRUE(journal.Append(record).ok());
  }
  EXPECT_EQ(journal.records_appended(), records.size());
  journal.Close();

  const auto scan = StateJournal::Read(dir_, 3);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.value().records, records);
  EXPECT_FALSE(scan.value().torn());
  ASSERT_EQ(scan.value().record_ends.size(), records.size());
  EXPECT_EQ(scan.value().record_ends.back(), scan.value().valid_bytes);
}

TEST_F(DurabilityTest, JournalReadOfMissingGenerationIsNotFound) {
  fs::create_directories(dir_path_);
  const auto scan = StateJournal::Read(dir_, 42);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.error().code, ErrorCode::kNotFound);
}

TEST_F(DurabilityTest, InjectedShortWriteLeavesADetectableTornTail) {
  fs::create_directories(dir_path_);
  {
    StateJournal journal{dir_};
    ASSERT_TRUE(journal.StartGeneration(1).ok());
    ASSERT_TRUE(journal.Append(JournalRecord::Heartbeat(1)).ok());
    journal.Close();
  }
  faults::FaultProfile profile;
  profile.journal_short_write_fraction = 1.0;
  faults::FaultInjector injector{5, profile};
  StateJournal::Options options;
  options.injector = &injector;
  StateJournal journal{dir_, options};
  ASSERT_TRUE(journal.ResumeGeneration(1).ok());
  EXPECT_FALSE(journal.Append(JournalRecord::Heartbeat(2)).ok());
  EXPECT_EQ(injector.injected(faults::FaultSite::kJournalShortWrite), 1u);
  journal.Close();

  const auto scan = StateJournal::Read(dir_, 1);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan.value().records.size(), 1u);
  EXPECT_EQ(scan.value().records[0], JournalRecord::Heartbeat(1));
  EXPECT_TRUE(scan.value().torn());
}

TEST_F(DurabilityTest, TruncateToHealsATornTail) {
  fs::create_directories(dir_path_);
  {
    StateJournal journal{dir_};
    ASSERT_TRUE(journal.StartGeneration(1).ok());
    ASSERT_TRUE(journal.Append(JournalRecord::Heartbeat(1)).ok());
    journal.Close();
  }
  faults::FaultProfile profile;
  profile.journal_short_write_fraction = 1.0;
  faults::FaultInjector injector{5, profile};
  StateJournal::Options options;
  options.injector = &injector;
  StateJournal journal{dir_, options};
  ASSERT_TRUE(journal.ResumeGeneration(1).ok());
  const std::uint64_t intact = journal.size_bytes();
  ASSERT_FALSE(journal.Append(JournalRecord::Heartbeat(2)).ok());
  ASSERT_TRUE(journal.TruncateTo(intact).ok());
  journal.Close();

  const auto scan = StateJournal::Read(dir_, 1);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan.value().torn());
  ASSERT_EQ(scan.value().records.size(), 1u);
  EXPECT_EQ(scan.value().records[0], JournalRecord::Heartbeat(1));
}

// --------------------------------------------------------------- snapshots

TEST(SnapshotFormat, EncodeDecodeRoundTrips) {
  const std::string payload = "defuse-platform-state-v2\nmeta,1,2,3\n";
  const std::string file = SnapshotStore::EncodeSnapshotFile(7, payload);
  const auto decoded = SnapshotStore::DecodeSnapshotFile(file, 7);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), payload);
}

TEST(SnapshotFormat, DecodeRejectsCorruptionAsDataLoss) {
  const std::string payload = "some platform state payload";
  const std::string file = SnapshotStore::EncodeSnapshotFile(7, payload);

  {  // generation mismatch (renamed file)
    const auto r = SnapshotStore::DecodeSnapshotFile(file, 8);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::kDataLoss);
  }
  {  // truncated payload (torn write)
    const auto r = SnapshotStore::DecodeSnapshotFile(
        std::string_view{file}.substr(0, file.size() - 5), 7);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::kDataLoss);
  }
  {  // single flipped payload bit
    std::string flipped = file;
    flipped.back() = static_cast<char>(flipped.back() ^ 1);
    const auto r = SnapshotStore::DecodeSnapshotFile(flipped, 7);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::kDataLoss);
  }
  {  // wrong magic
    const auto r = SnapshotStore::DecodeSnapshotFile("garbage\nstuff", 7);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::kDataLoss);
  }
}

TEST_F(DurabilityTest, SnapshotStoreRoundTripsBitIdentically) {
  Fixture fx;
  Platform p{fx.model, TestConfig()};
  for (const auto& [fn, t] : Events(fx, 2 * kMinutesPerDay, 3)) {
    (void)p.Invoke(fn, t);
  }
  const std::string state = p.SaveState();

  SnapshotStore store{dir_};
  ASSERT_TRUE(store.Open().ok());
  const auto gen = store.Write(state);
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen.value(), 1u);
  const auto read = store.ReadVerified(gen.value());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), state);  // bit-identical to SaveState()
}

TEST_F(DurabilityTest, SnapshotStorePrunesToRetention) {
  SnapshotStore::Options options;
  options.retain = 2;
  SnapshotStore store{dir_, options};
  ASSERT_TRUE(store.Open().ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.Write("payload " + std::to_string(i)).ok());
  }
  const auto snapshots = store.List();
  ASSERT_EQ(snapshots.size(), 2u);
  EXPECT_EQ(snapshots[0].generation, 3u);
  EXPECT_EQ(snapshots[1].generation, 4u);
  EXPECT_EQ(store.latest_generation(), 4u);
}

TEST_F(DurabilityTest, FailedSnapshotWriteKeepsThePreviousNewest) {
  faults::FaultProfile profile;
  profile.snapshot_rename_failure_fraction = 1.0;
  faults::FaultInjector injector{6, profile};
  SnapshotStore::Options options;
  options.injector = &injector;
  SnapshotStore store{dir_, options};
  ASSERT_TRUE(store.Open().ok());
  // First write succeeds (injector off), second fails every retry.
  {
    faults::FaultInjector off;
    SnapshotStore::Options clean;
    clean.injector = &off;
    SnapshotStore bootstrap{dir_, clean};
    ASSERT_TRUE(bootstrap.Open().ok());
    ASSERT_TRUE(bootstrap.Write("good state").ok());
  }
  ASSERT_TRUE(store.Open().ok());
  EXPECT_FALSE(store.Write("never lands").ok());
  EXPECT_EQ(store.latest_generation(), 1u);
  const auto read = store.ReadVerified(1);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "good state");
}

// ---------------------------------------------------------------- recovery

TEST_F(DurabilityTest, EmptyDirectoryRecoversToTheEmptyState) {
  Fixture fx;
  Platform p{fx.model, TestConfig()};
  const std::string fresh = p.SaveState();
  const RecoveryManager rm{dir_};
  const RecoveryReport report = rm.Recover(p);
  EXPECT_EQ(report.rung, RecoveryRung::kEmptyState);
  EXPECT_EQ(report.snapshot_generation, 0u);
  EXPECT_EQ(p.SaveState(), fresh);
}

TEST_F(DurabilityTest, SnapshotOnlyRecoveryIsBitIdentical) {
  Fixture fx;
  Platform live{fx.model, TestConfig()};
  for (const auto& [fn, t] : Events(fx, 3 * kMinutesPerDay, 4)) {
    (void)live.Invoke(fn, t);
  }
  SnapshotStore store{dir_};
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Write(live.SaveState()).ok());

  Platform recovered{fx.model, TestConfig()};
  const RecoveryReport report = RecoveryManager{dir_}.Recover(recovered);
  EXPECT_EQ(report.rung, RecoveryRung::kSnapshotOnly);
  EXPECT_EQ(report.snapshot_generation, 1u);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(recovered.SaveState(), live.SaveState());
}

TEST_F(DurabilityTest, SnapshotPlusJournalRecoveryIsBitIdentical) {
  Fixture fx;
  Platform live{fx.model, TestConfig()};
  const auto events = Events(fx, 4 * kMinutesPerDay, 5);
  // Apply the first half, snapshot, then journal the second half while
  // applying it — exactly what a live DurableState does.
  const std::size_t half = events.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    (void)live.Invoke(events[i].first, events[i].second);
  }
  SnapshotStore store{dir_};
  ASSERT_TRUE(store.Open().ok());
  const auto gen = store.Write(live.SaveState());
  ASSERT_TRUE(gen.ok());
  StateJournal journal{dir_};
  ASSERT_TRUE(journal.StartGeneration(gen.value()).ok());
  for (std::size_t i = half; i < events.size(); ++i) {
    ASSERT_TRUE(journal
                    .Append(JournalRecord::Invocation(events[i].first,
                                                      events[i].second))
                    .ok());
    (void)live.Invoke(events[i].first, events[i].second);
  }
  // One forced re-mine and a trailing heartbeat, to cover all three
  // record types in replay.
  const Minute end = events.back().second + 1;
  ASSERT_TRUE(journal.Append(JournalRecord::ForcedRemine(end)).ok());
  live.RemineNow(end);
  ASSERT_TRUE(journal.Append(JournalRecord::Heartbeat(end + 5)).ok());
  live.AdvanceTo(end + 5);
  journal.Close();

  Platform recovered{fx.model, TestConfig()};
  const RecoveryReport report = RecoveryManager{dir_}.Recover(recovered);
  EXPECT_EQ(report.rung, RecoveryRung::kSnapshotPlusJournal);
  EXPECT_EQ(report.snapshot_generation, gen.value());
  EXPECT_GT(report.journal_records_replayed, 0u);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(recovered.SaveState(), live.SaveState());
  EXPECT_EQ(recovered.stats(), live.stats());
}

TEST_F(DurabilityTest, CorruptNewestSnapshotFallsToTheOlderOne) {
  Fixture fx;
  Platform early{fx.model, TestConfig()};
  const auto events = Events(fx, 3 * kMinutesPerDay, 6);
  const std::size_t half = events.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    (void)early.Invoke(events[i].first, events[i].second);
  }
  SnapshotStore store{dir_};
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Write(early.SaveState()).ok());
  const std::string early_state = early.SaveState();
  for (std::size_t i = half; i < events.size(); ++i) {
    (void)early.Invoke(events[i].first, events[i].second);
  }
  ASSERT_TRUE(store.Write(early.SaveState()).ok());
  CorruptFile(SnapshotStore::SnapshotPath(dir_, 2));

  Platform recovered{fx.model, TestConfig()};
  const RecoveryReport report = RecoveryManager{dir_}.Recover(recovered);
  EXPECT_EQ(report.rung, RecoveryRung::kOlderSnapshot);
  EXPECT_EQ(report.snapshot_generation, 1u);
  EXPECT_EQ(report.snapshots_rejected, 1u);
  EXPECT_FALSE(report.clean());
  EXPECT_FALSE(report.notes.empty());
  EXPECT_EQ(recovered.SaveState(), early_state);
}

TEST_F(DurabilityTest, AllSnapshotsCorruptFallsToTheEmptyState) {
  SnapshotStore store{dir_};
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Write("not a real platform state").ok());
  ASSERT_TRUE(store.Write("also not a real platform state").ok());

  Fixture fx;
  Platform recovered{fx.model, TestConfig()};
  const std::string fresh = recovered.SaveState();
  const RecoveryReport report = RecoveryManager{dir_}.Recover(recovered);
  // Both snapshots checksum fine but fail LoadState (not platform
  // payloads), so the ladder lands on the empty state.
  EXPECT_EQ(report.rung, RecoveryRung::kEmptyState);
  EXPECT_EQ(report.snapshots_rejected, 2u);
  EXPECT_EQ(recovered.SaveState(), fresh);
}

TEST_F(DurabilityTest, TornJournalTailIsTruncatedAndRecoveryIsIdempotent) {
  Fixture fx;
  Platform live{fx.model, TestConfig()};
  SnapshotStore store{dir_};
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Write(live.SaveState()).ok());
  StateJournal journal{dir_};
  ASSERT_TRUE(journal.StartGeneration(1).ok());
  for (Minute t = 0; t < 30; t += 10) {
    ASSERT_TRUE(journal.Append(JournalRecord::Invocation(fx.fast, t)).ok());
    (void)live.Invoke(fx.fast, t);
  }
  journal.Close();
  // Crash mid-append: half a frame of garbage at the tail.
  {
    std::ofstream f{JournalPath(dir_, 1),
                    std::ios::binary | std::ios::app};
    f << "f 999 deadbeef\npart";
  }
  const auto file_size = fs::file_size(JournalPath(dir_, 1));

  Platform recovered{fx.model, TestConfig()};
  const RecoveryReport report = RecoveryManager{dir_}.Recover(recovered);
  EXPECT_EQ(report.rung, RecoveryRung::kSnapshotPlusJournal);
  EXPECT_EQ(report.journal_records_replayed, 3u);
  EXPECT_TRUE(report.journal_truncated);
  EXPECT_GT(report.journal_bytes_dropped, 0u);
  EXPECT_LT(fs::file_size(JournalPath(dir_, 1)), file_size);
  EXPECT_EQ(recovered.SaveState(), live.SaveState());

  // Second run finds nothing left to repair.
  Platform again{fx.model, TestConfig()};
  const RecoveryReport second = RecoveryManager{dir_}.Recover(again);
  EXPECT_TRUE(second.clean());
  EXPECT_FALSE(second.journal_truncated);
  EXPECT_EQ(again.SaveState(), live.SaveState());
}

TEST_F(DurabilityTest, SemanticallyInvalidJournalRecordsAreDropped) {
  Fixture fx;
  Platform live{fx.model, TestConfig()};
  SnapshotStore store{dir_};
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Write(live.SaveState()).ok());
  StateJournal journal{dir_};
  ASSERT_TRUE(journal.StartGeneration(1).ok());
  ASSERT_TRUE(journal.Append(JournalRecord::Invocation(fx.fast, 3)).ok());
  (void)live.Invoke(fx.fast, 3);
  // Function id 99 does not exist in the model: frames verify, but the
  // record cannot be applied — it and everything after it are dropped.
  ASSERT_TRUE(
      journal.Append(JournalRecord::Invocation(FunctionId{99}, 4)).ok());
  ASSERT_TRUE(journal.Append(JournalRecord::Invocation(fx.fast, 13)).ok());
  journal.Close();

  Platform recovered{fx.model, TestConfig()};
  const RecoveryReport report = RecoveryManager{dir_}.Recover(recovered);
  EXPECT_EQ(report.journal_records_replayed, 1u);
  EXPECT_EQ(report.journal_records_rejected, 2u);
  EXPECT_TRUE(report.journal_truncated);
  EXPECT_EQ(recovered.SaveState(), live.SaveState());
}

TEST_F(DurabilityTest, FsckReportsHealthAndCorruption) {
  Fixture fx;
  Platform live{fx.model, TestConfig()};
  SnapshotStore store{dir_};
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Write(live.SaveState()).ok());
  ASSERT_TRUE(store.Write(live.SaveState()).ok());
  const RecoveryManager rm{dir_};
  {
    const FsckReport report = rm.Fsck();
    EXPECT_TRUE(report.healthy);
    EXPECT_EQ(report.usable_generation, 2u);
    EXPECT_EQ(report.snapshots.size(), 2u);
    EXPECT_NE(report.Render().find("status: healthy"), std::string::npos);
  }
  CorruptFile(SnapshotStore::SnapshotPath(dir_, 2));
  {
    const FsckReport report = rm.Fsck();
    EXPECT_FALSE(report.healthy);
    EXPECT_EQ(report.usable_generation, 1u);
    EXPECT_NE(report.Render().find("status: CORRUPT"), std::string::npos);
  }
}

// ------------------------------------------------------------ DurableState

TEST_F(DurabilityTest, DurableReplayRoundTripsBitIdentically) {
  Fixture fx;
  Platform live{fx.model, TestConfig()};
  DurableState::Options options;
  options.checkpoint_interval = kMinutesPerDay;
  DurableState durable{dir_, options};
  ASSERT_TRUE(durable.Open().ok());
  ASSERT_TRUE(durable.Recover(live).ok());
  for (const auto& [fn, t] : Events(fx, 3 * kMinutesPerDay, 7)) {
    ASSERT_TRUE(durable.JournalInvocation(fn, t).ok());
    (void)live.Invoke(fn, t);
    if (durable.ShouldCheckpoint(t)) {
      ASSERT_TRUE(durable.Checkpoint(live).ok());
    }
  }
  ASSERT_TRUE(durable.Checkpoint(live).ok());

  Platform recovered{fx.model, TestConfig()};
  DurableState reopened{dir_};
  ASSERT_TRUE(reopened.Open().ok());
  const auto report = reopened.Recover(recovered);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().rung, RecoveryRung::kSnapshotOnly);
  EXPECT_TRUE(report.value().clean());
  EXPECT_EQ(recovered.SaveState(), live.SaveState());
  // The reopened journal continues the recovered generation.
  EXPECT_EQ(reopened.generation(), durable.generation());
}

TEST_F(DurabilityTest, CrashMidGenerationRecoversThroughTheJournal) {
  Fixture fx;
  Platform live{fx.model, TestConfig()};
  {
    DurableState durable{dir_};
    ASSERT_TRUE(durable.Open().ok());
    ASSERT_TRUE(durable.Recover(live).ok());
    bool checkpointed = false;
    for (const auto& [fn, t] : Events(fx, 2 * kMinutesPerDay, 8)) {
      ASSERT_TRUE(durable.JournalInvocation(fn, t).ok());
      (void)live.Invoke(fn, t);
      if (!checkpointed && t >= kMinutesPerDay) {
        ASSERT_TRUE(durable.Checkpoint(live).ok());
        checkpointed = true;
      }
    }
    // No final checkpoint: the process "crashes" here with a day of
    // events only in the journal.
  }
  Platform recovered{fx.model, TestConfig()};
  DurableState reopened{dir_};
  ASSERT_TRUE(reopened.Open().ok());
  const auto report = reopened.Recover(recovered);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().rung, RecoveryRung::kSnapshotPlusJournal);
  EXPECT_GT(report.value().journal_records_replayed, 0u);
  EXPECT_EQ(recovered.SaveState(), live.SaveState());
  EXPECT_EQ(recovered.stats(), live.stats());
}

TEST_F(DurabilityTest, CrashConsistencyHoldsForSeedsZeroThroughNine) {
  // The PR's acceptance property: under injected journal short writes,
  // snapshot torn writes, and rename failures, recovery always lands on
  // exactly the state whose events were durably journaled — pre- or
  // post-write, never partial. A journal append failure is treated as
  // the crash point (a real scheduler would crash or degrade there).
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const std::string dir =
        (dir_path_ / ("seed_" + std::to_string(seed))).string();
    Fixture fx;
    faults::FaultProfile profile;
    profile.journal_short_write_fraction = 0.01;
    profile.snapshot_torn_write_fraction = 0.2;
    profile.snapshot_rename_failure_fraction = 0.2;
    faults::FaultInjector injector{seed, profile};

    Platform live{fx.model, TestConfig()};
    DurableState::Options options;
    options.store.injector = &injector;
    options.checkpoint_interval = kMinutesPerDay;
    DurableState durable{dir, options};
    ASSERT_TRUE(durable.Open().ok()) << "seed " << seed;
    ASSERT_TRUE(durable.Recover(live).ok()) << "seed " << seed;

    for (const auto& [fn, t] : Events(fx, 4 * kMinutesPerDay, seed)) {
      if (!durable.JournalInvocation(fn, t).ok()) break;  // crash point
      (void)live.Invoke(fn, t);
      // Checkpoints may fail under snapshot faults; the journal of the
      // previous generation keeps the run durable regardless.
      if (durable.ShouldCheckpoint(t)) (void)durable.Checkpoint(live);
    }

    Platform recovered{fx.model, TestConfig()};
    DurableState reopened{dir};  // recovery itself runs fault-free
    ASSERT_TRUE(reopened.Open().ok()) << "seed " << seed;
    const auto report = reopened.Recover(recovered);
    ASSERT_TRUE(report.ok()) << "seed " << seed;
    EXPECT_EQ(recovered.SaveState(), live.SaveState()) << "seed " << seed;
    EXPECT_EQ(recovered.stats(), live.stats()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace defuse::platform::durability
