// Chaos tests: the online platform under deterministic fault injection.
//
// The invariants here are the PR's acceptance criteria: under any seed
// the platform never crashes, its counters stay consistent, a failed
// re-mine leaves the previous dependency sets serving, and the whole run
// is bit-identical given (seed, profile) — while a disabled injector is
// bit-identical to no injector at all.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "faults/injector.hpp"
#include "platform/platform.hpp"

namespace defuse::platform {
namespace {

/// One user, three functions: a 60-min strict periodic (drives pre-warm
/// decisions), a 10-min periodic (stays in keep-alive territory), and a
/// bursty checkout that co-fires with the 10-min one (mines into a set).
struct Fixture {
  trace::WorkloadModel model;
  FunctionId slow, fast, bursty;
  Fixture() {
    const UserId u = model.AddUser("u");
    const AppId a = model.AddApp(u, "app");
    slow = model.AddFunction(a, "slow60");
    fast = model.AddFunction(a, "fast10");
    bursty = model.AddFunction(a, "bursty");
  }
};

PlatformConfig ChaosConfig() {
  PlatformConfig cfg;
  cfg.horizon = 10 * kMinutesPerDay;
  cfg.remine_interval = kMinutesPerDay;
  return cfg;
}

/// Drives `days` of the fixture workload. Deterministic in `seed`.
void Drive(Platform& p, const Fixture& fx, Minute days, std::uint64_t seed) {
  Rng rng{seed};
  Minute bursty_next = 17;
  for (Minute t = 0; t < days * kMinutesPerDay; ++t) {
    if (t % 60 == 0) (void)p.Invoke(fx.slow, t);
    if (t % 10 == 3) (void)p.Invoke(fx.fast, t);
    if (t == bursty_next) {
      (void)p.Invoke(fx.bursty, t);
      (void)p.Invoke(fx.fast, t);
      bursty_next += 20 + static_cast<Minute>(rng.NextBelow(80));
    }
  }
}

faults::FaultProfile ChaosProfile() {
  faults::FaultProfile profile;
  profile.remine_failure_fraction = 0.5;
  profile.prewarm_spawn_failure_fraction = 0.3;
  return profile;
}

TEST(Chaos, InvariantsHoldForSeedsZeroThroughNine) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Fixture fx;
    faults::FaultInjector injector{seed, ChaosProfile()};
    Platform p{fx.model, ChaosConfig()};
    p.set_fault_injector(&injector);
    Drive(p, fx, 8, seed);

    const PlatformStats& stats = p.stats();
    EXPECT_GE(stats.cold_fraction(), 0.0) << "seed " << seed;
    EXPECT_LE(stats.cold_fraction(), 1.0) << "seed " << seed;
    EXPECT_LE(stats.cold_invocations, stats.invocations) << "seed " << seed;
    EXPECT_LE(stats.degraded_remines, stats.remines) << "seed " << seed;

    // Exact fault accounting: every injected mining failure became one
    // degraded re-mine serving one stale cadence interval (no budget is
    // configured, so there is no other degradation source), and every
    // injected spawn failure is booked.
    EXPECT_EQ(stats.degraded_remines,
              injector.injected(faults::FaultSite::kRemine))
        << "seed " << seed;
    EXPECT_EQ(stats.stale_graph_minutes,
              static_cast<MinuteDelta>(stats.degraded_remines) *
                  ChaosConfig().remine_interval)
        << "seed " << seed;
    EXPECT_EQ(stats.prewarm_spawn_failures,
              injector.injected(faults::FaultSite::kPrewarmSpawn))
        << "seed " << seed;

    // Per-function counters stay consistent with the totals.
    std::uint64_t fn_total = 0, fn_cold = 0;
    for (const auto v : p.function_invocations()) fn_total += v;
    for (const auto v : p.function_cold()) fn_cold += v;
    EXPECT_EQ(fn_total, stats.invocations) << "seed " << seed;
    EXPECT_EQ(fn_cold, stats.cold_invocations) << "seed " << seed;
  }
}

TEST(Chaos, CountersAreMonotonicOverTime) {
  Fixture fx;
  faults::FaultInjector injector{4, ChaosProfile()};
  Platform p{fx.model, ChaosConfig()};
  p.set_fault_injector(&injector);
  PlatformStats prev = p.stats();
  Rng rng{4};
  Minute bursty_next = 17;
  for (Minute t = 0; t < 6 * kMinutesPerDay; ++t) {
    if (t % 60 == 0) (void)p.Invoke(fx.slow, t);
    if (t % 10 == 3) (void)p.Invoke(fx.fast, t);
    if (t == bursty_next) {
      (void)p.Invoke(fx.bursty, t);
      bursty_next += 20 + static_cast<Minute>(rng.NextBelow(80));
    }
    if (t % 200 == 0) {
      const PlatformStats& now = p.stats();
      EXPECT_GE(now.invocations, prev.invocations);
      EXPECT_GE(now.cold_invocations, prev.cold_invocations);
      EXPECT_GE(now.remines, prev.remines);
      EXPECT_GE(now.degraded_remines, prev.degraded_remines);
      EXPECT_GE(now.stale_graph_minutes, prev.stale_graph_minutes);
      EXPECT_GE(now.prewarm_spawn_failures, prev.prewarm_spawn_failures);
      EXPECT_GE(now.prewarm_spawns_abandoned, prev.prewarm_spawns_abandoned);
      prev = now;
    }
  }
}

TEST(Chaos, FailedRemineKeepsPreviousSetsServing) {
  // Every re-mine fails: the platform must keep the bootstrap singleton
  // sets for the whole run and never regroup, while staying up.
  Fixture fx;
  faults::FaultProfile profile;
  profile.remine_failure_fraction = 1.0;
  faults::FaultInjector injector{1, profile};
  Platform p{fx.model, ChaosConfig()};
  p.set_fault_injector(&injector);
  Drive(p, fx, 6, 1);

  EXPECT_GE(p.stats().remines, 5u);
  EXPECT_EQ(p.stats().degraded_remines, p.stats().remines);
  EXPECT_EQ(p.stats().stale_graph_minutes,
            static_cast<MinuteDelta>(p.stats().remines) * kMinutesPerDay);
  // Still the bootstrap singletons: one unit per function.
  EXPECT_EQ(p.units().num_units(), fx.model.num_functions());
  EXPECT_NE(p.units().unit_of(fx.bursty), p.units().unit_of(fx.fast));
  EXPECT_GT(p.stats().invocations, 0u);
}

TEST(Chaos, HalfFailedReminesStillEventuallyGroup) {
  // With re-mines failing half the time, the surviving ones must still
  // mine bursty+fast into one dependency set.
  Fixture fx;
  faults::FaultProfile profile;
  profile.remine_failure_fraction = 0.5;
  faults::FaultInjector injector{2, profile};
  Platform p{fx.model, ChaosConfig()};
  p.set_fault_injector(&injector);
  Drive(p, fx, 8, 2);
  ASSERT_GT(p.stats().remines, p.stats().degraded_remines);
  EXPECT_EQ(p.units().unit_of(fx.bursty), p.units().unit_of(fx.fast));
}

TEST(Chaos, PrewarmSpawnRetryExhaustionAbandonsTheWindow) {
  Fixture fx;
  faults::FaultProfile profile;
  profile.prewarm_spawn_failure_fraction = 1.0;
  faults::FaultInjector injector{3, profile};
  auto cfg = ChaosConfig();
  cfg.prewarm_retry.max_attempts = 3;
  Platform p{fx.model, cfg};
  p.set_fault_injector(&injector);
  Drive(p, fx, 8, 3);

  // The 60-min periodic function must have produced pre-warm decisions,
  // every spawn attempt failed, and every window was abandoned after
  // exactly max_attempts tries.
  ASSERT_GT(p.stats().prewarm_spawns_abandoned, 0u);
  EXPECT_EQ(p.stats().prewarm_spawn_failures,
            p.stats().prewarm_spawns_abandoned * 3u);
  EXPECT_EQ(p.stats().prewarm_spawn_failures,
            injector.injected(faults::FaultSite::kPrewarmSpawn));
}

TEST(Chaos, MiningBudgetDegradesToWeakOnlyWithoutStaleness) {
  Fixture fx;
  auto cfg = ChaosConfig();
  cfg.max_mining_transactions = 1;  // every window blows the budget
  Platform p{fx.model, cfg};
  Drive(p, fx, 6, 5);
  ASSERT_GT(p.stats().remines, 0u);
  // strong+weak config: the ladder's first rung is weak-only, which is
  // degraded but still a fresh graph — no stale minutes.
  EXPECT_EQ(p.stats().degraded_remines, p.stats().remines);
  EXPECT_EQ(p.stats().stale_graph_minutes, 0);
  // Weak mining alone still groups the co-firing pair.
  EXPECT_EQ(p.units().unit_of(fx.bursty), p.units().unit_of(fx.fast));
}

TEST(Chaos, MiningBudgetWithWeakOffKeepsStaleSets) {
  Fixture fx;
  auto cfg = ChaosConfig();
  cfg.max_mining_transactions = 1;
  cfg.mining.use_weak = false;  // no weak-only rung left
  Platform p{fx.model, cfg};
  Drive(p, fx, 6, 5);
  ASSERT_GT(p.stats().remines, 0u);
  EXPECT_EQ(p.stats().degraded_remines, p.stats().remines);
  EXPECT_EQ(p.stats().stale_graph_minutes,
            static_cast<MinuteDelta>(p.stats().remines) * kMinutesPerDay);
  EXPECT_EQ(p.units().num_units(), fx.model.num_functions());
}

TEST(Chaos, SameSeedAndProfileIsBitIdentical) {
  Fixture fx;
  const auto run = [&fx](std::uint64_t seed) {
    faults::FaultInjector injector{seed, ChaosProfile()};
    Platform p{fx.model, ChaosConfig()};
    p.set_fault_injector(&injector);
    Drive(p, fx, 6, 9);
    return std::pair<PlatformStats, std::string>{p.stats(), p.SaveState()};
  };
  const auto [stats_a, state_a] = run(6);
  const auto [stats_b, state_b] = run(6);
  EXPECT_EQ(stats_a, stats_b);
  EXPECT_EQ(state_a, state_b);
  // A different seed gives a different fault schedule (sanity that the
  // seed actually matters).
  const auto [stats_c, state_c] = run(7);
  (void)stats_c;
  EXPECT_NE(state_a, state_c);
}

TEST(Chaos, DisabledInjectorIsBitIdenticalToNoInjector) {
  Fixture fx;
  Platform bare{fx.model, ChaosConfig()};
  Drive(bare, fx, 6, 9);

  faults::FaultInjector disabled;  // default-constructed: off
  Platform attached{fx.model, ChaosConfig()};
  attached.set_fault_injector(&disabled);
  Drive(attached, fx, 6, 9);

  EXPECT_EQ(bare.stats(), attached.stats());
  EXPECT_EQ(bare.SaveState(), attached.SaveState());
  EXPECT_EQ(disabled.decisions(faults::FaultSite::kRemine), 0u);
  EXPECT_EQ(disabled.decisions(faults::FaultSite::kPrewarmSpawn), 0u);
}

TEST(Chaos, SaveStateCarriesDegradationCountersAcrossRestart) {
  Fixture fx;
  faults::FaultInjector injector{8, ChaosProfile()};
  Platform original{fx.model, ChaosConfig()};
  original.set_fault_injector(&injector);
  Drive(original, fx, 6, 8);
  ASSERT_GT(original.stats().degraded_remines, 0u);

  Platform restored{fx.model, ChaosConfig()};
  ASSERT_TRUE(restored.LoadState(original.SaveState()));
  EXPECT_EQ(restored.stats(), original.stats());
}

// Parallel mining inside the live platform must not perturb anything:
// the engine with --mine-threads style fan-out is bit-identical to the
// serial engine, fault injection and all, and run-twice is stable.
TEST(Chaos, ParallelMiningIsBitIdenticalUnderFaults) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Fixture fx;
    auto parallel_cfg = ChaosConfig();
    parallel_cfg.mining.parallel.num_threads = 4;

    faults::FaultInjector serial_injector{seed, ChaosProfile()};
    Platform serial{fx.model, ChaosConfig()};
    serial.set_fault_injector(&serial_injector);
    Drive(serial, fx, 6, seed);

    faults::FaultInjector parallel_injector{seed, ChaosProfile()};
    Platform parallel{fx.model, parallel_cfg};
    parallel.set_fault_injector(&parallel_injector);
    Drive(parallel, fx, 6, seed);

    EXPECT_EQ(serial.stats(), parallel.stats()) << "seed " << seed;
    EXPECT_EQ(serial.SaveState(), parallel.SaveState()) << "seed " << seed;

    faults::FaultInjector again_injector{seed, ChaosProfile()};
    Platform again{fx.model, parallel_cfg};
    again.set_fault_injector(&again_injector);
    Drive(again, fx, 6, seed);
    EXPECT_EQ(parallel.SaveState(), again.SaveState()) << "seed " << seed;
  }
}

// Rebuilds a current-format state as an older version: swaps the header
// and truncates the meta line to `fields` fields.
std::string DowngradeState(const std::string& current, const char* header,
                           std::size_t fields) {
  const std::size_t meta_start = current.find("meta,");
  const std::size_t meta_end = current.find('\n', meta_start);
  EXPECT_NE(meta_start, std::string::npos);
  std::string meta = current.substr(meta_start, meta_end - meta_start);
  std::size_t commas = 0, cut = std::string::npos;
  for (std::size_t i = 0; i < meta.size(); ++i) {
    if (meta[i] == ',' && ++commas == fields + 1) { cut = i; break; }
  }
  EXPECT_NE(cut, std::string::npos);
  return std::string{header} + "\n" + meta.substr(0, cut) +
         current.substr(meta_end);
}

TEST(Chaos, LoadStateAcceptsLegacyV1Header) {
  // A v1 state (5 meta fields, no degradation counters) must still load,
  // with the new counters defaulting to zero.
  Fixture fx;
  Platform p{fx.model, ChaosConfig()};
  const std::string current = p.SaveState();
  ASSERT_EQ(current.rfind("defuse-platform-state-v3\n", 0), 0u);
  const std::string v1 =
      DowngradeState(current, "defuse-platform-state-v1", 5);
  Platform q{fx.model, ChaosConfig()};
  EXPECT_TRUE(q.LoadState(v1));
  EXPECT_EQ(q.stats().degraded_remines, 0u);
  EXPECT_EQ(q.stats().stale_graph_minutes, 0);
}

TEST(Chaos, LoadStateAcceptsLegacyV2Header) {
  // A v2 state (9 meta fields, no catch-up counter) must still load.
  Fixture fx;
  Platform p{fx.model, ChaosConfig()};
  const std::string v2 =
      DowngradeState(p.SaveState(), "defuse-platform-state-v2", 9);
  Platform q{fx.model, ChaosConfig()};
  EXPECT_TRUE(q.LoadState(v2));
  EXPECT_EQ(q.stats().catchup_remines_skipped, 0u);
}

}  // namespace
}  // namespace defuse::platform
