// PlatformServer: the determinism bridge and the request-validation
// contract.
//
// The bridge is this PR's acceptance criterion: for seeds 0..9, pushing
// a generated trace through the full serving stack (protocol encode →
// frame → ServerCore → PlatformServer → Platform) must be bit-equivalent
// to calling Platform::Invoke directly — identical per-invocation
// outcomes, byte-identical PlatformStats over the wire, byte-identical
// SaveState() snapshots, and a byte-identical dependency-set CSV. The
// serving layer adds transport, not semantics.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "graph/serialization.hpp"
#include "net/loopback.hpp"
#include "net/server_core.hpp"
#include "platform/durability/durable_state.hpp"
#include "platform/platform.hpp"
#include "server/client.hpp"
#include "server/platform_server.hpp"
#include "trace/generator.hpp"

namespace defuse::server {
namespace {

platform::PlatformConfig BridgeConfig(MinuteDelta horizon) {
  platform::PlatformConfig cfg;
  cfg.horizon = horizon;
  cfg.remine_interval = kMinutesPerDay;
  return cfg;
}

/// The platform's current dependency sets, serialized exactly as the
/// miner daemon would hand them to a scheduler.
std::string SetsCsv(const platform::Platform& p,
                    const trace::WorkloadModel& model) {
  std::vector<graph::DependencySet> sets;
  for (std::size_t unit = 0; unit < p.units().num_units(); ++unit) {
    graph::DependencySet set;
    set.id = static_cast<std::uint32_t>(unit);
    const auto fns = p.units().functions_of(
        UnitId{static_cast<std::uint32_t>(unit)});
    set.functions.assign(fns.begin(), fns.end());
    sets.push_back(std::move(set));
  }
  return graph::WriteDependencySetsCsvChecksummed(sets, model);
}

/// One served platform: loopback stack wired up around a Platform.
struct Served {
  platform::Platform platform;
  PlatformServer handler;
  net::ServerCore core;
  net::LoopbackServer loopback;

  Served(const trace::WorkloadModel& model,
         const platform::PlatformConfig& cfg)
      : platform(model, cfg),
        handler(platform),
        core(handler),
        loopback(core) {}

  [[nodiscard]] Client Connect() {
    auto channel = loopback.Connect();
    EXPECT_TRUE(channel.ok());
    return Client{std::move(channel).value()};
  }
};

TEST(ServerBridge, ServedTraceIsBitIdenticalToDirectReplayForTenSeeds) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto gen = trace::GeneratorConfig::Tiny();
    gen.seed = seed;
    const auto workload = trace::GenerateWorkload(gen);
    const auto cfg = BridgeConfig(gen.horizon_minutes);

    platform::Platform direct{workload.model, cfg};
    Served served{workload.model, cfg};
    Client client = served.Connect();

    const auto index =
        workload.trace.BuildMinuteIndex(workload.trace.horizon());
    for (Minute t = 0; t < workload.trace.horizon().end; ++t) {
      for (const auto& [fn, count] : index.at(t)) {
        const auto want = direct.Invoke(fn, t);
        const auto got = client.Invoke(fn, t);
        ASSERT_TRUE(got.ok())
            << "seed " << seed << " t " << t << ": " << got.error().message;
        ASSERT_EQ(got.value().cold, want.cold) << "seed " << seed << " t "
                                               << t;
        ASSERT_EQ(got.value().unit.value(), want.unit.value())
            << "seed " << seed << " t " << t;
      }
    }

    // Stats over the wire == direct stats, field for field.
    const auto stats = client.Stats();
    ASSERT_TRUE(stats.ok()) << stats.error().message;
    EXPECT_EQ(stats.value().stats, direct.stats()) << "seed " << seed;
    EXPECT_GT(stats.value().stats.invocations, 0u) << "seed " << seed;
    EXPECT_GT(stats.value().stats.remines, 0u) << "seed " << seed;

    // Snapshot over the wire == direct SaveState, byte for byte.
    const auto snapshot = client.Snapshot();
    ASSERT_TRUE(snapshot.ok()) << snapshot.error().message;
    EXPECT_EQ(snapshot.value().state, direct.SaveState()) << "seed " << seed;

    // Mined dependency sets, serialized, byte for byte.
    EXPECT_EQ(SetsCsv(served.platform, workload.model),
              SetsCsv(direct, workload.model))
        << "seed " << seed;

    // The wire snapshot restores into a fresh platform losslessly.
    platform::Platform restored{workload.model, cfg};
    ASSERT_TRUE(restored.LoadState(snapshot.value().state))
        << "seed " << seed;
    EXPECT_EQ(restored.SaveState(), snapshot.value().state)
        << "seed " << seed;
  }
}

TEST(ServerBridge, AdvanceToMatchesDirectHeartbeats) {
  auto gen = trace::GeneratorConfig::Tiny();
  const auto workload = trace::GenerateWorkload(gen);
  const auto cfg = BridgeConfig(gen.horizon_minutes);

  platform::Platform direct{workload.model, cfg};
  Served served{workload.model, cfg};
  Client client = served.Connect();

  // Sparse traffic with explicit heartbeats over the gaps.
  const FunctionId fn{0};
  for (Minute t = 0; t < 3 * kMinutesPerDay; t += 97) {
    (void)direct.Invoke(fn, t);
    auto got = client.Invoke(fn, t);
    ASSERT_TRUE(got.ok());
    const Minute beat = t + 48;
    direct.AdvanceTo(beat);
    ASSERT_TRUE(client.AdvanceTo(beat).ok());
  }
  const auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().stats, direct.stats());
}

// ---- request validation ----------------------------------------------------

struct ValidationFixture : ::testing::Test {
  trace::WorkloadModel model;
  FunctionId fn{0};
  void SetUp() override {
    const UserId u = model.AddUser("u");
    const AppId a = model.AddApp(u, "app");
    fn = model.AddFunction(a, "f");
  }
};

TEST_F(ValidationFixture, OutOfRangeFunctionIsRejectedWithoutSideEffects) {
  Served served{model, BridgeConfig(kMinutesPerDay)};
  Client client = served.Connect();

  auto bad = client.Invoke(FunctionId{99}, Minute{0});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kInvalidArgument);
  EXPECT_FALSE(client.connection_dead());  // remote error, conn survives
  EXPECT_EQ(served.platform.stats().invocations, 0u);

  // The connection keeps working for valid requests.
  auto good = client.Invoke(fn, Minute{0});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(served.platform.stats().invocations, 1u);
}

TEST_F(ValidationFixture, ClockRegressionIsRejected) {
  Served served{model, BridgeConfig(kMinutesPerDay)};
  Client client = served.Connect();
  ASSERT_TRUE(client.Invoke(fn, Minute{100}).ok());

  auto back = client.Invoke(fn, Minute{50});
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.error().code, ErrorCode::kInvalidArgument);
  auto beat = client.AdvanceTo(Minute{50});
  ASSERT_FALSE(beat.ok());
  EXPECT_EQ(beat.error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(served.platform.stats().invocations, 1u);
}

TEST_F(ValidationFixture, OutOfHorizonClocksAreRejected) {
  Served served{model, BridgeConfig(kMinutesPerDay)};
  Client client = served.Connect();

  auto negative = client.Invoke(fn, Minute{-1});
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.error().code, ErrorCode::kInvalidArgument);

  auto past = client.Invoke(fn, kMinutesPerDay);
  ASSERT_FALSE(past.ok());
  EXPECT_EQ(past.error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(served.platform.stats().invocations, 0u);
}

TEST_F(ValidationFixture, RemineNowCompletesSeriallyByDefault) {
  Served served{model, BridgeConfig(kMinutesPerDay)};
  Client client = served.Connect();
  ASSERT_TRUE(client.Invoke(fn, Minute{0}).ok());

  auto remine = client.RemineNow(Minute{10});
  ASSERT_TRUE(remine.ok()) << remine.error().message;
  EXPECT_EQ(remine.value().mode, RemineMode::kCompleted);
  EXPECT_EQ(served.platform.stats().remines, 1u);
}

// ---- durable serving -------------------------------------------------------

TEST(ServerDurability, ServedTrafficSurvivesCrashAndRecovery) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "defuse_server_durability_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  trace::WorkloadModel model;
  const UserId u = model.AddUser("u");
  const AppId a = model.AddApp(u, "app");
  const FunctionId f0 = model.AddFunction(a, "f0");
  const FunctionId f1 = model.AddFunction(a, "f1");
  const auto cfg = BridgeConfig(2 * kMinutesPerDay);

  std::string crashed_state;
  {
    platform::Platform p{model, cfg};
    platform::durability::DurableState durable{(dir / "state").string()};
    ASSERT_TRUE(durable.Open().ok());
    ASSERT_TRUE(durable.Recover(p).ok());

    PlatformServer::Options options;
    options.durable = &durable;
    PlatformServer handler{p, options};
    net::ServerCore core{handler};
    net::LoopbackServer loopback{core};
    auto channel = loopback.Connect();
    ASSERT_TRUE(channel.ok());
    Client client{std::move(channel).value()};

    for (Minute t = 0; t < 300; t += 3) {
      ASSERT_TRUE(client.Invoke(f0, t).ok());
      if (t % 30 == 0) {
        ASSERT_TRUE(client.Invoke(f1, t).ok());
      }
    }
    EXPECT_EQ(handler.journal_failures(), 0u);
    crashed_state = p.SaveState();
    // No Drain(), no final checkpoint: the "daemon" dies here and the
    // journal alone must carry the traffic.
  }

  platform::Platform recovered{model, cfg};
  platform::durability::DurableState durable{(dir / "state").string()};
  ASSERT_TRUE(durable.Open().ok());
  auto report = durable.Recover(recovered);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_EQ(recovered.SaveState(), crashed_state);

  fs::remove_all(dir);
}

TEST(ServerDurability, DrainWritesAFinalCheckpoint) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "defuse_server_drain_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  trace::WorkloadModel model;
  const UserId u = model.AddUser("u");
  const AppId a = model.AddApp(u, "app");
  const FunctionId fn = model.AddFunction(a, "f");
  const auto cfg = BridgeConfig(kMinutesPerDay);

  platform::Platform p{model, cfg};
  platform::durability::DurableState durable{(dir / "state").string()};
  ASSERT_TRUE(durable.Open().ok());
  ASSERT_TRUE(durable.Recover(p).ok());

  PlatformServer::Options options;
  options.durable = &durable;
  PlatformServer handler{p, options};
  net::ServerCore core{handler};
  net::LoopbackServer loopback{core};
  auto channel = loopback.Connect();
  ASSERT_TRUE(channel.ok());
  Client client{std::move(channel).value()};
  ASSERT_TRUE(client.Invoke(fn, Minute{5}).ok());

  const std::uint64_t before = durable.generation();
  auto drained = handler.Drain();
  ASSERT_TRUE(drained.ok()) << drained.error().message;
  EXPECT_GT(durable.generation(), before);
  // Idempotent: a second drain is harmless.
  EXPECT_TRUE(handler.Drain().ok());

  fs::remove_all(dir);
}

}  // namespace
}  // namespace defuse::server
