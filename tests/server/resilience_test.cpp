// Request-resilience layer: deadline propagation, admission control,
// overflow shedding with retry advice, the idempotency window, health
// probes, and exactly-once effects for a retrying client over
// at-least-once delivery (DESIGN.md §12).
//
// The fault sites exercised here are the serving-path trio added with
// this layer: net_stall (reply lost after the request applied —
// FaultSite::kNetStall), queue_overflow (spurious admission overflow —
// FaultSite::kQueueOverflow), and deadline_skew (server clock ahead —
// FaultSite::kDeadlineSkew), alongside the established net_reset /
// net_short_write connection faults.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/io/framed.hpp"
#include "faults/injector.hpp"
#include "net/frame_decoder.hpp"
#include "net/loopback.hpp"
#include "net/server_core.hpp"
#include "platform/platform.hpp"
#include "server/client.hpp"
#include "server/platform_server.hpp"
#include "trace/generator.hpp"

namespace defuse::server {
namespace {

platform::PlatformConfig TestConfig(MinuteDelta horizon) {
  platform::PlatformConfig cfg;
  cfg.horizon = horizon;
  cfg.remine_interval = kMinutesPerDay;
  return cfg;
}

/// A served platform whose pieces are individually reachable.
struct Served {
  trace::SyntheticWorkload workload;
  platform::Platform platform;
  PlatformServer handler;
  net::ServerCore core;
  net::LoopbackServer loopback;

  explicit Served(std::uint64_t seed, net::ServerLimits limits = {},
                  faults::FaultInjector* injector = nullptr,
                  PlatformServer::Options options = {})
      : workload(trace::GenerateWorkload(Gen(seed))),
        platform(workload.model, TestConfig(Gen(seed).horizon_minutes)),
        handler(platform, options),
        core(handler, limits, injector),
        loopback(core, injector) {
    handler.set_core(&core);
  }

  static trace::GeneratorConfig Gen(std::uint64_t seed) {
    auto gen = trace::GeneratorConfig::Tiny();
    gen.seed = seed;
    return gen;
  }

  [[nodiscard]] Client Connect() {
    auto channel = loopback.Connect();
    EXPECT_TRUE(channel.ok());
    return Client{std::move(channel).value()};
  }
};

/// Frames one encoded request payload for direct core.OnBytes feeding.
std::string Framed(std::string_view payload) {
  std::string out;
  io::AppendFrame(out, payload);
  return out;
}

/// Decodes every complete reply frame buffered for `id`.
std::vector<std::string> DrainReplies(net::ServerCore& core,
                                      net::ServerCore::ConnId id) {
  net::FrameDecoder decoder;
  decoder.Feed(core.PendingOutput(id));
  core.ConsumeOutput(id, core.PendingOutput(id).size());
  std::vector<std::string> replies;
  std::string payload;
  while (decoder.Next(payload) == net::FrameDecoder::State::kFrame) {
    replies.push_back(payload);
  }
  return replies;
}

// ---- protocol hello --------------------------------------------------------

TEST(Resilience, HelloHandshakeSucceedsOnMatchingVersion) {
  Served served{0};
  Client client = served.Connect();
  auto hello = client.Hello();
  ASSERT_TRUE(hello.ok()) << hello.error().message;
  EXPECT_EQ(hello.value().version, kProtocolVersion);
}

TEST(Resilience, VersionMismatchNamesBothVersions) {
  Served served{0};
  // A v2 hello announcing v1: rejected by the handler, naming both.
  Client client = served.Connect();
  auto body = DecodeReply(
      [&] {
        const auto a = served.core.OnAccept();
        EXPECT_TRUE(
            served.core.OnBytes(a, Framed(EncodeRequest(HelloRequest{1}))));
        served.core.PumpQueue();
        auto replies = DrainReplies(served.core, a);
        EXPECT_EQ(replies.size(), 1u);
        return replies.empty() ? std::string{} : replies.front();
      }());
  ASSERT_TRUE(body.ok());
  ASSERT_FALSE(body.value().ok);
  EXPECT_EQ(body.value().error.code, ErrorCode::kInvalidArgument);
  EXPECT_NE(body.value().error.message.find("v1"), std::string::npos);
  EXPECT_NE(body.value().error.message.find("v2"), std::string::npos);

  // A raw v1 request (payload begins with the old type byte): rejected
  // at decode with both versions named, not garbage-decoded.
  const auto conn = served.core.OnAccept();
  std::string v1_wire;
  v1_wire.push_back('\x01');  // v1 kInvoke
  v1_wire.append(12, '\0');
  EXPECT_TRUE(served.core.OnBytes(conn, Framed(v1_wire)));
  served.core.PumpQueue();
  const auto replies = DrainReplies(served.core, conn);
  ASSERT_EQ(replies.size(), 1u);
  auto decoded = DecodeReply(replies.front());
  ASSERT_TRUE(decoded.ok());
  ASSERT_FALSE(decoded.value().ok);
  EXPECT_EQ(decoded.value().error.code, ErrorCode::kInvalidArgument);
  EXPECT_NE(decoded.value().error.message.find("v1"), std::string::npos);
  EXPECT_NE(decoded.value().error.message.find("v2"), std::string::npos);
}

// ---- health ----------------------------------------------------------------

TEST(Resilience, HealthReportsReadinessAndDrain) {
  Served served{0};
  Client client = served.Connect();

  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.error().message;
  EXPECT_TRUE(health.value().ready);
  EXPECT_FALSE(health.value().draining);
  EXPECT_EQ(health.value().queue_depth, 0u);
  EXPECT_EQ(health.value().idempotency_entries, 0u);
  EXPECT_EQ(health.value().clock_minute, 0);

  // State-changing traffic moves the clock and the idempotency window.
  auto invoke =
      client.Invoke(FunctionId{0}, Minute{30}, RequestHeader{11, kNoDeadline});
  ASSERT_TRUE(invoke.ok()) << invoke.error().message;
  health = client.Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().clock_minute, 30);
  EXPECT_EQ(health.value().idempotency_entries, 1u);

  // Draining: probes still answer (control plane), but report not-ready.
  served.core.BeginDrain();
  health = client.Health();
  ASSERT_TRUE(health.ok()) << health.error().message;
  EXPECT_TRUE(health.value().draining);
  EXPECT_FALSE(health.value().ready);
}

// ---- deadlines -------------------------------------------------------------

TEST(Resilience, ExpiredDeadlineIsRejectedWithoutExecution) {
  Served served{0};
  Client client = served.Connect();
  ASSERT_TRUE(client.Invoke(FunctionId{0}, Minute{100}).ok());
  const auto invocations_before = served.platform.stats().invocations;

  // Expired against the platform clock (100) at admission.
  auto admission = client.Invoke(FunctionId{0}, Minute{120},
                                 RequestHeader{kNoRequestId, Minute{90}});
  ASSERT_FALSE(admission.ok());
  EXPECT_EQ(admission.error().code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(served.core.stats().requests_expired, 1u);

  // Alive at admission but expired against the request's own minute:
  // the reply would be issued at minute 120, past deadline 110.
  auto handler_side = client.Invoke(FunctionId{0}, Minute{120},
                                    RequestHeader{kNoRequestId, Minute{110}});
  ASSERT_FALSE(handler_side.ok());
  EXPECT_EQ(handler_side.error().code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(served.handler.deadline_rejections(), 1u);

  // Neither rejection executed anything.
  EXPECT_EQ(served.platform.stats().invocations, invocations_before);

  // A deadline with headroom sails through.
  auto ok = client.Invoke(FunctionId{0}, Minute{120},
                          RequestHeader{kNoRequestId, Minute{400}});
  EXPECT_TRUE(ok.ok());
}

TEST(Resilience, DeadlineExpiresWhileQueued) {
  Served served{0};
  const auto conn = served.core.OnAccept();
  // Two requests in one byte burst: the first advances the clock to
  // minute 200 when pumped; the second was admitted while the clock was
  // still 0 but its deadline (50) is long dead by its dispatch.
  std::string burst = Framed(EncodeRequest(InvokeRequest{FunctionId{0}, 200}));
  burst += Framed(EncodeRequest(InvokeRequest{FunctionId{0}, 200},
                                RequestHeader{kNoRequestId, Minute{50}}));
  ASSERT_TRUE(served.core.OnBytes(conn, burst));
  EXPECT_EQ(served.core.queue_depth(), 2u);
  served.core.PumpQueue();
  const auto replies = DrainReplies(served.core, conn);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_TRUE(DecodeReply(replies[0]).value().ok);
  auto second = DecodeReply(replies[1]);
  ASSERT_TRUE(second.ok());
  ASSERT_FALSE(second.value().ok);
  EXPECT_EQ(second.value().error.code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(served.core.stats().requests_expired, 1u);
  EXPECT_EQ(served.platform.stats().invocations, 1u);
}

TEST(Resilience, DeadlineSkewTightensAdmission) {
  // With deadline_skew_fraction = 1 every admission tightens the
  // deadline by a drawn 1..16 minutes. Deadlines with < 17 minutes of
  // headroom sometimes expire; deadlines with >= 17 never do.
  faults::FaultProfile profile;
  profile.deadline_skew_fraction = 1.0;
  faults::FaultInjector injector{3, profile};
  Served served{0, net::ServerLimits{}, &injector};
  Client client = served.Connect();
  ASSERT_TRUE(client.Invoke(FunctionId{0}, Minute{100}).ok());

  std::uint64_t expired = 0;
  for (int i = 0; i < 32; ++i) {
    // 8 minutes of headroom against the clock: expires iff skew > 8.
    auto r = client.Invoke(FunctionId{0}, Minute{100},
                           RequestHeader{kNoRequestId, Minute{108}});
    if (!r.ok()) {
      EXPECT_EQ(r.error().code, ErrorCode::kDeadlineExceeded);
      ++expired;
    }
  }
  EXPECT_GT(expired, 0u);
  EXPECT_LT(expired, 32u);
  EXPECT_EQ(served.core.stats().requests_expired, expired);

  // Past the maximum skew (16), a deadline never tightens into expiry.
  for (int i = 0; i < 8; ++i) {
    auto r = client.Invoke(FunctionId{0}, Minute{100},
                           RequestHeader{kNoRequestId, Minute{117}});
    EXPECT_TRUE(r.ok()) << r.error().message;
  }
}

// ---- admission queue -------------------------------------------------------

TEST(Resilience, OverflowShedsNewestFromHeaviestConnection) {
  net::ServerLimits limits;
  limits.max_queue_depth = 2;
  Served served{0, limits};
  const auto heavy = served.core.OnAccept();
  const auto light = served.core.OnAccept();

  // The heavy connection fills the queue in one burst.
  std::string burst = Framed(EncodeRequest(InvokeRequest{FunctionId{0}, 10}));
  burst += Framed(EncodeRequest(InvokeRequest{FunctionId{0}, 20}));
  ASSERT_TRUE(served.core.OnBytes(heavy, burst));
  EXPECT_EQ(served.core.queue_depth(), 2u);

  // The light connection's request overflows the queue; the victim is
  // the heavy connection's newest entry, not the light newcomer.
  ASSERT_TRUE(served.core.OnBytes(
      light, Framed(EncodeRequest(InvokeRequest{FunctionId{0}, 15}))));
  EXPECT_EQ(served.core.queue_depth(), 2u);
  EXPECT_EQ(served.core.stats().requests_shed_overflow, 1u);

  // The heavy connection got the shed reply (with retry advice).
  {
    const auto replies = DrainReplies(served.core, heavy);
    ASSERT_EQ(replies.size(), 1u);
    auto shed = DecodeReply(replies.front());
    ASSERT_TRUE(shed.ok());
    ASSERT_FALSE(shed.value().ok);
    EXPECT_EQ(shed.value().error.code, ErrorCode::kResourceExhausted);
    EXPECT_EQ(shed.value().retry_after, served.core.limits().shed_retry_after);
  }

  served.core.PumpQueue();
  // The light connection's request survived and executed: minute 10
  // (heavy's oldest) then 15 (light) both applied.
  const auto light_replies = DrainReplies(served.core, light);
  ASSERT_EQ(light_replies.size(), 1u);
  EXPECT_TRUE(DecodeReply(light_replies.front()).value().ok);
  EXPECT_EQ(served.platform.stats().invocations, 2u);
}

TEST(Resilience, InjectedQueueOverflowShedsWithRetryAdvice) {
  faults::FaultProfile profile;
  profile.queue_overflow_fraction = 1.0;
  faults::FaultInjector injector{5, profile};
  Served served{0, net::ServerLimits{}, &injector};
  Client client = served.Connect();
  auto r = client.Invoke(FunctionId{0}, Minute{1});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kResourceExhausted);
  EXPECT_EQ(client.last_retry_after(), served.core.limits().shed_retry_after);
  EXPECT_EQ(served.core.stats().requests_shed_overflow, 1u);
  EXPECT_FALSE(client.connection_dead());
  EXPECT_EQ(injector.injected(faults::FaultSite::kQueueOverflow), 1u);
}

TEST(Resilience, AbusiveConnectionIsCondemnedAfterRepeatedSheds) {
  faults::FaultProfile profile;
  profile.queue_overflow_fraction = 1.0;
  faults::FaultInjector injector{5, profile};
  net::ServerLimits limits;
  limits.max_conn_sheds = 2;
  Served served{0, limits, &injector};
  Client client = served.Connect();

  // Sheds 1 and 2 are tolerated; shed 3 crosses max_conn_sheds and
  // condemns the connection (the reply still flushes first).
  for (int i = 0; i < 3; ++i) {
    auto r = client.Invoke(FunctionId{0}, Minute{1});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::kResourceExhausted) << "shed " << i;
  }
  EXPECT_EQ(served.core.stats().connections_condemned_abusive, 1u);

  // The condemned connection is gone: the next call dies in transport.
  auto dead = client.Invoke(FunctionId{0}, Minute{1});
  ASSERT_FALSE(dead.ok());
  EXPECT_TRUE(client.connection_dead());
}

// ---- idempotency window ----------------------------------------------------

TEST(Resilience, NetStallRetryIsServedFromIdempotencyWindow) {
  // The stall fault loses the reply AFTER the server applied the
  // request — the exact scenario the idempotency window exists for.
  faults::FaultProfile stall;
  stall.net_stall_fraction = 1.0;
  faults::FaultInjector injector{7, stall};
  Served served{0};
  net::LoopbackServer faulty{served.core, &injector};

  auto channel = faulty.Connect();
  ASSERT_TRUE(channel.ok());
  Client victim{std::move(channel).value()};
  const RequestHeader op{42, kNoDeadline};
  auto lost = victim.Invoke(FunctionId{0}, Minute{9}, op);
  ASSERT_FALSE(lost.ok());
  EXPECT_TRUE(victim.connection_dead());
  EXPECT_EQ(injector.injected(faults::FaultSite::kNetStall), 1u);
  // The request WAS applied even though the client never heard back.
  EXPECT_EQ(served.platform.stats().invocations, 1u);

  // Reconnect (fault-free) and retry with the SAME request id: the
  // cached reply is replayed; the platform does not re-apply.
  Client retry = served.Connect();
  auto replayed = retry.Invoke(FunctionId{0}, Minute{9}, op);
  ASSERT_TRUE(replayed.ok()) << replayed.error().message;
  EXPECT_EQ(served.platform.stats().invocations, 1u);
  EXPECT_EQ(served.handler.duplicates_served(), 1u);
}

TEST(Resilience, IdempotencyWindowEvictsFifoAtTheBound) {
  PlatformServer::Options options;
  options.idempotency_window = 2;
  Served served{0, net::ServerLimits{}, nullptr, options};
  Client client = served.Connect();

  for (std::uint64_t rid = 1; rid <= 3; ++rid) {
    ASSERT_TRUE(
        client.Invoke(FunctionId{0}, Minute{5}, RequestHeader{rid}).ok());
  }
  EXPECT_EQ(served.platform.stats().invocations, 3u);
  EXPECT_EQ(served.handler.idempotency_entries(), 2u);

  // rid 2 is still in the window: replayed, not re-applied — and it
  // takes the core's duplicate fast path past admission.
  ASSERT_TRUE(client.Invoke(FunctionId{0}, Minute{5}, RequestHeader{2}).ok());
  EXPECT_EQ(served.platform.stats().invocations, 3u);
  EXPECT_EQ(served.handler.duplicates_served(), 1u);
  EXPECT_GE(served.core.stats().duplicate_fast_paths, 1u);

  // rid 1 was evicted (FIFO): a retry re-applies. This is the
  // documented eviction bound — the window must exceed the number of
  // concurrently retried operations.
  ASSERT_TRUE(client.Invoke(FunctionId{0}, Minute{5}, RequestHeader{1}).ok());
  EXPECT_EQ(served.platform.stats().invocations, 4u);
}

// ---- exactly-once over at-least-once (the satellite acceptance test) -------

TEST(Resilience, RetryingClientIsExactlyOnceUnderConnectionFaultsTenSeeds) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    faults::FaultProfile profile;
    profile.net_reset_fraction = 0.03;
    profile.net_short_write_fraction = 0.15;
    profile.net_stall_fraction = 0.03;
    faults::FaultInjector injector{seed, profile};

    Served faulted{seed, net::ServerLimits{}, &injector};
    platform::Platform direct{faulted.workload.model,
                              TestConfig(Served::Gen(seed).horizon_minutes)};

    RetryPolicy policy;
    policy.max_attempts = 64;
    policy.initial_backoff = 0;
    RetryingClient client{[&faulted] { return faulted.loopback.Connect(); },
                          policy};

    const auto index = faulted.workload.trace.BuildMinuteIndex(
        faulted.workload.trace.horizon());
    std::uint64_t ops = 0;
    for (Minute t = 0; t < faulted.workload.trace.horizon().end; ++t) {
      for (const auto& [fn, count] : index.at(t)) {
        const auto want = direct.Invoke(fn, t);
        const auto got = client.Invoke(fn, t);
        ASSERT_TRUE(got.ok())
            << "seed " << seed << " t " << t << ": " << got.error().message;
        ASSERT_EQ(got.value().cold, want.cold) << "seed " << seed;
        ASSERT_EQ(got.value().unit.value(), want.unit.value())
            << "seed " << seed;
        ++ops;
      }
    }

    // Exactly-once: despite resets, stalls, and reconnects, the served
    // platform applied each operation exactly once — its stats are
    // bit-identical to the fault-free direct drive, and its state
    // byte-identical.
    const auto stats = client.Stats();
    ASSERT_TRUE(stats.ok()) << stats.error().message;
    EXPECT_EQ(stats.value().stats, direct.stats()) << "seed " << seed;
    EXPECT_EQ(stats.value().stats.invocations, ops) << "seed " << seed;
    const auto snapshot = client.Snapshot();
    ASSERT_TRUE(snapshot.ok());
    EXPECT_EQ(snapshot.value().state, direct.SaveState()) << "seed " << seed;

    // The run must actually have exercised the fault machinery.
    EXPECT_GT(client.retry_stats().attempts, ops) << "seed " << seed;
    EXPECT_GT(client.retry_stats().reconnects, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace defuse::server
