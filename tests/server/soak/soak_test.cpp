// Deterministic chaos soak for the serving stack (the ISSUE-6 gate).
//
// Ten seeds of bursty generated traffic are driven through the full
// loopback serving stack — RetryingClient, admission queue, idempotency
// window, deadline enforcement — while the fault injector fires every
// serving-path site at once: connection resets (FaultSite::kNetReset),
// short reads/writes, accept failures, lost replies after the request
// applied (net_stall / FaultSite::kNetStall), spurious admission
// overflow (queue_overflow / FaultSite::kQueueOverflow), and server
// clock skew that tightens deadlines (deadline_skew /
// FaultSite::kDeadlineSkew).
//
// The soak asserts the resilience contract end to end:
//   * exactly-once — despite retries over at-least-once delivery, the
//     served platform's stats are bit-identical and its state
//     byte-identical to a fault-free Platform fed only the acked ops;
//   * no reply after deadline — every acked op's deadline is still
//     ahead of the server clock that produced the reply;
//   * clean failure — the only error a well-behaved client ever sees is
//     kDeadlineExceeded, and the retry budget is never exhausted;
//   * determinism — a whole soak is a pure function of its seed;
//   * crash recovery — a daemon killed mid-soak (no drain, no final
//     checkpoint) recovers byte-identically from its journal and
//     finishes the soak as if never interrupted.
//
// When DEFUSE_SOAK_JSON names a path, the ten-seed soak writes its
// aggregate shed/retry/dedup counters there (tools/tier1_soak.sh turns
// that into BENCH_soak.json).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>

#include "faults/injector.hpp"
#include "net/loopback.hpp"
#include "net/server_core.hpp"
#include "platform/durability/durable_state.hpp"
#include "platform/platform.hpp"
#include "server/client.hpp"
#include "server/platform_server.hpp"
#include "trace/generator.hpp"

namespace defuse::server {
namespace {

platform::PlatformConfig SoakConfig(MinuteDelta horizon) {
  platform::PlatformConfig cfg;
  cfg.horizon = horizon;
  cfg.remine_interval = kMinutesPerDay;
  return cfg;
}

trace::GeneratorConfig Gen(std::uint64_t seed) {
  auto gen = trace::GeneratorConfig::Tiny();
  gen.seed = seed;
  return gen;
}

/// Every serving-path fault site at once. Fractions are calibrated so a
/// Tiny workload (thousands of ops) hits each site many times per seed
/// while the retry budget (64 attempts, sheds excluded from the power
/// analysis) keeps the chance of spurious give-up negligible.
faults::FaultProfile SoakProfile() {
  faults::FaultProfile profile;
  profile.net_accept_failure_fraction = 0.05;
  profile.net_short_read_fraction = 0.1;
  profile.net_short_write_fraction = 0.1;
  profile.net_reset_fraction = 0.02;
  profile.net_stall_fraction = 0.02;
  profile.queue_overflow_fraction = 0.05;
  profile.deadline_skew_fraction = 0.1;
  return profile;
}

RetryPolicy SoakPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 64;
  policy.initial_backoff = 0;
  return policy;
}

/// Deadline mix: most ops carry none, every third a generous deadline
/// (past the maximum injected skew of 16 minutes — may never expire),
/// every seventh a tight one (2 minutes of headroom — expires whenever
/// skew fires with a draw above it). Deterministic in the op ordinal.
Minute DeadlineFor(std::uint64_t ordinal, Minute t) {
  if (ordinal % 7 == 0) return t + 2;
  if (ordinal % 3 == 0) return t + 100;
  return kNoDeadline;
}

/// One seed's outcome, compared across runs for determinism.
struct SoakTally {
  std::uint64_t ops = 0;        ///< logical operations issued
  std::uint64_t acked = 0;      ///< ops the client saw succeed
  std::uint64_t expired = 0;    ///< ops rejected kDeadlineExceeded
  std::uint64_t attempts = 0;   ///< tries including retries
  std::uint64_t reconnects = 0;
  std::uint64_t sheds = 0;      ///< shed replies observed and retried
  std::uint64_t dedup = 0;      ///< replies served from the window
  std::uint64_t core_sheds = 0;
  std::uint64_t core_expired = 0;  ///< admission + handler rejections
  platform::PlatformStats stats;
  std::string final_state;

  friend bool operator==(const SoakTally&, const SoakTally&) = default;

  SoakTally& operator+=(const SoakTally& other) {
    ops += other.ops;
    acked += other.acked;
    expired += other.expired;
    attempts += other.attempts;
    reconnects += other.reconnects;
    sheds += other.sheds;
    dedup += other.dedup;
    core_sheds += other.core_sheds;
    core_expired += other.core_expired;
    return *this;
  }
};

/// The full serving stack over one platform, loopback-connected.
struct Stack {
  platform::Platform platform;
  PlatformServer handler;
  net::ServerCore core;
  net::LoopbackServer loopback;

  Stack(const trace::WorkloadModel& model, MinuteDelta horizon,
        faults::FaultInjector* injector, PlatformServer::Options options)
      : platform(model, SoakConfig(horizon)),
        handler(platform, options),
        core(handler, net::ServerLimits{}, injector),
        loopback(core, injector) {
    handler.set_core(&core);
  }
};

/// One chaotic soak; deterministic in `seed`. The reference platform is
/// fed exactly the acked ops, so exactly-once shows up as bit-identical
/// stats and byte-identical state.
SoakTally RunSoak(std::uint64_t seed) {
  const auto gen = Gen(seed);
  const trace::SyntheticWorkload workload = trace::GenerateWorkload(gen);
  faults::FaultInjector injector{seed, SoakProfile()};
  Stack stack{workload.model, gen.horizon_minutes, &injector, {}};
  platform::Platform ref{workload.model, SoakConfig(gen.horizon_minutes)};

  RetryingClient client{[&stack] { return stack.loopback.Connect(); },
                        SoakPolicy()};

  SoakTally tally;
  const auto index =
      workload.trace.BuildMinuteIndex(workload.trace.horizon());
  for (Minute t = 0; t < workload.trace.horizon().end; ++t) {
    for (const auto& [fn, count] : index.at(t)) {
      (void)count;
      ++tally.ops;
      const Minute deadline = DeadlineFor(tally.ops, t);
      const auto got = client.Invoke(fn, t, deadline);
      if (got.ok()) {
        // No reply after deadline: the server clock that produced this
        // reply must not have passed the op's deadline.
        if (deadline != kNoDeadline) {
          EXPECT_GE(deadline, stack.handler.ClockMinute())
              << "seed " << seed << " t " << t;
        }
        const auto want = ref.Invoke(fn, t);
        EXPECT_EQ(got.value().cold, want.cold) << "seed " << seed;
        EXPECT_EQ(got.value().unit.value(), want.unit.value())
            << "seed " << seed;
        ++tally.acked;
      } else {
        // The only legitimate terminal error: a deadline expired before
        // the op was admitted or dispatched — and then the op must not
        // have executed (the exactly-once comparison below catches any
        // violation, because ref never applies it).
        EXPECT_EQ(got.error().code, ErrorCode::kDeadlineExceeded)
            << "seed " << seed << " t " << t << ": " << got.error().message;
        ++tally.expired;
      }
    }
  }

  const auto stats = client.Stats();
  EXPECT_TRUE(stats.ok()) << stats.error().message;
  if (stats.ok()) tally.stats = stats.value().stats;
  EXPECT_EQ(tally.stats, ref.stats()) << "seed " << seed;
  EXPECT_EQ(tally.stats.invocations, tally.acked) << "seed " << seed;

  const auto snapshot = client.Snapshot();
  EXPECT_TRUE(snapshot.ok());
  if (snapshot.ok()) tally.final_state = snapshot.value().state;
  EXPECT_EQ(tally.final_state, ref.SaveState()) << "seed " << seed;

  EXPECT_EQ(client.retry_stats().gave_up, 0u) << "seed " << seed;
  tally.attempts = client.retry_stats().attempts;
  tally.reconnects = client.retry_stats().reconnects;
  tally.sheds = client.retry_stats().sheds_observed;
  tally.dedup = stack.handler.duplicates_served();
  tally.core_sheds = stack.core.stats().requests_shed_overflow;
  tally.core_expired = stack.core.stats().requests_expired +
                       stack.handler.deadline_rejections();
  return tally;
}

void WriteSoakJson(const char* path, const SoakTally& total,
                   std::uint64_t seeds) {
  std::ofstream out{path};
  out << "{\n"
      << "  \"seeds\": " << seeds << ",\n"
      << "  \"ops\": " << total.ops << ",\n"
      << "  \"acked\": " << total.acked << ",\n"
      << "  \"expired\": " << total.expired << ",\n"
      << "  \"attempts\": " << total.attempts << ",\n"
      << "  \"reconnects\": " << total.reconnects << ",\n"
      << "  \"sheds_retried\": " << total.sheds << ",\n"
      << "  \"duplicates_served\": " << total.dedup << ",\n"
      << "  \"core_sheds\": " << total.core_sheds << ",\n"
      << "  \"core_expired\": " << total.core_expired << "\n"
      << "}\n";
}

// ---- the gate --------------------------------------------------------------

TEST(Soak, ChaosSoakHoldsInvariantsForSeedsZeroThroughNine) {
  SoakTally total;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    total += RunSoak(seed);
  }

  // The soak must actually have exercised every resilience mechanism:
  // retries beyond first attempts, reconnects after transport deaths,
  // sheds retried with advice, duplicates collapsed by the idempotency
  // window, and deadline rejections from skewed admission.
  EXPECT_GT(total.acked, 0u);
  EXPECT_GT(total.attempts, total.ops);
  EXPECT_GT(total.reconnects, 0u);
  EXPECT_GT(total.sheds, 0u);
  EXPECT_GT(total.core_sheds, 0u);
  EXPECT_GT(total.dedup, 0u);
  EXPECT_GT(total.expired, 0u);
  EXPECT_GT(total.core_expired, 0u);

  if (const char* path = std::getenv("DEFUSE_SOAK_JSON")) {
    WriteSoakJson(path, total, 10);
  }
}

TEST(Soak, SoakIsBitIdenticalForTheSameSeed) {
  const SoakTally first = RunSoak(0);
  const SoakTally second = RunSoak(0);
  EXPECT_EQ(first, second);
}

TEST(Soak, CrashMidSoakRecoversAndFinishesByteIdentical) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "defuse_soak_crash_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const std::uint64_t seed = 4;
  const auto gen = Gen(seed);
  const trace::SyntheticWorkload workload = trace::GenerateWorkload(gen);
  const auto index =
      workload.trace.BuildMinuteIndex(workload.trace.horizon());
  const Minute half = workload.trace.horizon().end / 2;
  // Network faults only: the journal itself stays reliable, so recovery
  // is exact. Deadline-free ops keep the first half fully acked — the
  // crash lands between logical operations, never inside one.
  faults::FaultInjector injector{seed, SoakProfile()};

  platform::Platform ref{workload.model, SoakConfig(gen.horizon_minutes)};
  std::string ref_at_crash;

  {
    platform::Platform p{workload.model, SoakConfig(gen.horizon_minutes)};
    platform::durability::DurableState durable{(dir / "state").string()};
    ASSERT_TRUE(durable.Open().ok());
    ASSERT_TRUE(durable.Recover(p).ok());
    PlatformServer::Options options;
    options.durable = &durable;
    PlatformServer handler{p, options};
    net::ServerCore core{handler, net::ServerLimits{}, &injector};
    net::LoopbackServer loopback{core, &injector};
    handler.set_core(&core);
    RetryingClient client{[&loopback] { return loopback.Connect(); },
                          SoakPolicy()};

    for (Minute t = 0; t < half; ++t) {
      for (const auto& [fn, count] : index.at(t)) {
        (void)count;
        const auto got = client.Invoke(fn, t);
        ASSERT_TRUE(got.ok()) << "t " << t << ": " << got.error().message;
        (void)ref.Invoke(fn, t);
      }
    }
    EXPECT_EQ(handler.journal_failures(), 0u);
    ref_at_crash = ref.SaveState();
    EXPECT_EQ(p.SaveState(), ref_at_crash);
    // Crash here: no Drain(), no final checkpoint. The write-ahead
    // journal alone must carry the first half of the soak.
  }

  platform::Platform recovered{workload.model,
                               SoakConfig(gen.horizon_minutes)};
  platform::durability::DurableState durable{(dir / "state").string()};
  ASSERT_TRUE(durable.Open().ok());
  const auto report = durable.Recover(recovered);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_EQ(recovered.SaveState(), ref_at_crash);

  {
    PlatformServer::Options options;
    options.durable = &durable;
    PlatformServer handler{recovered, options};
    net::ServerCore core{handler, net::ServerLimits{}, &injector};
    net::LoopbackServer loopback{core, &injector};
    handler.set_core(&core);
    RetryingClient client{[&loopback] { return loopback.Connect(); },
                          SoakPolicy()};

    for (Minute t = half; t < workload.trace.horizon().end; ++t) {
      for (const auto& [fn, count] : index.at(t)) {
        (void)count;
        const auto got = client.Invoke(fn, t);
        ASSERT_TRUE(got.ok()) << "t " << t << ": " << got.error().message;
        (void)ref.Invoke(fn, t);
      }
    }

    // The recovered daemon finished the soak byte-identically to a
    // platform that was never interrupted.
    const auto snapshot = client.Snapshot();
    ASSERT_TRUE(snapshot.ok()) << snapshot.error().message;
    EXPECT_EQ(snapshot.value().state, ref.SaveState());
    const auto stats = client.Stats();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().stats, ref.stats());
  }

  fs::remove_all(dir);
}

}  // namespace
}  // namespace defuse::server
