// Async off-path re-mining: the background mine must change WHEN mining
// cost is paid, never WHAT is mined.
//
// The determinism argument (platform.hpp): arrivals are monotonic, the
// mine window ends at the boundary, and the history snapshot is taken
// at submit time — so every invocation the background thread cannot see
// is at a minute >= window.end and excluded from a serial mine of the
// same window too. Mined dependency sets are therefore bit-identical to
// a serial twin; only the minute at which the swap lands (and hence
// which invocations still ran on the old sets) differs.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "graph/serialization.hpp"
#include "net/loopback.hpp"
#include "net/server_core.hpp"
#include "platform/platform.hpp"
#include "server/client.hpp"
#include "server/platform_server.hpp"

namespace defuse::platform {
namespace {

struct Fixture {
  trace::WorkloadModel model;
  FunctionId slow, fast, bursty;
  Fixture() {
    const UserId u = model.AddUser("u");
    const AppId a = model.AddApp(u, "app");
    slow = model.AddFunction(a, "slow60");
    fast = model.AddFunction(a, "fast10");
    bursty = model.AddFunction(a, "bursty");
  }
};

PlatformConfig Config(bool async) {
  PlatformConfig cfg;
  cfg.horizon = 10 * kMinutesPerDay;
  cfg.remine_interval = kMinutesPerDay;
  cfg.async_remine = async;
  return cfg;
}

/// Same deterministic workload as the chaos suite: a strict periodic, a
/// fast periodic, and a bursty function that co-fires with the fast one
/// (so mining has a real set to find).
void DriveMinute(Platform& p, const Fixture& fx, Minute t, Minute& bursty_next,
                 Rng& rng) {
  if (t % 60 == 0) (void)p.Invoke(fx.slow, t);
  if (t % 10 == 3) (void)p.Invoke(fx.fast, t);
  if (t == bursty_next) {
    (void)p.Invoke(fx.bursty, t);
    (void)p.Invoke(fx.fast, t);
    bursty_next += 20 + static_cast<Minute>(rng.NextBelow(80));
  }
}

std::string SetsCsv(const Platform& p, const trace::WorkloadModel& model) {
  std::vector<graph::DependencySet> sets;
  for (std::size_t unit = 0; unit < p.units().num_units(); ++unit) {
    graph::DependencySet set;
    set.id = static_cast<std::uint32_t>(unit);
    const auto fns =
        p.units().functions_of(UnitId{static_cast<std::uint32_t>(unit)});
    set.functions.assign(fns.begin(), fns.end());
    sets.push_back(std::move(set));
  }
  return graph::WriteDependencySetsCsvChecksummed(sets, model);
}

TEST(AsyncRemine, MinedSetsAreBitIdenticalToSerialTwin) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Fixture fx;
    Platform serial{fx.model, Config(false)};
    Platform async{fx.model, Config(true)};

    Rng rng_serial{seed}, rng_async{seed};
    Minute next_serial = 17, next_async = 17;
    for (Minute t = 0; t < 6 * kMinutesPerDay; ++t) {
      DriveMinute(serial, fx, t, next_serial, rng_serial);
      DriveMinute(async, fx, t, next_async, rng_async);
      // Barrier right after each minute: the swap lands at the same
      // boundary as the serial twin's synchronous mine, so the two
      // platforms cross every re-mine in lockstep.
      if (async.remine_in_flight()) async.FinishPendingRemine();
    }

    EXPECT_EQ(SetsCsv(async, fx.model), SetsCsv(serial, fx.model))
        << "seed " << seed;
    EXPECT_EQ(async.stats().remines, serial.stats().remines)
        << "seed " << seed;
    EXPECT_GT(async.stats().remines, 0u) << "seed " << seed;

    const auto& books = async.async_remine_books();
    EXPECT_EQ(books.started, async.stats().remines) << "seed " << seed;
    EXPECT_EQ(books.swapped, books.started) << "seed " << seed;
    EXPECT_EQ(books.kept_stale, 0u) << "seed " << seed;
  }
}

TEST(AsyncRemine, BarrieredRunsAreRepeatable) {
  auto run = [] {
    Fixture fx;
    Platform p{fx.model, Config(true)};
    Rng rng{7};
    Minute bursty_next = 17;
    for (Minute t = 0; t < 4 * kMinutesPerDay; ++t) {
      DriveMinute(p, fx, t, bursty_next, rng);
      if (p.remine_in_flight()) p.FinishPendingRemine();
    }
    return std::pair{SetsCsv(p, fx.model), p.SaveState()};
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

TEST(AsyncRemine, InvocationsFlowWhileAMineIsInFlight) {
  Fixture fx;
  Platform p{fx.model, Config(true)};
  Rng rng{3};
  Minute bursty_next = 17;
  bool saw_in_flight = false;
  std::uint64_t invokes_during_flight = 0;
  for (Minute t = 0; t < 5 * kMinutesPerDay; ++t) {
    DriveMinute(p, fx, t, bursty_next, rng);
    if (p.remine_in_flight()) {
      saw_in_flight = true;
      // The platform accepts traffic while the miner works: this very
      // call runs on the serving thread with the future outstanding.
      const auto outcome = p.Invoke(fx.fast, t);
      (void)outcome;
      ++invokes_during_flight;
    }
  }
  p.FinishPendingRemine();
  EXPECT_TRUE(saw_in_flight);
  EXPECT_GT(invokes_during_flight, 0u);
  const auto& books = p.async_remine_books();
  EXPECT_EQ(books.swapped + books.kept_stale, books.started);
  EXPECT_EQ(p.stats().remines, books.swapped);
  EXPECT_GT(p.stats().invocations, 0u);
}

TEST(AsyncRemine, LoadStateDiscardsAnInFlightMine) {
  Fixture fx;
  Platform p{fx.model, Config(true)};
  Rng rng{11};
  Minute bursty_next = 17;
  for (Minute t = 0; t < kMinutesPerDay; ++t) {
    DriveMinute(p, fx, t, bursty_next, rng);
  }
  p.FinishPendingRemine();
  const std::string saved = p.SaveState();

  // Keep driving and force a mine so one is (briefly) in flight, then
  // restore the earlier snapshot while the future is outstanding.
  for (Minute t = kMinutesPerDay; t < kMinutesPerDay + 200; ++t) {
    DriveMinute(p, fx, t, bursty_next, rng);
  }
  p.RemineNow(kMinutesPerDay + 200);
  ASSERT_TRUE(p.LoadState(saved));

  // The discarded mine must not have clobbered the restored state.
  EXPECT_EQ(p.SaveState(), saved);
}

TEST(AsyncRemine, ServerReportsAsyncModesOverTheWire) {
  Fixture fx;
  Platform p{fx.model, Config(true)};
  server::PlatformServer handler{p};
  net::ServerCore core{handler};
  net::LoopbackServer loopback{core};
  auto channel = loopback.Connect();
  ASSERT_TRUE(channel.ok());
  server::Client client{std::move(channel).value()};

  Rng rng{5};
  Minute bursty_next = 17;
  for (Minute t = 0; t < 120; ++t) {
    DriveMinute(p, fx, t, bursty_next, rng);
  }

  auto first = client.RemineNow(Minute{200});
  ASSERT_TRUE(first.ok()) << first.error().message;
  EXPECT_EQ(first.value().mode, server::RemineMode::kStartedAsync);

  // A second force while the first may still be in flight: either the
  // server observes it (kAlreadyInFlight) or the mine already landed
  // and a fresh one starts. Both are legal; completion is not.
  auto second = client.RemineNow(Minute{201});
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second.value().mode, server::RemineMode::kCompleted);

  p.FinishPendingRemine();
  EXPECT_GT(p.stats().remines, 0u);
}

}  // namespace
}  // namespace defuse::platform
