// Wire-protocol codec: every request and reply round-trips bit-exactly,
// and every malformed payload — truncated, padded, or carrying unknown
// enum values — is rejected with kParseError instead of decoding into
// something plausible. The framing layer already guarantees payload
// integrity (CRC32C), so these tables are about *semantic* validation:
// a checksum-valid payload from a newer/buggy peer must still fail
// closed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/result.hpp"
#include "server/protocol.hpp"

namespace defuse::server {
namespace {

// ---- request round-trips ---------------------------------------------------

TEST(Protocol, InvokeRequestRoundTrips) {
  const std::string wire =
      EncodeRequest(InvokeRequest{FunctionId{41}, Minute{123456}});
  auto decoded = DecodeRequest(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  ASSERT_EQ(decoded.value().type, RequestType::kInvoke);
  ASSERT_TRUE(decoded.value().invoke.has_value());
  EXPECT_EQ(decoded.value().invoke->function.value(), 41u);
  EXPECT_EQ(decoded.value().invoke->now, 123456);
}

TEST(Protocol, AdvanceToRequestRoundTrips) {
  const std::string wire = EncodeRequest(AdvanceToRequest{Minute{9999}});
  auto decoded = DecodeRequest(wire);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().type, RequestType::kAdvanceTo);
  ASSERT_TRUE(decoded.value().advance_to.has_value());
  EXPECT_EQ(decoded.value().advance_to->now, 9999);
}

TEST(Protocol, StatsRequestRoundTrips) {
  auto decoded = DecodeRequest(EncodeRequest(StatsRequest{}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type, RequestType::kStats);
}

TEST(Protocol, RemineNowRequestRoundTrips) {
  auto decoded = DecodeRequest(EncodeRequest(RemineNowRequest{Minute{777}}));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().type, RequestType::kRemineNow);
  ASSERT_TRUE(decoded.value().remine_now.has_value());
  EXPECT_EQ(decoded.value().remine_now->now, 777);
}

TEST(Protocol, SnapshotRequestRoundTrips) {
  auto decoded = DecodeRequest(EncodeRequest(SnapshotRequest{}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type, RequestType::kSnapshot);
}

TEST(Protocol, HelloRequestRoundTrips) {
  auto decoded = DecodeRequest(EncodeRequest(HelloRequest{2}));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().type, RequestType::kHello);
  ASSERT_TRUE(decoded.value().hello.has_value());
  EXPECT_EQ(decoded.value().hello->version, 2u);
}

TEST(Protocol, HealthRequestRoundTrips) {
  auto decoded = DecodeRequest(EncodeRequest(HealthRequest{}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type, RequestType::kHealth);
}

TEST(Protocol, RequestHeaderRoundTripsOnEveryType) {
  const RequestHeader header{0x0123456789abcdefULL, Minute{424242}};
  const std::vector<std::string> wires = {
      EncodeRequest(InvokeRequest{FunctionId{7}, Minute{8}}, header),
      EncodeRequest(AdvanceToRequest{Minute{9}}, header),
      EncodeRequest(StatsRequest{}, header),
      EncodeRequest(RemineNowRequest{Minute{10}}, header),
      EncodeRequest(SnapshotRequest{}, header),
      EncodeRequest(HelloRequest{}, header),
      EncodeRequest(HealthRequest{}, header),
  };
  for (const auto& wire : wires) {
    auto decoded = DecodeRequest(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    EXPECT_EQ(decoded.value().header.request_id, header.request_id);
    EXPECT_EQ(decoded.value().header.deadline, header.deadline);
    // The cheap peek agrees with the full decode.
    auto peeked = PeekRequestHeader(wire);
    ASSERT_TRUE(peeked.ok());
    EXPECT_EQ(peeked.value().type, decoded.value().type);
    EXPECT_EQ(peeked.value().header.request_id, header.request_id);
    EXPECT_EQ(peeked.value().header.deadline, header.deadline);
  }
}

TEST(Protocol, DefaultHeaderIsNoIdNoDeadline) {
  auto decoded = DecodeRequest(EncodeRequest(StatsRequest{}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().header.request_id, kNoRequestId);
  EXPECT_EQ(decoded.value().header.deadline, kNoDeadline);
}

// ---- reply round-trips -----------------------------------------------------

/// Strips the status byte via DecodeReplyStatus, asserting ok status.
std::string_view OkBody(std::string_view reply) {
  auto body = DecodeReplyStatus(reply);
  EXPECT_TRUE(body.ok()) << body.error().message;
  return body.ok() ? body.value() : std::string_view{};
}

TEST(Protocol, InvokeReplyRoundTrips) {
  for (bool cold : {false, true}) {
    const std::string wire =
        EncodeOkReply(InvokeReply{cold, UnitId{0xdeadbeef}});
    auto decoded = DecodeInvokeReplyBody(OkBody(wire));
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    EXPECT_EQ(decoded.value().cold, cold);
    EXPECT_EQ(decoded.value().unit.value(), 0xdeadbeefu);
  }
}

TEST(Protocol, AdvanceToReplyRoundTrips) {
  auto decoded = DecodeAdvanceToReplyBody(OkBody(EncodeOkAdvanceToReply()));
  EXPECT_TRUE(decoded.ok());
}

TEST(Protocol, StatsReplyRoundTripsEveryFieldDistinctly) {
  // Distinct values per field so a swapped pair cannot round-trip.
  StatsReply reply;
  reply.stats.invocations = 1'000'001;
  reply.stats.cold_invocations = 2002;
  reply.stats.remines = 33;
  reply.stats.degraded_remines = 4;
  reply.stats.stale_graph_minutes = -5;  // signed field: sign survives
  reply.stats.prewarm_spawn_failures = 66;
  reply.stats.prewarm_spawns_abandoned = 7;
  reply.stats.catchup_remines_skipped = 888;

  auto decoded = DecodeStatsReplyBody(OkBody(EncodeOkReply(reply)));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().stats, reply.stats);
}

TEST(Protocol, RemineReplyRoundTripsEveryMode) {
  for (auto mode : {RemineMode::kCompleted, RemineMode::kStartedAsync,
                    RemineMode::kAlreadyInFlight}) {
    auto decoded = DecodeRemineReplyBody(OkBody(EncodeOkReply(
        RemineReply{mode})));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().mode, mode);
  }
}

TEST(Protocol, SnapshotReplyCarriesArbitraryBinaryState) {
  std::string state = "line1\nline2\n";
  state.push_back('\0');
  state += "binary\xff tail";
  auto decoded =
      DecodeSnapshotReplyBody(OkBody(EncodeOkReply(SnapshotReply{state})));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().state, state);
}

TEST(Protocol, ErrorReplyRoundTripsEveryCode) {
  for (std::size_t i = 0; i < kNumErrorCodes; ++i) {
    const Error error{static_cast<ErrorCode>(i),
                      "message for code " + std::to_string(i)};
    auto decoded = DecodeReplyStatus(EncodeErrorReply(error));
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error().code, error.code);
    EXPECT_EQ(decoded.error().message, error.message);
  }
}

TEST(Protocol, HelloReplyRoundTrips) {
  auto decoded = DecodeHelloReplyBody(OkBody(EncodeOkReply(HelloReply{2})));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().version, 2u);
}

TEST(Protocol, HealthReplyRoundTripsEveryFieldDistinctly) {
  HealthReply reply;
  reply.ready = true;
  reply.draining = false;
  reply.remine_in_flight = true;
  reply.degraded_graph = false;
  reply.queue_depth = 17;
  reply.idempotency_entries = 1024;
  reply.stale_graph_minutes = -3;  // signed: sign survives
  reply.clock_minute = 86400;
  auto decoded = DecodeHealthReplyBody(OkBody(EncodeOkReply(reply)));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value(), reply);
}

TEST(Protocol, HealthReplyFlagsMustBeBoolean) {
  const std::string wire = EncodeOkReply(HealthReply{});
  // Each of the four leading flag bytes, set to 2, must fail closed.
  for (std::size_t flag = 0; flag < 4; ++flag) {
    std::string body{OkBody(wire)};
    body[flag] = '\x02';
    auto decoded = DecodeHealthReplyBody(body);
    ASSERT_FALSE(decoded.ok()) << "flag " << flag;
    EXPECT_EQ(decoded.error().code, ErrorCode::kParseError);
  }
}

TEST(Protocol, RetryAdviceRoundTripsOnErrorReplies) {
  const Error shed{ErrorCode::kResourceExhausted, "queue full"};
  auto decoded = DecodeReply(EncodeErrorReply(shed, MinuteDelta{5}));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  ASSERT_FALSE(decoded.value().ok);
  EXPECT_EQ(decoded.value().error.code, shed.code);
  EXPECT_EQ(decoded.value().error.message, shed.message);
  EXPECT_EQ(decoded.value().retry_after, 5);
  // The one-argument overload means "no advice".
  auto none = DecodeReply(EncodeErrorReply(shed));
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value().retry_after, kNoRetryAfter);
}

TEST(Protocol, AbsurdRetryAdviceIsRejected) {
  auto decoded = DecodeReply(EncodeErrorReply(
      Error{ErrorCode::kResourceExhausted, "x"}, MinuteDelta{-17}));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kParseError);
}

// ---- rejection tables ------------------------------------------------------

/// Every request type's wire, with a non-default header so every v2
/// header byte is present in the fuzz tables below.
std::vector<std::string> AllRequestWires() {
  const RequestHeader header{77, Minute{12345}};
  return {
      EncodeRequest(InvokeRequest{FunctionId{7}, Minute{8}}, header),
      EncodeRequest(AdvanceToRequest{Minute{9}}, header),
      EncodeRequest(StatsRequest{}, header),
      EncodeRequest(RemineNowRequest{Minute{10}}, header),
      EncodeRequest(SnapshotRequest{}, header),
      EncodeRequest(HelloRequest{}, header),
      EncodeRequest(HealthRequest{}, header),
  };
}

TEST(Protocol, EveryRequestTruncationIsRejected) {
  for (const auto& wire : AllRequestWires()) {
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      auto decoded = DecodeRequest(wire.substr(0, cut));
      ASSERT_FALSE(decoded.ok()) << "cut " << cut;
      EXPECT_EQ(decoded.error().code, ErrorCode::kParseError);
    }
  }
}

TEST(Protocol, TrailingGarbageOnRequestsIsRejected) {
  for (const auto& wire : AllRequestWires()) {
    auto decoded = DecodeRequest(wire + "x");
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error().code, ErrorCode::kParseError);
  }
}

TEST(Protocol, EveryRequestSingleBitFlipIsContained) {
  // Flip every bit of every request wire. The decode must stay
  // contained: either a clean rejection or a successful decode of a
  // well-formed request (a flipped deadline/function bit can still be
  // valid) — never a crash or out-of-bounds read (ASan guards the
  // suite). Flips that land in the magic or type byte must reject.
  for (const auto& wire : AllRequestWires()) {
    for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
      std::string flipped = wire;
      flipped[bit / 8] = static_cast<char>(
          static_cast<unsigned char>(flipped[bit / 8]) ^ (1u << (bit % 8)));
      auto decoded = DecodeRequest(flipped);
      if (bit / 8 == 0) {
        // No single-bit flip of the magic byte is another valid version
        // byte, so byte-0 flips always reject. (Type-byte flips may
        // legally land on another type with the same body size —
        // Stats <-> Health — which is fine: the CRC layer owns bit-flip
        // *detection*; this table only proves containment.)
        ASSERT_FALSE(decoded.ok()) << "bit " << bit;
      }
      if (!decoded.ok()) {
        EXPECT_TRUE(decoded.error().code == ErrorCode::kParseError ||
                    decoded.error().code == ErrorCode::kInvalidArgument)
            << "bit " << bit << ": " << decoded.error().message;
      }
    }
  }
}

TEST(Protocol, V1RequestAgainstV2DecoderNamesBothVersions) {
  // A v1 request began directly with the type byte (1..5). Each must be
  // recognized as cross-version traffic, not mis-decoded or reported as
  // mere garbage.
  for (std::uint8_t v1_type = 1; v1_type <= 5; ++v1_type) {
    std::string wire;
    wire.push_back(static_cast<char>(v1_type));
    wire.append(12, '\0');  // a plausible v1 body
    auto decoded = DecodeRequest(wire);
    ASSERT_FALSE(decoded.ok()) << "v1 type " << int{v1_type};
    EXPECT_EQ(decoded.error().code, ErrorCode::kInvalidArgument);
    EXPECT_NE(decoded.error().message.find("v1"), std::string::npos);
    EXPECT_NE(decoded.error().message.find("v2"), std::string::npos);
  }
}

TEST(Protocol, ReservedRequestIdIsRejected) {
  const std::string wire = EncodeRequest(
      StatsRequest{}, RequestHeader{kReservedRequestId, kNoDeadline});
  auto decoded = DecodeRequest(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kInvalidArgument);
  auto peeked = PeekRequestHeader(wire);
  EXPECT_FALSE(peeked.ok());
}

TEST(Protocol, AbsurdDeadlineIsRejected) {
  for (Minute deadline : {Minute{-2}, Minute{-1'000'000}}) {
    const std::string wire =
        EncodeRequest(StatsRequest{}, RequestHeader{0, deadline});
    auto decoded = DecodeRequest(wire);
    ASSERT_FALSE(decoded.ok()) << "deadline " << deadline;
    EXPECT_EQ(decoded.error().code, ErrorCode::kInvalidArgument);
    auto peeked = PeekRequestHeader(wire);
    EXPECT_FALSE(peeked.ok());
  }
}

// The caller always knows which body decoder to use (from the request
// it sent), so each truncation only needs to fail under the MATCHING
// decoder — a truncated Invoke body decoding under, say, the Remine
// decoder is irrelevant, not a violation.
TEST(Protocol, EveryReplyTruncationIsRejected) {
  struct Case {
    std::string wire;
    bool (*decodes)(std::string_view body);
  };
  const std::vector<Case> cases = {
      {EncodeOkReply(InvokeReply{true, UnitId{3}}),
       [](std::string_view b) { return DecodeInvokeReplyBody(b).ok(); }},
      {EncodeOkReply(StatsReply{}),
       [](std::string_view b) { return DecodeStatsReplyBody(b).ok(); }},
      {EncodeOkReply(RemineReply{RemineMode::kCompleted}),
       [](std::string_view b) { return DecodeRemineReplyBody(b).ok(); }},
      {EncodeOkReply(SnapshotReply{"state"}),
       [](std::string_view b) { return DecodeSnapshotReplyBody(b).ok(); }},
      {EncodeOkReply(HelloReply{2}),
       [](std::string_view b) { return DecodeHelloReplyBody(b).ok(); }},
      {EncodeOkReply(HealthReply{true, false, true, false, 9, 8, 7, 6}),
       [](std::string_view b) { return DecodeHealthReplyBody(b).ok(); }},
  };
  for (const auto& c : cases) {
    for (std::size_t cut = 0; cut < c.wire.size(); ++cut) {
      // DecodeReplyStatus returns a view into its input, so the prefix
      // must outlive the decode call below.
      const std::string prefix = c.wire.substr(0, cut);
      auto status = DecodeReplyStatus(prefix);
      if (!status.ok()) continue;  // truncated to nothing
      EXPECT_FALSE(c.decodes(status.value())) << "cut " << cut;
    }
  }
  // Error replies: every strict prefix must fail DecodeReplyStatus
  // itself (the message string is length-prefixed).
  const std::string err =
      EncodeErrorReply(Error{ErrorCode::kInvalidArgument, "bad"});
  for (std::size_t cut = 1; cut < err.size(); ++cut) {
    auto status = DecodeReplyStatus(err.substr(0, cut));
    EXPECT_FALSE(status.ok()) << "cut " << cut;
    if (!status.ok()) {
      EXPECT_EQ(status.error().code, ErrorCode::kParseError) << "cut " << cut;
    }
  }
}

TEST(Protocol, UnknownRequestTypeIsRejected) {
  std::string wire;
  wire.push_back('\x2a');  // type 42 does not exist
  auto decoded = DecodeRequest(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kParseError);
}

TEST(Protocol, UnknownErrorStatusIsRejected) {
  std::string wire;
  wire.push_back(static_cast<char>(kNumErrorCodes + 1));
  auto decoded = DecodeReplyStatus(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kParseError);
}

TEST(Protocol, UnknownRemineModeIsRejected) {
  std::string body;
  body.push_back('\x07');
  auto decoded = DecodeRemineReplyBody(body);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kParseError);
}

TEST(Protocol, InvokeReplyColdFlagMustBeBoolean) {
  std::string body;
  body.push_back('\x02');  // cold flag 2
  body.append(4, '\0');    // unit id 0
  auto decoded = DecodeInvokeReplyBody(body);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kParseError);
}

TEST(Protocol, SnapshotLengthPrefixCannotOverrunBody) {
  // Claim a 1GB string but provide 4 bytes: the decoder must fail on
  // bounds, not read past the buffer (ASan guards the suite).
  std::string wire;
  wire.push_back('\0');  // ok status
  const std::uint32_t claimed = 1u << 30;
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<char>((claimed >> (8 * i)) & 0xff));
  }
  wire += "body";
  auto status = DecodeReplyStatus(wire);
  ASSERT_TRUE(status.ok());
  auto decoded = DecodeSnapshotReplyBody(status.value());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kParseError);
}

// ---- encode-side bounds (regressions for the length-math audit) ------------

TEST(Protocol, OversizedSnapshotStateBecomesResourceExhaustedError) {
  // A state blob one byte past the reply-frame bound must encode as a
  // visible error reply, not an over-limit ok frame the client rejects
  // (or — before PutString's clamp — a frame whose u32 length prefix
  // disagrees with its body for multi-GiB blobs).
  SnapshotReply reply;
  reply.state.assign(kMaxSnapshotStateBytes + 1, 'x');
  const std::string wire = EncodeOkReply(reply);
  EXPECT_LE(wire.size(), kMaxReplyPayloadBytes);
  auto status = DecodeReplyStatus(wire);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kResourceExhausted);
}

TEST(Protocol, SnapshotStateAtTheBoundStillEncodesOk) {
  SnapshotReply reply;
  reply.state.assign(kMaxSnapshotStateBytes, 'x');
  const std::string wire = EncodeOkReply(reply);
  EXPECT_EQ(wire.size(), kMaxReplyPayloadBytes);
  auto decoded = DecodeSnapshotReplyBody(OkBody(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().state.size(), kMaxSnapshotStateBytes);
}

TEST(Protocol, OverlongErrorMessageIsTruncatedButStillDecodes) {
  // Error messages quote request content, so an attacker-sized message
  // must not produce an unbounded (or desynchronized) reply frame.
  Error error{ErrorCode::kParseError,
              std::string(kMaxErrorMessageBytes + 500, 'm')};
  const std::string wire = EncodeErrorReply(error);
  EXPECT_LE(wire.size(), 1 + 4 + kMaxErrorMessageBytes + 32);
  auto status = DecodeReplyStatus(wire);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kParseError);
  EXPECT_NE(status.error().message.find("[truncated]"), std::string::npos);
  EXPECT_EQ(status.error().message.compare(0, 8, "mmmmmmmm"), 0);
}

}  // namespace
}  // namespace defuse::server
