// Wire-protocol codec: every request and reply round-trips bit-exactly,
// and every malformed payload — truncated, padded, or carrying unknown
// enum values — is rejected with kParseError instead of decoding into
// something plausible. The framing layer already guarantees payload
// integrity (CRC32C), so these tables are about *semantic* validation:
// a checksum-valid payload from a newer/buggy peer must still fail
// closed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/result.hpp"
#include "server/protocol.hpp"

namespace defuse::server {
namespace {

// ---- request round-trips ---------------------------------------------------

TEST(Protocol, InvokeRequestRoundTrips) {
  const std::string wire =
      EncodeRequest(InvokeRequest{FunctionId{41}, Minute{123456}});
  auto decoded = DecodeRequest(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  ASSERT_EQ(decoded.value().type, RequestType::kInvoke);
  ASSERT_TRUE(decoded.value().invoke.has_value());
  EXPECT_EQ(decoded.value().invoke->function.value(), 41u);
  EXPECT_EQ(decoded.value().invoke->now, 123456);
}

TEST(Protocol, AdvanceToRequestRoundTrips) {
  const std::string wire = EncodeRequest(AdvanceToRequest{Minute{9999}});
  auto decoded = DecodeRequest(wire);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().type, RequestType::kAdvanceTo);
  ASSERT_TRUE(decoded.value().advance_to.has_value());
  EXPECT_EQ(decoded.value().advance_to->now, 9999);
}

TEST(Protocol, StatsRequestRoundTrips) {
  auto decoded = DecodeRequest(EncodeRequest(StatsRequest{}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type, RequestType::kStats);
}

TEST(Protocol, RemineNowRequestRoundTrips) {
  auto decoded = DecodeRequest(EncodeRequest(RemineNowRequest{Minute{777}}));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().type, RequestType::kRemineNow);
  ASSERT_TRUE(decoded.value().remine_now.has_value());
  EXPECT_EQ(decoded.value().remine_now->now, 777);
}

TEST(Protocol, SnapshotRequestRoundTrips) {
  auto decoded = DecodeRequest(EncodeRequest(SnapshotRequest{}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type, RequestType::kSnapshot);
}

// ---- reply round-trips -----------------------------------------------------

/// Strips the status byte via DecodeReplyStatus, asserting ok status.
std::string_view OkBody(std::string_view reply) {
  auto body = DecodeReplyStatus(reply);
  EXPECT_TRUE(body.ok()) << body.error().message;
  return body.ok() ? body.value() : std::string_view{};
}

TEST(Protocol, InvokeReplyRoundTrips) {
  for (bool cold : {false, true}) {
    const std::string wire =
        EncodeOkReply(InvokeReply{cold, UnitId{0xdeadbeef}});
    auto decoded = DecodeInvokeReplyBody(OkBody(wire));
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    EXPECT_EQ(decoded.value().cold, cold);
    EXPECT_EQ(decoded.value().unit.value(), 0xdeadbeefu);
  }
}

TEST(Protocol, AdvanceToReplyRoundTrips) {
  auto decoded = DecodeAdvanceToReplyBody(OkBody(EncodeOkAdvanceToReply()));
  EXPECT_TRUE(decoded.ok());
}

TEST(Protocol, StatsReplyRoundTripsEveryFieldDistinctly) {
  // Distinct values per field so a swapped pair cannot round-trip.
  StatsReply reply;
  reply.stats.invocations = 1'000'001;
  reply.stats.cold_invocations = 2002;
  reply.stats.remines = 33;
  reply.stats.degraded_remines = 4;
  reply.stats.stale_graph_minutes = -5;  // signed field: sign survives
  reply.stats.prewarm_spawn_failures = 66;
  reply.stats.prewarm_spawns_abandoned = 7;
  reply.stats.catchup_remines_skipped = 888;

  auto decoded = DecodeStatsReplyBody(OkBody(EncodeOkReply(reply)));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().stats, reply.stats);
}

TEST(Protocol, RemineReplyRoundTripsEveryMode) {
  for (auto mode : {RemineMode::kCompleted, RemineMode::kStartedAsync,
                    RemineMode::kAlreadyInFlight}) {
    auto decoded = DecodeRemineReplyBody(OkBody(EncodeOkReply(
        RemineReply{mode})));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().mode, mode);
  }
}

TEST(Protocol, SnapshotReplyCarriesArbitraryBinaryState) {
  std::string state = "line1\nline2\n";
  state.push_back('\0');
  state += "binary\xff tail";
  auto decoded =
      DecodeSnapshotReplyBody(OkBody(EncodeOkReply(SnapshotReply{state})));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().state, state);
}

TEST(Protocol, ErrorReplyRoundTripsEveryCode) {
  for (std::size_t i = 0; i < kNumErrorCodes; ++i) {
    const Error error{static_cast<ErrorCode>(i),
                      "message for code " + std::to_string(i)};
    auto decoded = DecodeReplyStatus(EncodeErrorReply(error));
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error().code, error.code);
    EXPECT_EQ(decoded.error().message, error.message);
  }
}

// ---- rejection tables ------------------------------------------------------

TEST(Protocol, EveryRequestTruncationIsRejected) {
  const std::vector<std::string> wires = {
      EncodeRequest(InvokeRequest{FunctionId{7}, Minute{8}}),
      EncodeRequest(AdvanceToRequest{Minute{9}}),
      EncodeRequest(StatsRequest{}),
      EncodeRequest(RemineNowRequest{Minute{10}}),
      EncodeRequest(SnapshotRequest{}),
  };
  for (const auto& wire : wires) {
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      auto decoded = DecodeRequest(wire.substr(0, cut));
      ASSERT_FALSE(decoded.ok()) << "cut " << cut;
      EXPECT_EQ(decoded.error().code, ErrorCode::kParseError);
    }
  }
}

TEST(Protocol, TrailingGarbageOnRequestsIsRejected) {
  const std::vector<std::string> wires = {
      EncodeRequest(InvokeRequest{FunctionId{7}, Minute{8}}),
      EncodeRequest(StatsRequest{}),
  };
  for (const auto& wire : wires) {
    auto decoded = DecodeRequest(wire + "x");
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error().code, ErrorCode::kParseError);
  }
}

// The caller always knows which body decoder to use (from the request
// it sent), so each truncation only needs to fail under the MATCHING
// decoder — a truncated Invoke body decoding under, say, the Remine
// decoder is irrelevant, not a violation.
TEST(Protocol, EveryReplyTruncationIsRejected) {
  struct Case {
    std::string wire;
    bool (*decodes)(std::string_view body);
  };
  const std::vector<Case> cases = {
      {EncodeOkReply(InvokeReply{true, UnitId{3}}),
       [](std::string_view b) { return DecodeInvokeReplyBody(b).ok(); }},
      {EncodeOkReply(StatsReply{}),
       [](std::string_view b) { return DecodeStatsReplyBody(b).ok(); }},
      {EncodeOkReply(RemineReply{RemineMode::kCompleted}),
       [](std::string_view b) { return DecodeRemineReplyBody(b).ok(); }},
      {EncodeOkReply(SnapshotReply{"state"}),
       [](std::string_view b) { return DecodeSnapshotReplyBody(b).ok(); }},
  };
  for (const auto& c : cases) {
    for (std::size_t cut = 0; cut < c.wire.size(); ++cut) {
      // DecodeReplyStatus returns a view into its input, so the prefix
      // must outlive the decode call below.
      const std::string prefix = c.wire.substr(0, cut);
      auto status = DecodeReplyStatus(prefix);
      if (!status.ok()) continue;  // truncated to nothing
      EXPECT_FALSE(c.decodes(status.value())) << "cut " << cut;
    }
  }
  // Error replies: every strict prefix must fail DecodeReplyStatus
  // itself (the message string is length-prefixed).
  const std::string err =
      EncodeErrorReply(Error{ErrorCode::kInvalidArgument, "bad"});
  for (std::size_t cut = 1; cut < err.size(); ++cut) {
    auto status = DecodeReplyStatus(err.substr(0, cut));
    EXPECT_FALSE(status.ok()) << "cut " << cut;
    if (!status.ok()) {
      EXPECT_EQ(status.error().code, ErrorCode::kParseError) << "cut " << cut;
    }
  }
}

TEST(Protocol, UnknownRequestTypeIsRejected) {
  std::string wire;
  wire.push_back('\x2a');  // type 42 does not exist
  auto decoded = DecodeRequest(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kParseError);
}

TEST(Protocol, UnknownErrorStatusIsRejected) {
  std::string wire;
  wire.push_back(static_cast<char>(kNumErrorCodes + 1));
  auto decoded = DecodeReplyStatus(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kParseError);
}

TEST(Protocol, UnknownRemineModeIsRejected) {
  std::string body;
  body.push_back('\x07');
  auto decoded = DecodeRemineReplyBody(body);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kParseError);
}

TEST(Protocol, InvokeReplyColdFlagMustBeBoolean) {
  std::string body;
  body.push_back('\x02');  // cold flag 2
  body.append(4, '\0');    // unit id 0
  auto decoded = DecodeInvokeReplyBody(body);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kParseError);
}

TEST(Protocol, SnapshotLengthPrefixCannotOverrunBody) {
  // Claim a 1GB string but provide 4 bytes: the decoder must fail on
  // bounds, not read past the buffer (ASan guards the suite).
  std::string wire;
  wire.push_back('\0');  // ok status
  const std::uint32_t claimed = 1u << 30;
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<char>((claimed >> (8 * i)) & 0xff));
  }
  wire += "body";
  auto status = DecodeReplyStatus(wire);
  ASSERT_TRUE(status.ok());
  auto decoded = DecodeSnapshotReplyBody(status.value());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kParseError);
}

// ---- encode-side bounds (regressions for the length-math audit) ------------

TEST(Protocol, OversizedSnapshotStateBecomesResourceExhaustedError) {
  // A state blob one byte past the reply-frame bound must encode as a
  // visible error reply, not an over-limit ok frame the client rejects
  // (or — before PutString's clamp — a frame whose u32 length prefix
  // disagrees with its body for multi-GiB blobs).
  SnapshotReply reply;
  reply.state.assign(kMaxSnapshotStateBytes + 1, 'x');
  const std::string wire = EncodeOkReply(reply);
  EXPECT_LE(wire.size(), kMaxReplyPayloadBytes);
  auto status = DecodeReplyStatus(wire);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kResourceExhausted);
}

TEST(Protocol, SnapshotStateAtTheBoundStillEncodesOk) {
  SnapshotReply reply;
  reply.state.assign(kMaxSnapshotStateBytes, 'x');
  const std::string wire = EncodeOkReply(reply);
  EXPECT_EQ(wire.size(), kMaxReplyPayloadBytes);
  auto decoded = DecodeSnapshotReplyBody(OkBody(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().state.size(), kMaxSnapshotStateBytes);
}

TEST(Protocol, OverlongErrorMessageIsTruncatedButStillDecodes) {
  // Error messages quote request content, so an attacker-sized message
  // must not produce an unbounded (or desynchronized) reply frame.
  Error error{ErrorCode::kParseError,
              std::string(kMaxErrorMessageBytes + 500, 'm')};
  const std::string wire = EncodeErrorReply(error);
  EXPECT_LE(wire.size(), 1 + 4 + kMaxErrorMessageBytes + 32);
  auto status = DecodeReplyStatus(wire);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kParseError);
  EXPECT_NE(status.error().message.find("[truncated]"), std::string::npos);
  EXPECT_EQ(status.error().message.compare(0, 8, "mmmmmmmm"), 0);
}

}  // namespace
}  // namespace defuse::server
