// Serving-layer chaos: the full loopback stack under deterministic
// network fault injection (accept failures, short reads/writes, and
// connection resets), driven like a real client that reconnects and
// retries.
//
// The loopback transport draws every fault from per-site SplitMix64
// streams, so a whole chaotic run — including which requests die, where
// frames split, and how often the client reconnects — is a pure
// function of (seed, profile). That turns "the daemon survives flaky
// networks" into a replayable invariant check instead of a stress test.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "faults/injector.hpp"
#include "net/loopback.hpp"
#include "net/server_core.hpp"
#include "platform/platform.hpp"
#include "server/client.hpp"
#include "server/platform_server.hpp"

namespace defuse::server {
namespace {

struct Fixture {
  trace::WorkloadModel model;
  FunctionId slow, fast, bursty;
  Fixture() {
    const UserId u = model.AddUser("u");
    const AppId a = model.AddApp(u, "app");
    slow = model.AddFunction(a, "slow60");
    fast = model.AddFunction(a, "fast10");
    bursty = model.AddFunction(a, "bursty");
  }
};

platform::PlatformConfig Config() {
  platform::PlatformConfig cfg;
  cfg.horizon = 10 * kMinutesPerDay;
  cfg.remine_interval = kMinutesPerDay;
  return cfg;
}

faults::FaultProfile NetChaosProfile() {
  faults::FaultProfile profile;
  profile.net_accept_failure_fraction = 0.1;
  profile.net_short_read_fraction = 0.2;
  profile.net_short_write_fraction = 0.2;
  profile.net_reset_fraction = 0.02;
  return profile;
}

/// The functions firing at minute `t` (same shape as the platform chaos
/// suite: a strict periodic, a fast periodic, a co-firing burst).
std::vector<FunctionId> FiringAt(const Fixture& fx, Minute t,
                                 Minute& bursty_next, Rng& rng) {
  std::vector<FunctionId> fns;
  if (t % 60 == 0) fns.push_back(fx.slow);
  if (t % 10 == 3) fns.push_back(fx.fast);
  if (t == bursty_next) {
    fns.push_back(fx.bursty);
    fns.push_back(fx.fast);
    bursty_next += 20 + static_cast<Minute>(rng.NextBelow(80));
  }
  return fns;
}

/// Tallies of one chaotic drive, compared across runs for determinism.
struct DriveTally {
  std::uint64_t acked = 0;          ///< invokes the client saw succeed
  std::uint64_t tries = 0;          ///< invoke attempts incl. retries
  std::uint64_t reconnects = 0;     ///< successful reconnections
  std::uint64_t accept_failures = 0;
  platform::PlatformStats final_stats;

  friend bool operator==(const DriveTally&, const DriveTally&) = default;
};

/// A client that survives the chaos: reconnects after transport death
/// and retries the failed request. Retrying an invoke whose ACK was
/// lost re-applies it at the same minute — legal (the clock contract is
/// monotonic, not strict), and exactly what an at-least-once production
/// client would do.
class RetryingClient {
 public:
  RetryingClient(net::LoopbackServer& server, DriveTally& tally)
      : server_(server), tally_(tally) {}

  [[nodiscard]] Result<InvokeReply> Invoke(FunctionId fn, Minute now) {
    return Retry([&](Client& c) { return c.Invoke(fn, now); });
  }

  [[nodiscard]] Result<StatsReply> Stats() {
    return Retry([&](Client& c) { return c.Stats(); });
  }

 private:
  template <typename Call>
  auto Retry(Call&& call) -> decltype(call(std::declval<Client&>())) {
    for (int attempt = 0; attempt < 200; ++attempt) {
      if (!client_ || client_->connection_dead()) {
        if (!Reconnect()) continue;
      }
      ++tally_.tries;
      auto result = call(*client_);
      if (result.ok()) return result;
      if (!client_->connection_dead()) {
        return result;  // remote (application) error: do not retry
      }
    }
    return Error{ErrorCode::kDeadlineExceeded,
                 "retry budget exhausted under fault injection"};
  }

  bool Reconnect() {
    auto channel = server_.Connect();
    if (!channel.ok()) {
      ++tally_.accept_failures;
      return false;
    }
    client_.emplace(std::move(channel).value());
    ++tally_.reconnects;
    return true;
  }

  net::LoopbackServer& server_;
  DriveTally& tally_;
  std::optional<Client> client_;
};

/// One full chaotic drive; deterministic in (seed, profile).
DriveTally Drive(std::uint64_t seed, const faults::FaultProfile& profile,
                 Minute days) {
  Fixture fx;
  faults::FaultInjector injector{seed, profile};
  platform::Platform p{fx.model, Config()};
  PlatformServer handler{p};
  net::ServerCore core{handler};
  net::LoopbackServer loopback{core, &injector};

  DriveTally tally;
  RetryingClient client{loopback, tally};
  Rng rng{seed};
  Minute bursty_next = 17;
  for (Minute t = 0; t < days * kMinutesPerDay; ++t) {
    for (const FunctionId fn : FiringAt(fx, t, bursty_next, rng)) {
      auto outcome = client.Invoke(fn, t);
      EXPECT_TRUE(outcome.ok()) << "seed " << seed << " t " << t << ": "
                                << outcome.error().message;
      if (outcome.ok()) ++tally.acked;
    }
  }

  // The control plane must still answer once the weather clears: a
  // fault-free Stats round trip through the retry loop.
  auto stats = client.Stats();
  EXPECT_TRUE(stats.ok()) << "seed " << seed;
  if (stats.ok()) tally.final_stats = stats.value().stats;
  return tally;
}

TEST(ServingChaos, InvariantsHoldForSeedsZeroThroughNine) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const DriveTally tally = Drive(seed, NetChaosProfile(), 4);
    const platform::PlatformStats& stats = tally.final_stats;

    // At-least-once accounting: every ACKed invoke was applied, lost
    // ACKs re-applied on retry, and nothing was applied more often than
    // the client tried.
    EXPECT_LE(tally.acked, stats.invocations) << "seed " << seed;
    EXPECT_LE(stats.invocations, tally.tries) << "seed " << seed;
    EXPECT_LE(stats.cold_invocations, stats.invocations) << "seed " << seed;
    EXPECT_GT(stats.invocations, 0u) << "seed " << seed;
    EXPECT_GT(stats.remines, 0u) << "seed " << seed;

    // The chaos actually bit: this profile injects at every site.
    EXPECT_GT(tally.reconnects, 1u) << "seed " << seed;
  }
}

TEST(ServingChaos, RunsAreBitIdenticalForTheSameSeed) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const DriveTally first = Drive(seed, NetChaosProfile(), 3);
    const DriveTally second = Drive(seed, NetChaosProfile(), 3);
    EXPECT_EQ(first, second) << "seed " << seed;
  }
}

TEST(ServingChaos, DisabledInjectorIsBitIdenticalToFaultFree) {
  // All-zero profile: the injector is present but enabled() is false.
  const DriveTally injected = Drive(/*seed=*/1, faults::FaultProfile{}, 3);
  EXPECT_EQ(injected.reconnects, 1u);  // the initial connect only
  EXPECT_EQ(injected.accept_failures, 0u);
  EXPECT_EQ(injected.acked, injected.tries - 1);  // -1: the Stats call

  // Reference: the same workload applied directly to a Platform.
  Fixture fx;
  platform::Platform direct{fx.model, Config()};
  Rng rng{1};
  Minute bursty_next = 17;
  for (Minute t = 0; t < 3 * kMinutesPerDay; ++t) {
    for (const FunctionId fn : FiringAt(fx, t, bursty_next, rng)) {
      (void)direct.Invoke(fn, t);
    }
  }
  EXPECT_EQ(injected.final_stats, direct.stats());
}

}  // namespace
}  // namespace defuse::server
