#include "graph/union_find.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"

namespace defuse::graph {
namespace {

TEST(UnionFind, StartsAsSingletons) {
  UnionFind uf{5};
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_EQ(uf.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SizeOf(i), 1u);
  }
}

TEST(UnionFind, UnionMergesSets) {
  UnionFind uf{4};
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.SizeOf(0), 2u);
}

TEST(UnionFind, UnionIsIdempotent) {
  UnionFind uf{3};
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_EQ(uf.num_sets(), 2u);
}

TEST(UnionFind, ConnectivityIsTransitive) {
  UnionFind uf{5};
  uf.Union(0, 1);
  uf.Union(1, 2);
  uf.Union(3, 4);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_TRUE(uf.Connected(2, 0));
  EXPECT_FALSE(uf.Connected(0, 3));
  EXPECT_EQ(uf.SizeOf(2), 3u);
  EXPECT_EQ(uf.SizeOf(4), 2u);
}

TEST(UnionFind, ChainedUnionsFormOneSet) {
  constexpr std::uint32_t kN = 1000;
  UnionFind uf{kN};
  for (std::uint32_t i = 1; i < kN; ++i) uf.Union(i - 1, i);
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_EQ(uf.SizeOf(0), kN);
  EXPECT_TRUE(uf.Connected(0, kN - 1));
}

TEST(UnionFind, ComponentsListsEverySetOnce) {
  UnionFind uf{6};
  uf.Union(0, 2);
  uf.Union(2, 4);
  uf.Union(1, 5);
  const auto components = uf.Components();
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0], (std::vector<std::uint32_t>{0, 2, 4}));
  EXPECT_EQ(components[1], (std::vector<std::uint32_t>{1, 5}));
  EXPECT_EQ(components[2], (std::vector<std::uint32_t>{3}));
}

TEST(UnionFind, ComponentsOfSingletonsAreOrdered) {
  UnionFind uf{4};
  const auto components = uf.Components();
  ASSERT_EQ(components.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(components[i], std::vector<std::uint32_t>{i});
  }
}

TEST(UnionFind, RandomUnionsInvariants) {
  // Property: after any union sequence, (1) the sum of component sizes is
  // n, (2) Connected agrees with component membership, (3) num_sets
  // matches the component count.
  Rng rng{4242};
  constexpr std::uint32_t kN = 200;
  UnionFind uf{kN};
  for (int i = 0; i < 300; ++i) {
    uf.Union(static_cast<std::uint32_t>(rng.NextBelow(kN)),
             static_cast<std::uint32_t>(rng.NextBelow(kN)));
  }
  auto components = uf.Components();
  EXPECT_EQ(components.size(), uf.num_sets());
  std::size_t total = 0;
  for (const auto& c : components) {
    total += c.size();
    for (const auto m : c) {
      EXPECT_TRUE(uf.Connected(c.front(), m));
      EXPECT_EQ(uf.SizeOf(m), c.size());
    }
  }
  EXPECT_EQ(total, kN);
}

TEST(UnionFind, FindIsStableAcrossCalls) {
  UnionFind uf{10};
  uf.Union(3, 7);
  const auto root = uf.Find(3);
  EXPECT_EQ(uf.Find(7), root);
  EXPECT_EQ(uf.Find(3), root);
  EXPECT_EQ(uf.Find(7), root);
}

}  // namespace
}  // namespace defuse::graph
