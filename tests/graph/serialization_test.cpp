#include "graph/serialization.hpp"

#include <gtest/gtest.h>

namespace defuse::graph {
namespace {

struct Fixture {
  trace::WorkloadModel model;
  Fixture() {
    const UserId u = model.AddUser("u");
    const AppId a = model.AddApp(u, "a");
    for (const char* name : {"checkout", "pay", "ship", "audit", "extra"}) {
      model.AddFunction(a, name);
    }
  }
};

TEST(DependencySetsCsv, RoundTrips) {
  Fixture fx;
  std::vector<DependencySet> sets(3);
  sets[0] = {.id = 0, .functions = {FunctionId{0}, FunctionId{2}}};
  sets[1] = {.id = 1, .functions = {FunctionId{1}}};
  sets[2] = {.id = 2, .functions = {FunctionId{3}, FunctionId{4}}};
  const std::string csv = WriteDependencySetsCsv(sets, fx.model);
  const auto loaded = ReadDependencySetsCsv(csv, fx.model);
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToString();
  ASSERT_EQ(loaded.value().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(loaded.value()[i].functions, sets[i].functions);
    EXPECT_EQ(loaded.value()[i].id, sets[i].id);
  }
}

TEST(DependencySetsCsv, UncoveredFunctionsBecomeSingletons) {
  Fixture fx;
  const std::string csv =
      "set_id,function\n"
      "7,checkout\n"
      "7,pay\n";
  const auto loaded = ReadDependencySetsCsv(csv, fx.model);
  ASSERT_TRUE(loaded.ok());
  // One explicit set + three singleton completions.
  ASSERT_EQ(loaded.value().size(), 4u);
  EXPECT_EQ(loaded.value()[0].functions,
            (std::vector<FunctionId>{FunctionId{0}, FunctionId{1}}));
  std::size_t covered = 0;
  for (const auto& s : loaded.value()) covered += s.functions.size();
  EXPECT_EQ(covered, fx.model.num_functions());
}

TEST(DependencySetsCsv, RejectsUnknownFunction) {
  Fixture fx;
  const auto loaded =
      ReadDependencySetsCsv("set_id,function\n0,nonexistent\n", fx.model);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kNotFound);
}

TEST(DependencySetsCsv, RejectsDuplicateMembership) {
  Fixture fx;
  const auto loaded = ReadDependencySetsCsv(
      "set_id,function\n0,pay\n1,pay\n", fx.model);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kInvalidArgument);
}

TEST(DependencySetsCsv, RejectsBadHeader) {
  Fixture fx;
  EXPECT_FALSE(ReadDependencySetsCsv("wrong\n", fx.model).ok());
}

TEST(DependencyEdgesCsv, RoundTrips) {
  Fixture fx;
  DependencyGraph graph{fx.model.num_functions()};
  graph.AddEdge(DependencyEdge{.a = FunctionId{0},
                               .b = FunctionId{1},
                               .kind = EdgeKind::kStrong,
                               .weight = 12.0});
  graph.AddEdge(DependencyEdge{.a = FunctionId{3},
                               .b = FunctionId{0},
                               .kind = EdgeKind::kWeak,
                               .weight = 2.5});
  const std::string csv = WriteDependencyEdgesCsv(graph, fx.model);
  const auto loaded = ReadDependencyEdgesCsv(csv, fx.model);
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToString();
  ASSERT_EQ(loaded.value().edges().size(), 2u);
  EXPECT_EQ(loaded.value().edges()[0], graph.edges()[0]);
  EXPECT_EQ(loaded.value().edges()[1], graph.edges()[1]);
}

TEST(DependencyEdgesCsv, RejectsUnknownKind) {
  Fixture fx;
  const auto loaded =
      ReadDependencyEdgesCsv("a,b,kind,weight\npay,ship,odd,1\n", fx.model);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kParseError);
}

TEST(DependencyEdgesCsv, RejectsUnknownFunction) {
  Fixture fx;
  const auto loaded = ReadDependencyEdgesCsv(
      "a,b,kind,weight\npay,ghost,strong,1\n", fx.model);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kNotFound);
}

TEST(DependencyCsv, MinedOutputRoundTripsThroughBothFormats) {
  // Sets from a real mined graph survive a write/read cycle and produce
  // the same connected components.
  Fixture fx;
  DependencyGraph graph{fx.model.num_functions()};
  const std::vector<FunctionId> itemset = {FunctionId{0}, FunctionId{1},
                                           FunctionId{2}};
  graph.AddStrongItemset(itemset, /*support=*/4);
  graph.AddWeakDependency(FunctionId{4}, FunctionId{2}, /*ppmi=*/1.5);

  const auto loaded_graph = ReadDependencyEdgesCsv(
      WriteDependencyEdgesCsv(graph, fx.model), fx.model);
  ASSERT_TRUE(loaded_graph.ok());
  const auto original_sets = graph.ConnectedComponents();
  const auto loaded_sets = loaded_graph.value().ConnectedComponents();
  ASSERT_EQ(original_sets.size(), loaded_sets.size());
  for (std::size_t i = 0; i < original_sets.size(); ++i) {
    EXPECT_EQ(original_sets[i].functions, loaded_sets[i].functions);
  }

  const auto reread = ReadDependencySetsCsv(
      WriteDependencySetsCsv(original_sets, fx.model), fx.model);
  ASSERT_TRUE(reread.ok());
  ASSERT_EQ(reread.value().size(), original_sets.size());
}

TEST(DependencyCsv, ChecksummedWritesRoundTrip) {
  Fixture fx;
  std::vector<DependencySet> sets(2);
  sets[0] = {.id = 0, .functions = {FunctionId{0}, FunctionId{1}}};
  sets[1] = {.id = 1,
             .functions = {FunctionId{2}, FunctionId{3}, FunctionId{4}}};
  const std::string sets_csv =
      WriteDependencySetsCsvChecksummed(sets, fx.model);
  const auto loaded_sets = ReadDependencySetsCsv(sets_csv, fx.model);
  ASSERT_TRUE(loaded_sets.ok()) << loaded_sets.error().ToString();
  EXPECT_EQ(loaded_sets.value().size(), 2u);

  DependencyGraph graph{fx.model.num_functions()};
  graph.AddEdge(DependencyEdge{.a = FunctionId{0},
                               .b = FunctionId{1},
                               .kind = EdgeKind::kStrong,
                               .weight = 3.0});
  const std::string edges_csv =
      WriteDependencyEdgesCsvChecksummed(graph, fx.model);
  const auto loaded_edges = ReadDependencyEdgesCsv(edges_csv, fx.model);
  ASSERT_TRUE(loaded_edges.ok()) << loaded_edges.error().ToString();
  EXPECT_EQ(loaded_edges.value().edges().size(), 1u);
}

TEST(DependencyCsv, CorruptedChecksummedFileIsDataLoss) {
  Fixture fx;
  std::vector<DependencySet> sets(1);
  sets[0] = {.id = 0, .functions = {FunctionId{0}}};
  std::string csv = WriteDependencySetsCsvChecksummed(sets, fx.model);
  // Mangle one payload byte after sealing: the reader must refuse the
  // whole artifact instead of parsing a silently corrupted row.
  const std::size_t pos = csv.find("checkout");
  ASSERT_NE(pos, std::string::npos);
  csv[pos + 1] = 'X';
  const auto loaded = ReadDependencySetsCsv(csv, fx.model);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kDataLoss);
}

}  // namespace
}  // namespace defuse::graph
