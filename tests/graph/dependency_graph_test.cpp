#include "graph/dependency_graph.hpp"

#include <gtest/gtest.h>

#include <initializer_list>
#include <vector>

namespace defuse::graph {
namespace {

std::vector<FunctionId> Set(std::initializer_list<std::uint32_t> ids) {
  std::vector<FunctionId> fns;
  for (const auto id : ids) fns.push_back(FunctionId{id});
  return fns;
}

TEST(DependencyGraph, StartsWithNoEdges) {
  DependencyGraph g{5};
  EXPECT_EQ(g.num_functions(), 5u);
  EXPECT_TRUE(g.edges().empty());
  EXPECT_EQ(g.num_strong_edges(), 0u);
  EXPECT_EQ(g.num_weak_edges(), 0u);
}

TEST(DependencyGraph, ItemsetBecomesAClique) {
  DependencyGraph g{5};
  g.AddStrongItemset(Set({0, 1, 2}), 9);
  EXPECT_EQ(g.num_strong_edges(), 3u);  // C(3,2)
  for (const auto& e : g.edges()) {
    EXPECT_EQ(e.kind, EdgeKind::kStrong);
    EXPECT_DOUBLE_EQ(e.weight, 9.0);
  }
}

TEST(DependencyGraph, PairItemsetIsOneEdge) {
  DependencyGraph g{5};
  g.AddStrongItemset(Set({3, 4}), 2);
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_EQ(g.edges()[0].a, FunctionId{3});
  EXPECT_EQ(g.edges()[0].b, FunctionId{4});
}

TEST(DependencyGraph, WeakDependencyKeepsDirectionAndWeight) {
  DependencyGraph g{5};
  g.AddWeakDependency(FunctionId{2}, FunctionId{0}, 3.5);
  ASSERT_EQ(g.num_weak_edges(), 1u);
  EXPECT_EQ(g.edges()[0].a, FunctionId{2});
  EXPECT_EQ(g.edges()[0].b, FunctionId{0});
  EXPECT_DOUBLE_EQ(g.edges()[0].weight, 3.5);
}

TEST(DependencyGraph, NeighborsSpanBothDirections) {
  DependencyGraph g{5};
  g.AddStrongItemset(Set({0, 1}), 2);
  g.AddWeakDependency(FunctionId{2}, FunctionId{1}, 0.0);
  EXPECT_EQ(g.Neighbors(FunctionId{1}),
            (std::vector<FunctionId>{FunctionId{0}, FunctionId{2}}));
  EXPECT_EQ(g.Neighbors(FunctionId{3}), std::vector<FunctionId>{});
}

TEST(DependencyGraph, NeighborsAreDeduplicated) {
  DependencyGraph g{5};
  g.AddStrongItemset(Set({0, 1}), 2);
  g.AddStrongItemset(Set({0, 1}), 3);  // same pair from another itemset
  EXPECT_EQ(g.Neighbors(FunctionId{0}),
            std::vector<FunctionId>{FunctionId{1}});
}

TEST(DependencyGraph, ConnectedComponentsCoverAllFunctions) {
  DependencyGraph g{6};
  g.AddStrongItemset(Set({0, 1}), 2);
  g.AddWeakDependency(FunctionId{4}, FunctionId{1}, 0.0);
  const auto sets = g.ConnectedComponents();
  ASSERT_EQ(sets.size(), 4u);  // {0,1,4}, {2}, {3}, {5}
  EXPECT_EQ(sets[0].functions,
            (std::vector<FunctionId>{FunctionId{0}, FunctionId{1},
                                     FunctionId{4}}));
  EXPECT_EQ(sets[1].functions, std::vector<FunctionId>{FunctionId{2}});
  // Set ids are dense and match positions.
  for (std::size_t i = 0; i < sets.size(); ++i) {
    EXPECT_EQ(sets[i].id, static_cast<std::uint32_t>(i));
  }
}

TEST(DependencyGraph, StrongAndWeakEdgesMergeComponents) {
  DependencyGraph g{7};
  g.AddStrongItemset(Set({0, 1, 2}), 5);
  g.AddStrongItemset(Set({3, 4}), 5);
  // A weak link joins the two strong cliques into one set.
  g.AddWeakDependency(FunctionId{2}, FunctionId{3}, 0.0);
  const auto sets = g.ConnectedComponents();
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets[0].functions.size(), 5u);
}

TEST(DependencyGraph, CanonicalizeMergesDuplicateStrongEdges) {
  DependencyGraph g{4};
  g.AddStrongItemset(Set({0, 1}), 2);
  g.AddStrongItemset(Set({0, 1}), 7);  // duplicate pair, higher support
  g.AddEdge(DependencyEdge{.a = FunctionId{1},
                           .b = FunctionId{0},
                           .kind = EdgeKind::kStrong,
                           .weight = 4.0});  // reversed orientation
  g.Canonicalize();
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_EQ(g.edges()[0].a, FunctionId{0});
  EXPECT_EQ(g.edges()[0].b, FunctionId{1});
  EXPECT_DOUBLE_EQ(g.edges()[0].weight, 7.0);
}

TEST(DependencyGraph, CanonicalizeKeepsWeakDirections) {
  DependencyGraph g{4};
  g.AddWeakDependency(FunctionId{0}, FunctionId{1}, 1.0);
  g.AddWeakDependency(FunctionId{1}, FunctionId{0}, 2.0);
  g.Canonicalize();
  // Opposite-direction weak edges are distinct relationships.
  EXPECT_EQ(g.edges().size(), 2u);
}

TEST(DependencyGraph, CanonicalizePreservesComponents) {
  DependencyGraph g{6};
  g.AddStrongItemset(Set({0, 1, 2}), 3);
  g.AddStrongItemset(Set({1, 2}), 5);
  g.AddWeakDependency(FunctionId{4}, FunctionId{2}, 0.0);
  const auto before = g.ConnectedComponents();
  g.Canonicalize();
  const auto after = g.ConnectedComponents();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].functions, after[i].functions);
  }
}

TEST(FunctionToSetIndex, InvertsTheMapping) {
  DependencyGraph g{5};
  g.AddStrongItemset(Set({1, 3}), 2);
  const auto sets = g.ConnectedComponents();
  const auto index = FunctionToSetIndex(sets, 5);
  ASSERT_EQ(index.size(), 5u);
  EXPECT_EQ(index[1], index[3]);
  EXPECT_NE(index[0], index[1]);
  for (const auto& set : sets) {
    for (const FunctionId fn : set.functions) {
      EXPECT_EQ(index[fn.value()], set.id);
    }
  }
}

TEST(DependencyGraph, ToDotRendersEdgeStyles) {
  DependencyGraph g{3};
  g.AddStrongItemset(Set({0, 1}), 2);
  g.AddWeakDependency(FunctionId{2}, FunctionId{0}, 0.0);
  const std::string dot = g.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("dir=none"), std::string::npos);   // strong
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // weak
}

TEST(DependencyGraph, ToDotUsesProvidedNames) {
  DependencyGraph g{2};
  g.AddStrongItemset(Set({0, 1}), 2);
  const std::vector<std::string> names{"checkout", "pay"};
  const std::string dot = g.ToDot(&names);
  EXPECT_NE(dot.find("checkout"), std::string::npos);
  EXPECT_NE(dot.find("pay"), std::string::npos);
}

}  // namespace
}  // namespace defuse::graph
