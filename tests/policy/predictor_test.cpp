#include "policy/predictor.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace defuse::policy {
namespace {

PredictorConfig TestConfig() {
  PredictorConfig cfg;
  cfg.hybrid.min_prewarm = 5;
  return cfg;
}

stats::Histogram PeakedHistogram(MinuteDelta value, std::uint64_t count) {
  stats::Histogram h{240, 1};
  h.AddCount(value, count);
  return h;
}

TEST(PeriodicityPredictorPolicy, DominantModeTakesPredictionBranch) {
  PeriodicityPredictorPolicy policy{graph::UnitMap::PerFunction(1),
                                    TestConfig()};
  policy.SeedHistogram(UnitId{0}, PeakedHistogram(30, 1000));
  EXPECT_TRUE(policy.IsPeriodicUnit(UnitId{0}));
  const auto d = policy.OnInvocation(UnitId{0}, 0);
  // Mode bin 30 ([30,31)): prewarm at 30 - lead(2) = 28, alive until
  // 31 + lag(2) = 33 -> keepalive 5.
  EXPECT_EQ(d.prewarm, 28);
  EXPECT_EQ(d.keepalive, 5);
}

TEST(PeriodicityPredictorPolicy, TightensResidencyVsHybrid) {
  // Same histogram under plain hybrid: prewarm 27, keepalive ~5 — but
  // for a *spread* periodic histogram the predictor's window is much
  // tighter than the percentile span.
  stats::Histogram spread{240, 1};
  spread.AddCount(30, 800);   // dominant mode
  spread.AddCount(60, 100);   // occasional double-gap
  spread.AddCount(90, 100);
  PeriodicityPredictorPolicy predictor{graph::UnitMap::PerFunction(1),
                                       TestConfig()};
  predictor.SeedHistogram(UnitId{0}, spread);
  HybridHistogramPolicy hybrid{graph::UnitMap::PerFunction(1),
                               TestConfig().hybrid};
  hybrid.SeedHistogram(UnitId{0}, spread);
  const auto p = predictor.OnInvocation(UnitId{0}, 0);
  const auto h = hybrid.OnInvocation(UnitId{0}, 0);
  EXPECT_LT(p.keepalive, h.keepalive);
}

TEST(PeriodicityPredictorPolicy, WeakModeFallsBackToHybrid) {
  // Mass spread evenly across many bins: no dominant mode.
  stats::Histogram flat{240, 1};
  for (MinuteDelta v = 0; v < 240; v += 3) flat.AddCount(v, 10);
  PeriodicityPredictorPolicy policy{graph::UnitMap::PerFunction(1),
                                    TestConfig()};
  policy.SeedHistogram(UnitId{0}, flat);
  EXPECT_FALSE(policy.IsPeriodicUnit(UnitId{0}));
  // Unpredictable flat histogram -> the hybrid fixed fallback.
  EXPECT_EQ(policy.OnInvocation(UnitId{0}, 0).keepalive, 10);
}

TEST(PeriodicityPredictorPolicy, TooFewObservationsFallsBack) {
  PeriodicityPredictorPolicy policy{graph::UnitMap::PerFunction(1),
                                    TestConfig()};
  policy.SeedHistogram(UnitId{0}, PeakedHistogram(30, 3));
  EXPECT_FALSE(policy.IsPeriodicUnit(UnitId{0}));
}

TEST(PeriodicityPredictorPolicy, SmallModeFoldsIntoResidency) {
  // Mode at 4 minutes: below min_prewarm, so no unload/reload cycle.
  PeriodicityPredictorPolicy policy{graph::UnitMap::PerFunction(1),
                                    TestConfig()};
  policy.SeedHistogram(UnitId{0}, PeakedHistogram(4, 1000));
  const auto d = policy.OnInvocation(UnitId{0}, 0);
  EXPECT_EQ(d.prewarm, 0);
  EXPECT_GE(d.keepalive, 5);  // covers the folded window
}

TEST(PeriodicityPredictorPolicy, ObservationsFlowToTheHistogram) {
  PeriodicityPredictorPolicy policy{graph::UnitMap::PerFunction(1),
                                    TestConfig()};
  for (int i = 0; i < 100; ++i) policy.ObserveIdleTime(UnitId{0}, 42);
  EXPECT_TRUE(policy.IsPeriodicUnit(UnitId{0}));
  EXPECT_EQ(policy.hybrid().histogram(UnitId{0}).total(), 100u);
}

TEST(PeriodicityPredictorPolicy, PeriodicWorkloadIsWarmAndLean) {
  // Strict period 30: both policies serve warm, but the predictor's
  // residency (memory) is lower.
  trace::InvocationTrace trace{1, TimeRange{0, 20000}};
  for (Minute m = 0; m < 20000; m += 30) trace.Add(FunctionId{0}, m);
  trace.Finalize();
  const TimeRange train{0, 10000}, eval{10000, 20000};
  stats::Histogram seed{240, 1};
  for (const auto gap : trace.IdleTimes(FunctionId{0}, train)) seed.Add(gap);

  PeriodicityPredictorPolicy predictor{graph::UnitMap::PerFunction(1),
                                       TestConfig()};
  predictor.SeedHistogram(UnitId{0}, seed);
  const auto pr = sim::Simulate(trace, eval, predictor);

  HybridHistogramPolicy hybrid{graph::UnitMap::PerFunction(1),
                               TestConfig().hybrid};
  hybrid.SeedHistogram(UnitId{0}, seed);
  const auto hr = sim::Simulate(trace, eval, hybrid);

  EXPECT_EQ(pr.unit_cold_minutes[0], 1u);  // first touch only
  EXPECT_EQ(hr.unit_cold_minutes[0], 1u);
  EXPECT_LE(pr.AverageMemoryUsage(), hr.AverageMemoryUsage());
}

}  // namespace
}  // namespace defuse::policy
