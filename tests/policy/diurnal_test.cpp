#include "policy/diurnal.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace defuse::policy {
namespace {

DiurnalConfig TestConfig() {
  DiurnalConfig cfg;
  cfg.slot_minutes = 30;
  cfg.min_observations = 30;
  return cfg;
}

/// Office-hours trace: active 09:00-11:00 daily, one invocation per
/// 5 minutes, for `days` days.
trace::InvocationTrace OfficeHoursTrace(Minute days) {
  trace::InvocationTrace t{1, TimeRange{0, days * kMinutesPerDay}};
  for (Minute day = 0; day < days; ++day) {
    for (Minute m = 9 * 60; m < 11 * 60; m += 5) {
      t.Add(FunctionId{0}, day * kMinutesPerDay + m);
    }
  }
  t.Finalize();
  return t;
}

TEST(DiurnalPolicy, LearnsTheActiveWindow) {
  DiurnalPolicy policy{graph::UnitMap::PerFunction(1), TestConfig()};
  const auto trace = OfficeHoursTrace(3);
  for (const auto& e : trace.series(FunctionId{0})) {
    policy.SeedDayProfile(UnitId{0}, e.minute);
  }
  EXPECT_TRUE(policy.IsDiurnalUnit(UnitId{0}));
  EXPECT_TRUE(policy.SlotActive(UnitId{0}, 9 * 60 + 10));
  EXPECT_TRUE(policy.SlotActive(UnitId{0}, 10 * 60 + 50));
  EXPECT_FALSE(policy.SlotActive(UnitId{0}, 3 * 60));
  EXPECT_FALSE(policy.SlotActive(UnitId{0}, 15 * 60));
}

TEST(DiurnalPolicy, TooFewObservationsDelegatesToHybrid) {
  DiurnalPolicy policy{graph::UnitMap::PerFunction(1), TestConfig()};
  for (int i = 0; i < 5; ++i) {
    policy.SeedDayProfile(UnitId{0}, 9 * 60 + i);
  }
  EXPECT_FALSE(policy.IsDiurnalUnit(UnitId{0}));
  // Hybrid with no histogram -> fixed fallback.
  EXPECT_EQ(policy.OnInvocation(UnitId{0}, 9 * 60).keepalive, 10);
}

TEST(DiurnalPolicy, SpreadActivityIsNotDiurnal) {
  DiurnalPolicy policy{graph::UnitMap::PerFunction(1), TestConfig()};
  // Uniform activity around the clock.
  for (Minute m = 0; m < kMinutesPerDay; m += 10) {
    policy.SeedDayProfile(UnitId{0}, m);
  }
  EXPECT_FALSE(policy.IsDiurnalUnit(UnitId{0}));
}

TEST(DiurnalPolicy, DecisionLingersThroughTheRunAndPrewarmsTomorrow) {
  DiurnalPolicy policy{graph::UnitMap::PerFunction(1), TestConfig()};
  const auto trace = OfficeHoursTrace(3);
  for (const auto& e : trace.series(FunctionId{0})) {
    policy.SeedDayProfile(UnitId{0}, e.minute);
  }
  // Invoked at 09:10 on some day: linger to 11:00, return ~08:55 next
  // day.
  const Minute now = 5 * kMinutesPerDay + 9 * 60 + 10;
  const auto d = policy.OnInvocation(UnitId{0}, now);
  EXPECT_EQ(d.linger, (11 * 60) - (9 * 60 + 10));
  // 09:10 -> next day's 09:00 slot start is 1430 minutes away.
  const MinuteDelta until_nine = kMinutesPerDay - 10;
  EXPECT_EQ(d.prewarm, until_nine - TestConfig().lead);
  EXPECT_EQ(d.keepalive, TestConfig().lead + TestConfig().slot_minutes);
}

TEST(DiurnalPolicy, EndToEndMorningsAreWarmAndNightsAreFree) {
  constexpr Minute kDays = 8;
  const auto trace = OfficeHoursTrace(kDays);
  DiurnalPolicy policy{graph::UnitMap::PerFunction(1), TestConfig()};
  // Seed from the first 4 days, simulate the rest.
  const TimeRange train{0, 4 * kMinutesPerDay};
  for (const auto& e : trace.SeriesInRange(FunctionId{0}, train)) {
    policy.SeedDayProfile(UnitId{0}, e.minute);
  }
  const TimeRange eval{4 * kMinutesPerDay, kDays * kMinutesPerDay};
  const auto r = sim::Simulate(trace, eval, policy);
  // First eval invocation is cold; every later morning is pre-warmed.
  EXPECT_EQ(r.unit_cold_minutes[0], 1u);
  // Residency is roughly the active window (+lead), not the whole day.
  EXPECT_LT(r.AverageMemoryUsage(), 0.15);  // ~130 of 1440 minutes

  // The hybrid histogram policy alone leaves every morning cold (the
  // overnight gap exceeds its histogram) at similar memory.
  HybridHistogramPolicy hybrid{graph::UnitMap::PerFunction(1),
                               TestConfig().hybrid};
  const auto hr = sim::Simulate(trace, eval, hybrid);
  EXPECT_GE(hr.unit_cold_minutes[0], 4u);  // one per morning
}

TEST(DiurnalPolicy, OffHoursInvocationStillServed) {
  DiurnalPolicy policy{graph::UnitMap::PerFunction(1), TestConfig()};
  const auto trace = OfficeHoursTrace(3);
  for (const auto& e : trace.series(FunctionId{0})) {
    policy.SeedDayProfile(UnitId{0}, e.minute);
  }
  // A 03:00 invocation gets a sane decision (linger through its slot,
  // prewarm before the morning window).
  const auto d = policy.OnInvocation(UnitId{0}, 3 * kMinutesPerDay + 180);
  EXPECT_GE(d.linger, 1);
  EXPECT_GT(d.prewarm, d.linger);
  EXPECT_GE(d.keepalive, 1);
}

TEST(DiurnalPolicy, OnlineProfileUpdatesViaOnInvocation) {
  DiurnalPolicy policy{graph::UnitMap::PerFunction(1), TestConfig()};
  // No seeding: feed invocations through OnInvocation only.
  for (Minute day = 0; day < 5; ++day) {
    for (Minute m = 600; m < 660; m += 5) {
      (void)policy.OnInvocation(UnitId{0}, day * kMinutesPerDay + m);
    }
  }
  EXPECT_TRUE(policy.IsDiurnalUnit(UnitId{0}));
}

}  // namespace
}  // namespace defuse::policy
