#include "policy/fixed.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace defuse::policy {
namespace {

TEST(FixedKeepAlivePolicy, AlwaysReturnsTheConfiguredKeepAlive) {
  FixedKeepAlivePolicy policy{graph::UnitMap::PerFunction(3), 10};
  for (std::uint32_t u = 0; u < 3; ++u) {
    const auto d = policy.OnInvocation(UnitId{u}, 57);
    EXPECT_EQ(d.prewarm, 0);
    EXPECT_EQ(d.keepalive, 10);
  }
}

TEST(FixedKeepAlivePolicy, IgnoresIdleObservations) {
  FixedKeepAlivePolicy policy{graph::UnitMap::PerFunction(1), 7};
  policy.ObserveIdleTime(UnitId{0}, 100);
  policy.ObserveIdleTime(UnitId{0}, 1);
  const auto d = policy.OnInvocation(UnitId{0}, 0);
  EXPECT_EQ(d.keepalive, 7);
}

TEST(FixedKeepAlivePolicy, NameIsStable) {
  FixedKeepAlivePolicy policy{graph::UnitMap::PerFunction(1), 7};
  EXPECT_STREQ(policy.name(), "fixed-keepalive");
}

TEST(FixedKeepAlivePolicy, EndToEndColdStartPattern) {
  // 10-minute keep-alive over a 30-minute period: invocations at 0, 5,
  // 20, 29 -> cold, warm, cold (gap 15), warm.
  trace::InvocationTrace trace{1, TimeRange{0, 40}};
  for (Minute m : {0, 5, 20, 29}) trace.Add(FunctionId{0}, m);
  trace.Finalize();
  FixedKeepAlivePolicy policy{graph::UnitMap::PerFunction(1), 10};
  const auto r = sim::Simulate(trace, TimeRange{0, 40}, policy);
  EXPECT_EQ(r.unit_invoked_minutes[0], 4u);
  EXPECT_EQ(r.unit_cold_minutes[0], 2u);
}

}  // namespace
}  // namespace defuse::policy
