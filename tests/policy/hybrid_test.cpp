#include "policy/hybrid.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace defuse::policy {
namespace {

HybridConfig TestConfig() {
  HybridConfig cfg;  // paper defaults: cv 5, memthresh 10, histthresh 0.05
  return cfg;
}

stats::Histogram PeakedHistogram(MinuteDelta value, std::uint64_t count) {
  stats::Histogram h{240, 1};
  h.AddCount(value, count);
  return h;
}

TEST(HybridConfig, DefaultsMatchThePaper) {
  const HybridConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.cv_threshold, 5.0);
  EXPECT_EQ(cfg.fixed_keepalive, 10);
  EXPECT_DOUBLE_EQ(cfg.hist_threshold, 0.05);
  EXPECT_DOUBLE_EQ(cfg.amplification, 1.0);
  EXPECT_EQ(cfg.histogram_bins, 240u);
}

TEST(ValidateHybridConfig, AcceptsDefaults) {
  EXPECT_EQ(ValidateHybridConfig(HybridConfig{}), nullptr);
}

TEST(ValidateHybridConfig, RejectsBadValues) {
  HybridConfig cfg;
  cfg.amplification = 0.0;
  EXPECT_NE(ValidateHybridConfig(cfg), nullptr);
  cfg = HybridConfig{};
  cfg.hist_threshold = 0.7;
  EXPECT_NE(ValidateHybridConfig(cfg), nullptr);
  cfg = HybridConfig{};
  cfg.margin = 1.5;
  EXPECT_NE(ValidateHybridConfig(cfg), nullptr);
  cfg = HybridConfig{};
  cfg.fixed_keepalive = 0;
  EXPECT_NE(ValidateHybridConfig(cfg), nullptr);
  cfg = HybridConfig{};
  cfg.histogram_bins = 0;
  EXPECT_NE(ValidateHybridConfig(cfg), nullptr);
}

TEST(HybridHistogramPolicy, NoObservationsFallsBackToFixed) {
  HybridHistogramPolicy policy{graph::UnitMap::PerFunction(1), TestConfig()};
  EXPECT_FALSE(policy.IsPredictableUnit(UnitId{0}));
  const auto d = policy.DecisionFor(UnitId{0});
  EXPECT_EQ(d.prewarm, 0);
  EXPECT_EQ(d.keepalive, 10);
}

TEST(HybridHistogramPolicy, PeakedHistogramIsPredictable) {
  HybridHistogramPolicy policy{graph::UnitMap::PerFunction(1), TestConfig()};
  policy.SeedHistogram(UnitId{0}, PeakedHistogram(30, 1000));
  EXPECT_TRUE(policy.IsPredictableUnit(UnitId{0}));
  const auto d = policy.DecisionFor(UnitId{0});
  // 5th and 95th percentile both in bin 30: prewarm = floor(30 * 0.9),
  // keepalive = ceil((31 - prewarm) * 1.1).
  EXPECT_EQ(d.prewarm, 27);
  EXPECT_EQ(d.keepalive, 5);
}

TEST(HybridHistogramPolicy, FlatHistogramIsUnpredictable) {
  HybridHistogramPolicy policy{graph::UnitMap::PerFunction(1), TestConfig()};
  stats::Histogram flat{240, 1};
  for (MinuteDelta v = 0; v < 240; ++v) flat.AddCount(v, 5);
  policy.SeedHistogram(UnitId{0}, flat);
  EXPECT_FALSE(policy.IsPredictableUnit(UnitId{0}));
  EXPECT_EQ(policy.DecisionFor(UnitId{0}).keepalive, 10);
}

TEST(HybridHistogramPolicy, MostlyOutOfBoundsFallsBackToFixed) {
  HybridHistogramPolicy policy{graph::UnitMap::PerFunction(1), TestConfig()};
  stats::Histogram h{240, 1};
  h.AddCount(30, 10);
  h.AddCount(1000, 20);  // 2/3 out of bounds
  policy.SeedHistogram(UnitId{0}, h);
  EXPECT_FALSE(policy.IsPredictableUnit(UnitId{0}));
}

TEST(HybridHistogramPolicy, AmplificationScalesKeepAliveOnly) {
  auto cfg = TestConfig();
  cfg.amplification = 3.0;
  HybridHistogramPolicy policy{graph::UnitMap::PerFunction(2), cfg};
  policy.SeedHistogram(UnitId{0}, PeakedHistogram(30, 1000));
  const auto predictable = policy.DecisionFor(UnitId{0});
  EXPECT_EQ(predictable.prewarm, 27);    // unscaled
  EXPECT_EQ(predictable.keepalive, 14);  // ceil(4.4 * 3) vs 5 unamplified
  const auto fallback = policy.DecisionFor(UnitId{1});
  EXPECT_EQ(fallback.keepalive, 30);  // 10 * 3
}

TEST(HybridHistogramPolicy, MarginWidensTheWindow) {
  auto cfg = TestConfig();
  cfg.margin = 0.0;
  HybridHistogramPolicy no_margin{graph::UnitMap::PerFunction(1), cfg};
  no_margin.SeedHistogram(UnitId{0}, PeakedHistogram(30, 1000));
  cfg.margin = 0.2;
  HybridHistogramPolicy with_margin{graph::UnitMap::PerFunction(1), cfg};
  with_margin.SeedHistogram(UnitId{0}, PeakedHistogram(30, 1000));
  EXPECT_LT(with_margin.DecisionFor(UnitId{0}).prewarm,
            no_margin.DecisionFor(UnitId{0}).prewarm);
  EXPECT_GT(with_margin.DecisionFor(UnitId{0}).keepalive,
            no_margin.DecisionFor(UnitId{0}).keepalive);
}

TEST(HybridHistogramPolicy, HistThresholdControlsPercentiles) {
  // Bimodal histogram: 10% at 10 minutes, 90% at 100.
  stats::Histogram h{240, 1};
  h.AddCount(10, 100);
  h.AddCount(100, 900);
  auto cfg = TestConfig();
  cfg.margin = 0.0;
  cfg.hist_threshold = 0.05;  // 5th pct is the low mode
  HybridHistogramPolicy policy{graph::UnitMap::PerFunction(1), cfg};
  policy.SeedHistogram(UnitId{0}, h);
  const auto d = policy.DecisionFor(UnitId{0});
  EXPECT_EQ(d.prewarm, 10);
  EXPECT_EQ(d.keepalive, 91);  // 101 - 10

  cfg.hist_threshold = 0.2;  // 20th pct is already the high mode
  HybridHistogramPolicy wider{graph::UnitMap::PerFunction(1), cfg};
  wider.SeedHistogram(UnitId{0}, h);
  EXPECT_EQ(wider.DecisionFor(UnitId{0}).prewarm, 100);
}

TEST(HybridHistogramPolicy, SmallPrewarmFoldsIntoKeepAlive) {
  // A pre-warm window below min_prewarm is not worth an unload/reload
  // cycle: the unit stays resident (prewarm 0) and the keep-alive covers
  // the folded window.
  auto cfg = TestConfig();
  cfg.min_prewarm = 8;
  cfg.margin = 0.0;
  HybridHistogramPolicy policy{graph::UnitMap::PerFunction(1), cfg};
  policy.SeedHistogram(UnitId{0}, PeakedHistogram(6, 1000));
  const auto d = policy.DecisionFor(UnitId{0});
  EXPECT_EQ(d.prewarm, 0);
  EXPECT_EQ(d.keepalive, 7);  // 7-minute window (upper edge) + folded 6...

  // Just above the threshold: a real pre-warm cycle.
  HybridHistogramPolicy longer{graph::UnitMap::PerFunction(1), cfg};
  longer.SeedHistogram(UnitId{0}, PeakedHistogram(20, 1000));
  EXPECT_EQ(longer.DecisionFor(UnitId{0}).prewarm, 20);
}

TEST(HybridHistogramPolicy, ObserveIdleTimeUpdatesTheHistogram) {
  HybridHistogramPolicy policy{graph::UnitMap::PerFunction(1), TestConfig()};
  EXPECT_FALSE(policy.IsPredictableUnit(UnitId{0}));
  for (int i = 0; i < 100; ++i) policy.ObserveIdleTime(UnitId{0}, 25);
  EXPECT_TRUE(policy.IsPredictableUnit(UnitId{0}));
  EXPECT_EQ(policy.histogram(UnitId{0}).total(), 100u);
  EXPECT_GT(policy.DecisionFor(UnitId{0}).prewarm, 0);
}

TEST(HybridHistogramPolicy, DecisionCacheInvalidatesOnObservation) {
  HybridHistogramPolicy policy{graph::UnitMap::PerFunction(1), TestConfig()};
  policy.SeedHistogram(UnitId{0}, PeakedHistogram(30, 1000));
  const auto before = policy.DecisionFor(UnitId{0});
  // Shift the mass: decisions must change.
  for (int i = 0; i < 100000; ++i) policy.ObserveIdleTime(UnitId{0}, 120);
  const auto after = policy.DecisionFor(UnitId{0});
  EXPECT_NE(before, after);
}

TEST(HybridHistogramPolicy, OnInvocationMatchesDecisionFor) {
  HybridHistogramPolicy policy{graph::UnitMap::PerFunction(1), TestConfig()};
  policy.SeedHistogram(UnitId{0}, PeakedHistogram(60, 500));
  EXPECT_EQ(policy.OnInvocation(UnitId{0}, 1234), policy.DecisionFor(UnitId{0}));
}

TEST(HybridHistogramPolicy, ArFallbackHandlesOutOfRangeIdleTimes) {
  // A unit with a stable 6-hour period: every gap lands out of the
  // 4-hour histogram, so the histogram branch is blind. With the AR
  // fallback the policy pre-warms near the forecast gap.
  auto cfg = TestConfig();
  cfg.use_ar_fallback = true;
  HybridHistogramPolicy policy{graph::UnitMap::PerFunction(1), cfg};
  for (int i = 0; i < 10; ++i) policy.ObserveIdleTime(UnitId{0}, 360);
  EXPECT_TRUE(policy.UsesArFallback(UnitId{0}));
  const auto d = policy.DecisionFor(UnitId{0});
  EXPECT_NEAR(static_cast<double>(d.prewarm), 359.0, 2.0);
  EXPECT_LE(d.keepalive, 10);

  // Without the flag the same unit falls back to the fixed keep-alive.
  HybridHistogramPolicy plain{graph::UnitMap::PerFunction(1), TestConfig()};
  for (int i = 0; i < 10; ++i) plain.ObserveIdleTime(UnitId{0}, 360);
  EXPECT_FALSE(plain.UsesArFallback(UnitId{0}));
  EXPECT_EQ(plain.DecisionFor(UnitId{0}).prewarm, 0);
}

TEST(HybridHistogramPolicy, ArFallbackNotUsedForInRangeHistograms) {
  auto cfg = TestConfig();
  cfg.use_ar_fallback = true;
  HybridHistogramPolicy policy{graph::UnitMap::PerFunction(1), cfg};
  for (int i = 0; i < 50; ++i) policy.ObserveIdleTime(UnitId{0}, 30);
  EXPECT_FALSE(policy.UsesArFallback(UnitId{0}));  // histogram covers it
  EXPECT_TRUE(policy.IsPredictableUnit(UnitId{0}));
}

TEST(HybridHistogramPolicy, ArFallbackEndToEndBeatsFixedOnLongPeriods) {
  // Strict 6-hour period, 60 cycles: fixed 10-minute keep-alive misses
  // every invocation after the first; the AR branch pre-warms in time.
  trace::InvocationTrace trace{1, TimeRange{0, 360 * 60}};
  for (Minute m = 0; m < 360 * 60; m += 360) trace.Add(FunctionId{0}, m);
  trace.Finalize();
  auto cfg = TestConfig();
  cfg.use_ar_fallback = true;
  HybridHistogramPolicy with_ar{graph::UnitMap::PerFunction(1), cfg};
  HybridHistogramPolicy without{graph::UnitMap::PerFunction(1), TestConfig()};
  const auto eval = TimeRange{0, 360 * 60};
  const auto a = sim::Simulate(trace, eval, with_ar);
  const auto b = sim::Simulate(trace, eval, without);
  EXPECT_LT(a.unit_cold_minutes[0], 10u);   // warms up after a few gaps
  EXPECT_EQ(b.unit_cold_minutes[0], 60u);   // always cold
  // And it does so with a fraction of always-on memory.
  EXPECT_LT(a.AverageMemoryUsage(), 0.2);
}

TEST(HybridHistogramPolicy, HistogramStateRoundTripsAcrossRestart) {
  // A daemon persists its learned histograms, restarts, reloads — and
  // makes the same decisions.
  HybridHistogramPolicy original{graph::UnitMap::PerFunction(3), TestConfig()};
  original.SeedHistogram(UnitId{0}, PeakedHistogram(30, 1000));
  for (int i = 0; i < 50; ++i) original.ObserveIdleTime(UnitId{2}, 90);
  const std::string state = original.SerializeHistograms();

  HybridHistogramPolicy restarted{graph::UnitMap::PerFunction(3),
                                  TestConfig()};
  ASSERT_TRUE(restarted.LoadHistograms(state));
  for (std::uint32_t u = 0; u < 3; ++u) {
    EXPECT_EQ(restarted.DecisionFor(UnitId{u}),
              original.DecisionFor(UnitId{u}))
        << "unit " << u;
    EXPECT_EQ(restarted.histogram(UnitId{u}).total(),
              original.histogram(UnitId{u}).total());
  }
}

TEST(HybridHistogramPolicy, LoadHistogramsRejectsBadInput) {
  HybridHistogramPolicy policy{graph::UnitMap::PerFunction(2), TestConfig()};
  EXPECT_FALSE(policy.LoadHistograms("wrong header\n"));
  EXPECT_FALSE(policy.LoadHistograms("unit,histogram\n9,1|0|0:1\n"));
  EXPECT_FALSE(policy.LoadHistograms("unit,histogram\nx,1|0|0:1\n"));
}

TEST(HybridHistogramPolicy, PeriodicWorkloadEndToEndIsMostlyWarm) {
  // A strictly periodic function (period 30): after the training seed the
  // policy pre-warms it, so evaluation sees almost no cold starts.
  trace::InvocationTrace trace{1, TimeRange{0, 6000}};
  for (Minute m = 0; m < 6000; m += 30) trace.Add(FunctionId{0}, m);
  trace.Finalize();
  HybridHistogramPolicy policy{graph::UnitMap::PerFunction(1), TestConfig()};
  stats::Histogram train{240, 1};
  for (const auto gap : trace.IdleTimes(FunctionId{0}, TimeRange{0, 3000})) {
    train.Add(gap);
  }
  policy.SeedHistogram(UnitId{0}, train);
  const auto r = sim::Simulate(trace, TimeRange{3000, 6000}, policy);
  EXPECT_EQ(r.unit_cold_minutes[0], 1u);  // only the very first
  // And the pre-warm keeps memory far below always-on.
  EXPECT_LT(r.AverageMemoryUsage(), 0.5);
}

TEST(HybridHistogramPolicy, UnpredictableWorkloadUsesFixedKeepAlive) {
  // Idle times spread uniformly over 1..240: unpredictable, fixed 10-min
  // keep-alive; gaps <= 9 are warm, others cold.
  trace::InvocationTrace trace{1, TimeRange{0, 100000}};
  Minute m = 0;
  int k = 0;
  std::uint64_t expected_warm = 0, total = 0;
  Minute prev = -1;
  while (m < 100000) {
    trace.Add(FunctionId{0}, m);
    if (prev >= 0) {
      ++total;
      if (m - prev < 10) ++expected_warm;
    }
    prev = m;
    m += 1 + (k * 37) % 113;
    ++k;
  }
  trace.Finalize();
  HybridHistogramPolicy policy{graph::UnitMap::PerFunction(1), TestConfig()};
  const auto r = sim::Simulate(trace, TimeRange{0, 100000}, policy);
  EXPECT_EQ(r.unit_invoked_minutes[0], total + 1);
  EXPECT_EQ(r.unit_invoked_minutes[0] - r.unit_cold_minutes[0],
            expected_warm);
}

}  // namespace
}  // namespace defuse::policy
