#include "policy/ar_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace defuse::policy {
namespace {

TEST(ArIdleTimeModel, NotReadyUntilFourObservations) {
  ArIdleTimeModel model;
  EXPECT_FALSE(model.Ready());
  model.Observe(10);
  model.Observe(10);
  model.Observe(10);
  EXPECT_FALSE(model.Ready());
  model.Observe(10);
  EXPECT_TRUE(model.Ready());
}

TEST(ArIdleTimeModel, MeanTracksObservations) {
  ArIdleTimeModel model;
  model.Observe(10);
  model.Observe(20);
  EXPECT_DOUBLE_EQ(model.Mean(), 15.0);
}

TEST(ArIdleTimeModel, ConstantSeriesPredictsTheConstant) {
  ArIdleTimeModel model;
  for (int i = 0; i < 10; ++i) model.Observe(42);
  EXPECT_DOUBLE_EQ(model.PredictNext(), 42.0);
  EXPECT_DOUBLE_EQ(model.ResidualStdDev(), 0.0);
}

TEST(ArIdleTimeModel, AlternatingSeriesHasNegativePhi) {
  ArIdleTimeModel model;
  for (int i = 0; i < 20; ++i) model.Observe(i % 2 == 0 ? 10 : 30);
  EXPECT_LT(model.Phi(), -0.5);
  // Last observation 30 -> next predicted near 10.
  EXPECT_LT(model.PredictNext(), 20.0);
}

TEST(ArIdleTimeModel, TrendingSeriesHasPositivePhi) {
  // A slow mean-reverting walk around 100 with persistence.
  ArIdleTimeModel model{64};
  double x = 100.0;
  std::uint64_t s = 99;
  for (int i = 0; i < 64; ++i) {
    // Deterministic pseudo-noise.
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    const double noise = static_cast<double>((s >> 33) % 7) - 3.0;
    x = 100.0 + 0.8 * (x - 100.0) + noise;
    model.Observe(static_cast<MinuteDelta>(x));
  }
  EXPECT_GT(model.Phi(), 0.3);
}

TEST(ArIdleTimeModel, PhiIsClampedForStability) {
  ArIdleTimeModel model;
  // A perfectly correlated ramp would fit phi ~ 1; must be clamped.
  for (int i = 0; i < 20; ++i) model.Observe(10 + i * 5);
  EXPECT_LE(model.Phi(), 0.95);
}

TEST(ArIdleTimeModel, WindowSlidesOldObservationsOut) {
  ArIdleTimeModel model{8};
  for (int i = 0; i < 8; ++i) model.Observe(1000);
  for (int i = 0; i < 8; ++i) model.Observe(10);
  EXPECT_DOUBLE_EQ(model.Mean(), 10.0);
}

TEST(ArIdleTimeModel, ResidualReflectsNoise) {
  ArIdleTimeModel noisy{32}, clean{32};
  for (int i = 0; i < 32; ++i) {
    clean.Observe(50);
    noisy.Observe(i % 2 == 0 ? 20 : 80);
  }
  EXPECT_GT(noisy.ResidualStdDev(), clean.ResidualStdDev());
}

}  // namespace
}  // namespace defuse::policy
