#include "mining/fpgrowth.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.hpp"

namespace defuse::mining {
namespace {

Transaction T(std::initializer_list<std::uint32_t> ids) {
  Transaction t;
  for (const auto id : ids) t.push_back(FunctionId{id});
  std::sort(t.begin(), t.end());
  return t;
}

/// Canonical map form for order-insensitive comparison.
std::map<std::vector<FunctionId>, std::uint64_t> Canon(
    const std::vector<Itemset>& itemsets) {
  std::map<std::vector<FunctionId>, std::uint64_t> out;
  for (const auto& s : itemsets) {
    auto [it, inserted] = out.emplace(s.items, s.support);
    EXPECT_TRUE(inserted) << "duplicate itemset emitted";
  }
  return out;
}

TEST(FpGrowth, EmptyTransactionsYieldNothing) {
  EXPECT_TRUE(MineFrequentItemsets({}).empty());
}

TEST(FpGrowth, NoFrequentPairsYieldNothing) {
  // Each pair occurs once; min_support_count = 2 filters everything.
  const std::vector<Transaction> txs{T({0, 1}), T({2, 3}), T({4, 5})};
  EXPECT_TRUE(MineFrequentItemsets(txs).empty());
}

TEST(FpGrowth, FindsASimpleFrequentPair) {
  const std::vector<Transaction> txs{T({0, 1}), T({0, 1}), T({0, 1}),
                                     T({0, 2})};
  FpGrowthConfig cfg;
  cfg.min_support_fraction = 0.5;
  const auto result = Canon(MineFrequentItemsets(txs, cfg));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.at(T({0, 1})), 3u);
}

TEST(FpGrowth, ClassicTextbookExample) {
  // Han et al. style example with known frequent itemsets at 40% support.
  const std::vector<Transaction> txs{
      T({1, 2, 5}), T({2, 4}), T({2, 3}), T({1, 2, 4}), T({1, 3}),
      T({2, 3}),    T({1, 3}), T({1, 2, 3, 5}), T({1, 2, 3})};
  FpGrowthConfig cfg;
  cfg.min_support_fraction = 2.0 / 9.0;  // absolute support 2
  const auto result = Canon(MineFrequentItemsets(txs, cfg));
  // Expected frequent itemsets of size >= 2 (support):
  EXPECT_EQ(result.at(T({1, 2})), 4u);
  EXPECT_EQ(result.at(T({1, 3})), 4u);
  EXPECT_EQ(result.at(T({2, 3})), 4u);
  EXPECT_EQ(result.at(T({1, 5})), 2u);
  EXPECT_EQ(result.at(T({2, 5})), 2u);
  EXPECT_EQ(result.at(T({2, 4})), 2u);
  EXPECT_EQ(result.at(T({1, 2, 3})), 2u);
  EXPECT_EQ(result.at(T({1, 2, 5})), 2u);
  EXPECT_EQ(result.size(), 8u);
}

TEST(FpGrowth, SupportsTriplesViaSinglePath) {
  const std::vector<Transaction> txs{T({0, 1, 2}), T({0, 1, 2}),
                                     T({0, 1, 2})};
  FpGrowthConfig cfg;
  cfg.min_support_fraction = 1.0;
  const auto result = Canon(MineFrequentItemsets(txs, cfg));
  EXPECT_EQ(result.at(T({0, 1})), 3u);
  EXPECT_EQ(result.at(T({0, 2})), 3u);
  EXPECT_EQ(result.at(T({1, 2})), 3u);
  EXPECT_EQ(result.at(T({0, 1, 2})), 3u);
  EXPECT_EQ(result.size(), 4u);
}

TEST(FpGrowth, MinItemsetSizeFiltersSingletons) {
  const std::vector<Transaction> txs{T({0, 1}), T({0, 1})};
  FpGrowthConfig cfg;
  cfg.min_itemset_size = 1;
  cfg.min_support_fraction = 1.0;
  const auto result = Canon(MineFrequentItemsets(txs, cfg));
  EXPECT_EQ(result.size(), 3u);  // {0}, {1}, {0,1}
  EXPECT_EQ(result.at(T({0})), 2u);
}

TEST(FpGrowth, MaxItemsetSizeCapsOutput) {
  const std::vector<Transaction> txs{T({0, 1, 2, 3}), T({0, 1, 2, 3})};
  FpGrowthConfig cfg;
  cfg.min_support_fraction = 1.0;
  cfg.max_itemset_size = 2;
  const auto result = MineFrequentItemsets(txs, cfg);
  for (const auto& s : result) EXPECT_LE(s.items.size(), 2u);
  EXPECT_EQ(result.size(), 6u);  // C(4,2) pairs
}

TEST(FpGrowth, MaxItemsetsIsAHardCap) {
  const std::vector<Transaction> txs{T({0, 1, 2, 3, 4, 5}),
                                     T({0, 1, 2, 3, 4, 5})};
  FpGrowthConfig cfg;
  cfg.min_support_fraction = 1.0;
  cfg.max_itemsets = 5;
  EXPECT_LE(MineFrequentItemsets(txs, cfg).size(), 5u);
}

TEST(FpGrowth, MinSupportCountFloorApplies) {
  // Fraction alone would accept support 1 here.
  const std::vector<Transaction> txs{T({0, 1})};
  FpGrowthConfig cfg;
  cfg.min_support_fraction = 0.1;
  cfg.min_support_count = 2;
  EXPECT_TRUE(MineFrequentItemsets(txs, cfg).empty());
  cfg.min_support_count = 1;
  EXPECT_EQ(MineFrequentItemsets(txs, cfg).size(), 1u);
}

TEST(FpGrowth, ItemsetsAreSortedById) {
  const std::vector<Transaction> txs{T({9, 1, 5}), T({9, 1, 5})};
  FpGrowthConfig cfg;
  cfg.min_support_fraction = 1.0;
  for (const auto& s : MineFrequentItemsets(txs, cfg)) {
    EXPECT_TRUE(std::is_sorted(s.items.begin(), s.items.end()));
  }
}

TEST(FpGrowthBruteForce, MatchesClassicExample) {
  const std::vector<Transaction> txs{
      T({1, 2, 5}), T({2, 4}), T({2, 3}), T({1, 2, 4}), T({1, 3}),
      T({2, 3}),    T({1, 3}), T({1, 2, 3, 5}), T({1, 2, 3})};
  FpGrowthConfig cfg;
  cfg.min_support_fraction = 2.0 / 9.0;
  EXPECT_EQ(Canon(MineFrequentItemsetsBruteForce(txs, cfg)),
            Canon(MineFrequentItemsets(txs, cfg)));
}

/// Differential property test: FP-Growth must agree with brute force on
/// random small transaction databases across support thresholds.
class FpGrowthDifferentialTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(FpGrowthDifferentialTest, AgreesWithBruteForce) {
  const auto [seed, support] = GetParam();
  Rng rng{seed};
  const std::size_t universe = 8;
  const std::size_t num_txs = 2 + rng.NextBelow(30);
  std::vector<Transaction> txs;
  for (std::size_t i = 0; i < num_txs; ++i) {
    Transaction t;
    for (std::uint32_t item = 0; item < universe; ++item) {
      if (rng.NextBernoulli(0.4)) t.push_back(FunctionId{item});
    }
    if (t.size() >= 2) txs.push_back(std::move(t));
  }
  FpGrowthConfig cfg;
  cfg.min_support_fraction = support;
  EXPECT_EQ(Canon(MineFrequentItemsetsBruteForce(txs, cfg)),
            Canon(MineFrequentItemsets(txs, cfg)))
      << "seed=" << seed << " support=" << support
      << " txs=" << txs.size();
}

INSTANTIATE_TEST_SUITE_P(
    RandomDatabases, FpGrowthDifferentialTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                         12),
                       ::testing::Values(0.1, 0.2, 0.4, 0.7)));

TEST(FilterMaximalItemsets, KeepsOnlyUnsubsumedSets) {
  std::vector<Itemset> itemsets{
      {.items = T({0, 1}), .support = 5},
      {.items = T({0, 1, 2}), .support = 3},
      {.items = T({1, 2}), .support = 4},
      {.items = T({3, 4}), .support = 2},
  };
  const auto maximal = FilterMaximalItemsets(itemsets);
  const auto result = Canon(maximal);
  EXPECT_EQ(result.size(), 2u);
  EXPECT_TRUE(result.contains(T({0, 1, 2})));
  EXPECT_TRUE(result.contains(T({3, 4})));
}

TEST(FilterMaximalItemsets, IdenticalSizeSetsAllSurvive) {
  std::vector<Itemset> itemsets{
      {.items = T({0, 1}), .support = 5},
      {.items = T({2, 3}), .support = 5},
  };
  EXPECT_EQ(FilterMaximalItemsets(itemsets).size(), 2u);
}

TEST(FpGrowth, MaximalOnlyPreservesConnectivity) {
  // The maximal filter must keep every frequent function connected to
  // the same component: each kept maximal itemset spans the pairs its
  // subsets would have contributed.
  const std::vector<Transaction> txs{T({0, 1, 2}), T({0, 1, 2}),
                                     T({0, 1, 2}), T({3, 4}), T({3, 4})};
  FpGrowthConfig cfg;
  cfg.min_support_fraction = 0.3;
  cfg.maximal_only = true;
  const auto result = Canon(MineFrequentItemsets(txs, cfg));
  EXPECT_EQ(result.size(), 2u);
  EXPECT_TRUE(result.contains(T({0, 1, 2})));
  EXPECT_TRUE(result.contains(T({3, 4})));
}

TEST(FpGrowth, SupportMonotonicity) {
  // Raising the threshold can only shrink the result set.
  Rng rng{77};
  std::vector<Transaction> txs;
  for (int i = 0; i < 40; ++i) {
    Transaction t;
    for (std::uint32_t item = 0; item < 10; ++item) {
      if (rng.NextBernoulli(0.35)) t.push_back(FunctionId{item});
    }
    if (t.size() >= 2) txs.push_back(std::move(t));
  }
  std::size_t prev = std::numeric_limits<std::size_t>::max();
  for (const double support : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    FpGrowthConfig cfg;
    cfg.min_support_fraction = support;
    const auto n = MineFrequentItemsets(txs, cfg).size();
    EXPECT_LE(n, prev);
    prev = n;
  }
}

TEST(FpGrowth, EverySubsetOfAFrequentItemsetIsFrequent) {
  // Apriori property check on FP-Growth output.
  Rng rng{88};
  std::vector<Transaction> txs;
  for (int i = 0; i < 50; ++i) {
    Transaction t;
    for (std::uint32_t item = 0; item < 9; ++item) {
      if (rng.NextBernoulli(0.45)) t.push_back(FunctionId{item});
    }
    if (t.size() >= 2) txs.push_back(std::move(t));
  }
  FpGrowthConfig cfg;
  cfg.min_support_fraction = 0.2;
  const auto result = Canon(MineFrequentItemsets(txs, cfg));
  for (const auto& [items, support] : result) {
    if (items.size() < 3) continue;
    // Drop each element; the remaining pair+ must also be frequent with
    // support >= the superset's.
    for (std::size_t skip = 0; skip < items.size(); ++skip) {
      std::vector<FunctionId> subset;
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != skip) subset.push_back(items[i]);
      }
      const auto it = result.find(subset);
      ASSERT_NE(it, result.end());
      EXPECT_GE(it->second, support);
    }
  }
}

}  // namespace
}  // namespace defuse::mining
