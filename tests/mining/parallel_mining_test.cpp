// Differential suite for the parallel sharded mining pipeline: for any
// seed and any thread count, core::MineDependencies must produce output
// bit-identical to the serial path. The fan-out shards by user, the
// universe-shuffle RNG stream stays on the coordinating thread, and the
// merge runs in user-id order — so equality here is exact, not
// approximate (see DESIGN.md §8).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/defuse.hpp"
#include "core/experiment.hpp"
#include "trace/generator.hpp"

namespace defuse::core {
namespace {

trace::SyntheticWorkload SeededWorkload(std::uint64_t seed) {
  auto cfg = trace::GeneratorConfig::Tiny();
  cfg.num_users = 20;
  cfg.seed = seed;
  return trace::GenerateWorkload(cfg);
}

DefuseConfig WithThreads(std::size_t threads) {
  DefuseConfig config;
  config.parallel.num_threads = threads;
  return config;
}

void ExpectIdentical(const MiningOutput& serial, const MiningOutput& parallel,
                     std::uint64_t seed, std::size_t threads) {
  SCOPED_TRACE(::testing::Message()
               << "seed=" << seed << " threads=" << threads);
  EXPECT_EQ(serial.graph.edges(), parallel.graph.edges());
  EXPECT_EQ(serial.num_frequent_itemsets, parallel.num_frequent_itemsets);
  EXPECT_EQ(serial.num_weak_dependencies, parallel.num_weak_dependencies);
  EXPECT_EQ(serial.predictability.predictable,
            parallel.predictability.predictable);
  EXPECT_EQ(serial.predictability.cv, parallel.predictability.cv);
  ASSERT_EQ(serial.sets.size(), parallel.sets.size());
  for (std::size_t s = 0; s < serial.sets.size(); ++s) {
    EXPECT_EQ(serial.sets[s].id, parallel.sets[s].id);
    EXPECT_EQ(serial.sets[s].functions, parallel.sets[s].functions);
  }
}

// The tentpole guarantee: seeds 0..9, serial vs 4 threads, everything
// bit-identical — dependency edges, sets, CV values, weak-dep counters.
TEST(ParallelMining, BitIdenticalToSerialAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto w = SeededWorkload(seed);
    const auto [train, eval] = SplitTrainEval(w.trace.horizon());
    const auto serial =
        MineDependencies(w.trace, w.model, train, WithThreads(0)).value();
    const auto parallel =
        MineDependencies(w.trace, w.model, train, WithThreads(4)).value();
    ExpectIdentical(serial, parallel, seed, 4);
  }
}

TEST(ParallelMining, BitIdenticalAcrossThreadCounts) {
  const auto w = SeededWorkload(123);
  const auto [train, eval] = SplitTrainEval(w.trace.horizon());
  const auto serial =
      MineDependencies(w.trace, w.model, train, WithThreads(0)).value();
  for (const std::size_t threads : {1u, 2u, 3u, 8u}) {
    const auto parallel =
        MineDependencies(w.trace, w.model, train, WithThreads(threads))
            .value();
    ExpectIdentical(serial, parallel, 123, threads);
  }
}

TEST(ParallelMining, RunTwiceIsDeterministic) {
  // Scheduling nondeterminism must not leak: the same parallel config
  // run twice gives the same bits.
  const auto w = SeededWorkload(7);
  const auto [train, eval] = SplitTrainEval(w.trace.horizon());
  const auto a =
      MineDependencies(w.trace, w.model, train, WithThreads(4)).value();
  const auto b =
      MineDependencies(w.trace, w.model, train, WithThreads(4)).value();
  ExpectIdentical(a, b, 7, 4);
}

TEST(ParallelMining, AblationsMatchSerialToo) {
  const auto w = SeededWorkload(42);
  const auto [train, eval] = SplitTrainEval(w.trace.horizon());
  for (const bool strong_only : {true, false}) {
    DefuseConfig serial_cfg;
    serial_cfg.use_strong = strong_only;
    serial_cfg.use_weak = !strong_only;
    DefuseConfig parallel_cfg = serial_cfg;
    parallel_cfg.parallel.num_threads = 4;
    const auto serial =
        MineDependencies(w.trace, w.model, train, serial_cfg).value();
    const auto parallel =
        MineDependencies(w.trace, w.model, train, parallel_cfg).value();
    ExpectIdentical(serial, parallel, 42, 4);
  }
}

TEST(ParallelMining, InvalidConfigIsRejectedNotMined) {
  const auto w = SeededWorkload(1);
  const auto [train, eval] = SplitTrainEval(w.trace.horizon());
  DefuseConfig bad = WithThreads(4);
  bad.universe_stride = bad.universe_window + 1;  // drops functions
  const auto result = MineDependencies(w.trace, w.model, train, bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
}

TEST(ParallelMining, ManyMoreThreadsThanUsersIsFine) {
  auto cfg = trace::GeneratorConfig::Tiny();
  cfg.num_users = 3;
  cfg.seed = 5;
  const auto w = trace::GenerateWorkload(cfg);
  const auto [train, eval] = SplitTrainEval(w.trace.horizon());
  const auto serial =
      MineDependencies(w.trace, w.model, train, WithThreads(0)).value();
  const auto parallel =
      MineDependencies(w.trace, w.model, train, WithThreads(16)).value();
  ExpectIdentical(serial, parallel, 5, 16);
}

}  // namespace
}  // namespace defuse::core
