#include "mining/cooccurrence.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace defuse::mining {
namespace {

constexpr TimeRange kRange{0, 1000};

TEST(CooccurrenceMatrix, CountsJointWindows) {
  trace::InvocationTrace t{2, kRange};
  t.Add(FunctionId{0}, 10);
  t.Add(FunctionId{1}, 10);
  t.Add(FunctionId{0}, 20);
  t.Add(FunctionId{1}, 30);
  t.Finalize();
  CooccurrenceMatrix m{{FunctionId{0}}, {FunctionId{1}}};
  m.Accumulate(t, kRange, 1);
  EXPECT_EQ(m.at(0, 0), 1u);
  EXPECT_EQ(m.row_total(0), 2u);
  EXPECT_EQ(m.col_total(0), 2u);
  EXPECT_EQ(m.total_windows(), 1000u);
}

TEST(CooccurrenceMatrix, WindowWidthMergesMinutes) {
  trace::InvocationTrace t{2, kRange};
  t.Add(FunctionId{0}, 10);
  t.Add(FunctionId{1}, 14);  // same 5-minute window
  t.Finalize();
  CooccurrenceMatrix m{{FunctionId{0}}, {FunctionId{1}}};
  m.Accumulate(t, kRange, 5);
  EXPECT_EQ(m.at(0, 0), 1u);
  EXPECT_EQ(m.total_windows(), 200u);
}

TEST(CooccurrenceMatrix, PpmiPositiveForDependentPair) {
  trace::InvocationTrace t{2, kRange};
  // f0 and f1 always co-fire, 10 times out of 1000 windows:
  // PMI = log2(0.01 / (0.01 * 0.01)) = log2(100) ~ 6.64.
  for (Minute m = 0; m < 1000; m += 100) {
    t.Add(FunctionId{0}, m);
    t.Add(FunctionId{1}, m);
  }
  t.Finalize();
  CooccurrenceMatrix m{{FunctionId{0}}, {FunctionId{1}}};
  m.Accumulate(t, kRange, 1);
  EXPECT_NEAR(m.Ppmi(0, 0), std::log2(100.0), 1e-9);
}

TEST(CooccurrenceMatrix, PpmiZeroWhenNeverTogether) {
  trace::InvocationTrace t{2, kRange};
  t.Add(FunctionId{0}, 10);
  t.Add(FunctionId{1}, 20);
  t.Finalize();
  CooccurrenceMatrix m{{FunctionId{0}}, {FunctionId{1}}};
  m.Accumulate(t, kRange, 1);
  EXPECT_DOUBLE_EQ(m.Ppmi(0, 0), 0.0);
}

TEST(CooccurrenceMatrix, PpmiClampsNegativePmiToZero) {
  trace::InvocationTrace t{2, kRange};
  // f0 active in 500 windows, f1 in 500, together only once:
  // PMI = log2((1/1000) / (0.5 * 0.5)) = log2(0.004) < 0 -> PPMI 0.
  for (Minute m = 0; m < 1000; m += 2) t.Add(FunctionId{0}, m);
  for (Minute m = 1; m < 1000; m += 2) t.Add(FunctionId{1}, m);
  t.Add(FunctionId{1}, 0);  // one co-occurrence
  t.Finalize();
  CooccurrenceMatrix m{{FunctionId{0}}, {FunctionId{1}}};
  m.Accumulate(t, kRange, 1);
  EXPECT_DOUBLE_EQ(m.Ppmi(0, 0), 0.0);
}

struct WeakFixture {
  trace::WorkloadModel model;
  UserId user;
  // f0: unpredictable; f1: predictable service; f2: predictable decoy.
  WeakFixture() {
    user = model.AddUser("u");
    const AppId a0 = model.AddApp(user, "a0");
    const AppId a1 = model.AddApp(user, "a1");
    model.AddFunction(a0, "unpredictable");
    model.AddFunction(a1, "service");
    model.AddFunction(a1, "decoy");
  }
};

TEST(MineWeakDependencies, FindsThePlantedLink) {
  WeakFixture fx;
  trace::InvocationTrace t{3, kRange};
  // service + decoy: periodic every 10 minutes.
  for (Minute m = 0; m < 1000; m += 10) {
    t.Add(FunctionId{1}, m);
    t.Add(FunctionId{2}, m);
  }
  // unpredictable fires at scattered minutes, each time pinging service
  // (but not decoy) in the same minute (off the decoy's 10-grid).
  for (Minute m : {13, 157, 311, 444, 617, 731, 888, 951}) {
    t.Add(FunctionId{0}, m);
    t.Add(FunctionId{1}, m);
  }
  t.Finalize();
  const std::vector<bool> predictable{false, true, true};
  const auto deps =
      MineWeakDependencies(t, fx.model, fx.user, predictable, kRange);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].from, FunctionId{0});
  EXPECT_EQ(deps[0].to, FunctionId{1});
  EXPECT_GT(deps[0].ppmi, 0.0);
}

TEST(MineWeakDependencies, TopKLimitsLinksPerFunction) {
  WeakFixture fx;
  trace::InvocationTrace t{3, kRange};
  for (Minute m : {13, 157, 311, 444, 617}) {
    t.Add(FunctionId{0}, m);
    t.Add(FunctionId{1}, m);  // both services co-fire with f0
    t.Add(FunctionId{2}, m);
  }
  t.Finalize();
  const std::vector<bool> predictable{false, true, true};
  PpmiConfig cfg;
  cfg.top_k = 1;
  auto deps = MineWeakDependencies(t, fx.model, fx.user, predictable, kRange,
                                   cfg);
  EXPECT_EQ(deps.size(), 1u);
  cfg.top_k = 2;
  deps = MineWeakDependencies(t, fx.model, fx.user, predictable, kRange, cfg);
  EXPECT_EQ(deps.size(), 2u);
}

TEST(MineWeakDependencies, MinCooccurrenceFiltersCoincidences) {
  WeakFixture fx;
  trace::InvocationTrace t{3, kRange};
  t.Add(FunctionId{0}, 13);
  t.Add(FunctionId{1}, 13);  // single coincidence
  t.Finalize();
  const std::vector<bool> predictable{false, true, true};
  PpmiConfig cfg;
  cfg.min_cooccurrences = 2;
  EXPECT_TRUE(MineWeakDependencies(t, fx.model, fx.user, predictable, kRange,
                                   cfg)
                  .empty());
  cfg.min_cooccurrences = 1;
  EXPECT_EQ(MineWeakDependencies(t, fx.model, fx.user, predictable, kRange,
                                 cfg)
                .size(),
            1u);
}

TEST(MineWeakDependencies, NoPredictableFunctionsMeansNoLinks) {
  WeakFixture fx;
  trace::InvocationTrace t{3, kRange};
  t.Add(FunctionId{0}, 10);
  t.Finalize();
  const std::vector<bool> predictable{false, false, false};
  EXPECT_TRUE(
      MineWeakDependencies(t, fx.model, fx.user, predictable, kRange).empty());
}

TEST(MineWeakDependencies, NoUnpredictableFunctionsMeansNoLinks) {
  WeakFixture fx;
  trace::InvocationTrace t{3, kRange};
  t.Add(FunctionId{1}, 10);
  t.Finalize();
  const std::vector<bool> predictable{true, true, true};
  EXPECT_TRUE(
      MineWeakDependencies(t, fx.model, fx.user, predictable, kRange).empty());
}

}  // namespace
}  // namespace defuse::mining
