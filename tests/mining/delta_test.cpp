// The streaming-accumulator contract (mining/delta.hpp): every layer —
// the CanTree transaction store, the co-occurrence counters, the event
// store — must be EXACT, so a delta mine is bit-identical to a full
// pipeline pass over the same window. These tests pin that equivalence
// at the mining layer; the platform-level differential suite
// (tests/platform/delta_platform_test.cpp) pins it end to end.
#include "mining/delta.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "core/defuse.hpp"
#include "graph/serialization.hpp"
#include "mining/cooccurrence.hpp"
#include "mining/transactions.hpp"

namespace defuse::mining {
namespace {

/// Two users: u0 owns {f0, f1, f2} (co-firing pairs for strong/weak
/// signal), u1 owns {g0, g1}.
struct Fixture {
  trace::WorkloadModel model;
  FunctionId f0, f1, f2, g0, g1;
  Fixture() {
    const UserId u0 = model.AddUser("u0");
    const AppId a0 = model.AddApp(u0, "a0");
    f0 = model.AddFunction(a0, "f0");
    f1 = model.AddFunction(a0, "f1");
    const AppId a1 = model.AddApp(u0, "a1");
    f2 = model.AddFunction(a1, "f2");
    const UserId u1 = model.AddUser("u1");
    const AppId b0 = model.AddApp(u1, "b0");
    g0 = model.AddFunction(b0, "g0");
    g1 = model.AddFunction(b0, "g1");
  }
};

constexpr Minute kHorizon = 600;

/// Feeds the same deterministic workload to the accumulator and to a
/// plain trace, minute by minute (Ingest requires monotonic minutes).
void Drive(const Fixture& fx, DeltaAccumulator& acc,
           trace::InvocationTrace& trace, Minute begin, Minute end) {
  const auto emit = [&](FunctionId fn, Minute t, std::uint32_t c) {
    acc.Ingest(fn, t, c);
    trace.Add(fn, t, c);
  };
  for (Minute t = begin; t < end; ++t) {
    if (t % 2 == 0) emit(fx.f0, t, 1);
    if (t % 4 == 0) emit(fx.f1, t, 2);  // always co-fires with f0
    if (t % 7 == 0) emit(fx.f2, t, 1);
    if (t % 3 == 0) emit(fx.g0, t, 1);
    if (t % 6 == 0) emit(fx.g1, t, 3);  // always co-fires with g0
  }
}

std::vector<Transaction> Sorted(std::vector<Transaction> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::string SetsCsv(const core::MiningOutput& mined,
                    const trace::WorkloadModel& model) {
  return graph::WriteDependencySetsCsvChecksummed(mined.sets, model);
}

TEST(CanTree, ExportIsMultisetEqualToInsertHistory) {
  CanTree tree;
  const Transaction ab{FunctionId{1}, FunctionId{2}};
  const Transaction abc{FunctionId{1}, FunctionId{2}, FunctionId{3}};
  const Transaction cd{FunctionId{3}, FunctionId{4}};
  tree.Insert(abc);
  tree.Insert(ab, 2);
  tree.Insert(cd);
  tree.Insert(abc);  // multiplicity via repeated insert too
  EXPECT_EQ(tree.size(), 5u);

  std::vector<Transaction> out;
  tree.Export(out);
  EXPECT_EQ(Sorted(out), Sorted({abc, ab, ab, cd, abc}));
  // Export is deterministic lexicographic order, not just multiset-equal.
  EXPECT_EQ(out, Sorted(out));
}

TEST(CanTree, ShapeIsIndependentOfInsertionOrder) {
  const std::vector<Transaction> ts{
      {FunctionId{1}, FunctionId{2}},
      {FunctionId{1}, FunctionId{2}, FunctionId{3}},
      {FunctionId{2}, FunctionId{3}},
      {FunctionId{1}, FunctionId{3}},
  };
  CanTree forward, backward;
  for (const auto& t : ts) forward.Insert(t);
  for (auto it = ts.rbegin(); it != ts.rend(); ++it) backward.Insert(*it);
  std::vector<Transaction> a, b;
  forward.Export(a);
  backward.Export(b);
  EXPECT_EQ(a, b);
}

TEST(CanTree, RemoveIsAnExactInverse) {
  CanTree tree;
  const Transaction ab{FunctionId{1}, FunctionId{2}};
  const Transaction abc{FunctionId{1}, FunctionId{2}, FunctionId{3}};
  tree.Insert(ab, 3);
  tree.Insert(abc);
  ASSERT_TRUE(tree.Remove(ab, 2));
  EXPECT_EQ(tree.size(), 2u);
  std::vector<Transaction> out;
  tree.Export(out);
  EXPECT_EQ(Sorted(out), Sorted({ab, abc}));

  // Removing more copies than stored — or a transaction never inserted —
  // fails and changes nothing.
  EXPECT_FALSE(tree.Remove(ab, 2));
  EXPECT_FALSE(tree.Remove(Transaction{FunctionId{9}}));
  EXPECT_FALSE(tree.Remove(Transaction{FunctionId{1}}));  // prefix only
  out.clear();
  tree.Export(out);
  EXPECT_EQ(Sorted(out), Sorted({ab, abc}));

  ASSERT_TRUE(tree.Remove(ab));
  ASSERT_TRUE(tree.Remove(abc));
  EXPECT_EQ(tree.size(), 0u);
  out.clear();
  tree.Export(out);
  EXPECT_TRUE(out.empty());
}

TEST(DeltaAccumulator, TransactionsMatchBuildUserTransactions) {
  Fixture fx;
  DeltaAccumulator acc{fx.model, DeltaMineConfig{true, 8}, 1};
  trace::InvocationTrace trace{fx.model.num_functions(),
                               TimeRange{0, kHorizon}};
  Drive(fx, acc, trace, 0, 200);
  trace.Finalize();

  const TimeRange window{0, 200};
  acc.SealTo(window.end);
  acc.EvictTo(window.begin);
  const DeltaMiningInput input = acc.BuildInput(window);
  ASSERT_TRUE(input.has_transactions);
  ASSERT_EQ(input.transactions.size(), fx.model.num_users());
  for (std::size_t u = 0; u < fx.model.num_users(); ++u) {
    const auto direct = BuildUserTransactions(
        trace, fx.model, UserId{static_cast<std::uint32_t>(u)}, window);
    EXPECT_EQ(Sorted(input.transactions[u]), Sorted(direct)) << "user " << u;
  }
}

TEST(DeltaAccumulator, CooccurrenceCountsMatchAccumulate) {
  Fixture fx;
  DeltaAccumulator acc{fx.model, DeltaMineConfig{true, 8}, 1};
  trace::InvocationTrace trace{fx.model.num_functions(),
                               TimeRange{0, kHorizon}};
  Drive(fx, acc, trace, 0, 300);
  trace.Finalize();

  const TimeRange window{0, 300};
  acc.SealTo(window.end);
  const DeltaMiningInput input = acc.BuildInput(window);
  ASSERT_TRUE(input.has_cooc);
  EXPECT_EQ(input.total_windows, static_cast<std::uint64_t>(window.length()));

  // An arbitrary row/column split of u0's functions: the loaded matrix
  // must reproduce Accumulate's integers exactly, hence Ppmi (a pure
  // function of those integers) bit-for-bit.
  CooccurrenceMatrix scanned{{fx.f1, fx.f2}, {fx.f0}};
  scanned.Accumulate(trace, window, 1);
  CooccurrenceMatrix loaded{{fx.f1, fx.f2}, {fx.f0}};
  loaded.LoadAccumulated(input.cooc[0].active, input.cooc[0].pairs,
                         input.total_windows);
  ASSERT_EQ(loaded.num_rows(), scanned.num_rows());
  ASSERT_EQ(loaded.num_cols(), scanned.num_cols());
  EXPECT_EQ(loaded.total_windows(), scanned.total_windows());
  for (std::size_t r = 0; r < scanned.num_rows(); ++r) {
    EXPECT_EQ(loaded.row_total(r), scanned.row_total(r)) << "row " << r;
    for (std::size_t c = 0; c < scanned.num_cols(); ++c) {
      EXPECT_EQ(loaded.at(r, c), scanned.at(r, c)) << r << "," << c;
      EXPECT_EQ(loaded.Ppmi(r, c), scanned.Ppmi(r, c)) << r << "," << c;
    }
  }
  for (std::size_t c = 0; c < scanned.num_cols(); ++c) {
    EXPECT_EQ(loaded.col_total(c), scanned.col_total(c)) << "col " << c;
  }
}

TEST(DeltaAccumulator, SlidingWindowsWithEvictionStayExact) {
  Fixture fx;
  DeltaAccumulator acc{fx.model, DeltaMineConfig{true, 8}, 1};
  trace::InvocationTrace trace{fx.model.num_functions(),
                               TimeRange{0, kHorizon}};
  // Three overlapping mine windows over a growing stream; between each,
  // only the new events are ingested and the slid-past prefix evicted.
  const std::vector<TimeRange> windows{{0, 100}, {50, 150}, {100, 250}};
  Minute fed = 0;
  for (const TimeRange window : windows) {
    Drive(fx, acc, trace, fed, window.end);
    fed = window.end;
    trace.Finalize();
    acc.SealTo(window.end);
    acc.EvictTo(window.begin);
    const DeltaMiningInput input = acc.BuildInput(window);
    ASSERT_TRUE(input.has_transactions);
    for (std::size_t u = 0; u < fx.model.num_users(); ++u) {
      const auto direct = BuildUserTransactions(
          trace, fx.model, UserId{static_cast<std::uint32_t>(u)}, window);
      EXPECT_EQ(Sorted(input.transactions[u]), Sorted(direct))
          << "window [" << window.begin << "," << window.end << ") user "
          << u;
    }
    // The materialized window is exactly the full trace restricted to it.
    const auto mat = acc.MaterializeWindow(window, TimeRange{0, kHorizon});
    for (std::size_t f = 0; f < fx.model.num_functions(); ++f) {
      const FunctionId fn{static_cast<std::uint32_t>(f)};
      const auto want = trace.SeriesInRange(fn, window);
      const auto got = mat.SeriesInRange(fn, window);
      ASSERT_EQ(got.size(), want.size()) << "fn " << f;
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].minute, want[i].minute);
        EXPECT_EQ(got[i].count, want[i].count);
      }
    }
    acc.Commit(window.end, /*anchored=*/false);
  }
  EXPECT_EQ(acc.books().delta_mines, windows.size());
}

TEST(DeltaAccumulator, MineDependenciesFromDeltaInputIsBitIdentical) {
  Fixture fx;
  DeltaAccumulator acc{fx.model, DeltaMineConfig{true, 8}, 1};
  trace::InvocationTrace trace{fx.model.num_functions(),
                               TimeRange{0, kHorizon}};
  Drive(fx, acc, trace, 0, 400);
  trace.Finalize();

  const TimeRange window{0, 400};
  acc.SealTo(window.end);
  const DeltaMiningInput input = acc.BuildInput(window);
  const auto mat = acc.MaterializeWindow(window, TimeRange{0, kHorizon});

  core::DefuseConfig cfg;
  const auto from_input =
      core::MineDependencies(mat, fx.model, window, cfg, &input);
  const auto from_scan =
      core::MineDependencies(mat, fx.model, window, cfg, nullptr);
  ASSERT_TRUE(from_input.ok());
  ASSERT_TRUE(from_scan.ok());
  EXPECT_EQ(SetsCsv(from_input.value(), fx.model),
            SetsCsv(from_scan.value(), fx.model));
  EXPECT_EQ(from_input.value().num_frequent_itemsets,
            from_scan.value().num_frequent_itemsets);
  EXPECT_EQ(from_input.value().num_weak_dependencies,
            from_scan.value().num_weak_dependencies);
  EXPECT_GT(from_input.value().sets.size(), 0u);
}

TEST(DeltaAccumulator, NonUnitWindowMinutesFallsBackToTraceScan) {
  Fixture fx;
  DeltaAccumulator acc{fx.model, DeltaMineConfig{true, 8}, 2};
  trace::InvocationTrace trace{fx.model.num_functions(),
                               TimeRange{0, kHorizon}};
  Drive(fx, acc, trace, 0, 100);
  const TimeRange window{0, 100};
  acc.SealTo(window.end);
  const DeltaMiningInput input = acc.BuildInput(window);
  // The fast-path flags stay off — callers mine the materialized window
  // through the standard pipeline, which is exact at any granularity.
  EXPECT_FALSE(input.has_transactions);
  EXPECT_FALSE(input.has_cooc);
  trace.Finalize();
  const auto mat = acc.MaterializeWindow(window, TimeRange{0, kHorizon});
  EXPECT_EQ(mat.SeriesInRange(fx.f0, window).size(),
            trace.SeriesInRange(fx.f0, window).size());
}

TEST(DeltaAccumulator, FullRebuildCadenceAndBooks) {
  Fixture fx;
  DeltaAccumulator acc{fx.model, DeltaMineConfig{true, 3}, 1};
  // full_rebuild_every = 3: two delta commits, then the third is due as
  // an anchor; an anchored commit resets the cadence.
  EXPECT_FALSE(acc.FullRebuildDue());
  acc.Commit(10, /*anchored=*/false);
  EXPECT_FALSE(acc.FullRebuildDue());
  acc.Commit(20, /*anchored=*/false);
  EXPECT_TRUE(acc.FullRebuildDue());
  acc.Commit(30, /*anchored=*/true);
  EXPECT_FALSE(acc.FullRebuildDue());
  EXPECT_EQ(acc.books().delta_mines, 2u);
  EXPECT_EQ(acc.books().full_rebuilds, 1u);
  EXPECT_EQ(acc.last_good(), 30);

  // Abandon books the rollback and leaves the boundary untouched.
  acc.Abandon();
  EXPECT_EQ(acc.books().aborted_deltas, 1u);
  EXPECT_EQ(acc.last_good(), 30);

  // every = 1 anchors every mine; 0 never does.
  DeltaAccumulator always{fx.model, DeltaMineConfig{true, 1}, 1};
  EXPECT_TRUE(always.FullRebuildDue());
  DeltaAccumulator never{fx.model, DeltaMineConfig{true, 0}, 1};
  EXPECT_FALSE(never.FullRebuildDue());
  never.Commit(10, /*anchored=*/false);
  EXPECT_FALSE(never.FullRebuildDue());
}

TEST(DeltaAccumulator, SerializeRoundTripsByteForByte) {
  Fixture fx;
  DeltaAccumulator acc{fx.model, DeltaMineConfig{true, 8}, 1};
  trace::InvocationTrace trace{fx.model.num_functions(),
                               TimeRange{0, kHorizon}};
  Drive(fx, acc, trace, 0, 150);
  acc.SealTo(100);
  acc.EvictTo(30);
  acc.Commit(100, /*anchored=*/false);
  const std::string saved = acc.Serialize();

  DeltaAccumulator restored{fx.model, DeltaMineConfig{true, 8}, 1};
  ASSERT_TRUE(restored.Deserialize(saved));
  EXPECT_EQ(restored.Serialize(), saved);
  EXPECT_EQ(restored.store_begin(), acc.store_begin());
  EXPECT_EQ(restored.sealed_end(), acc.sealed_end());
  EXPECT_EQ(restored.last_good(), acc.last_good());
  EXPECT_EQ(restored.stored_events(), acc.stored_events());

  // The derived accumulators re-derive exactly: the next window's input
  // is identical on both sides.
  const TimeRange window{30, 150};
  acc.SealTo(window.end);
  restored.SealTo(window.end);
  const auto a = acc.BuildInput(window);
  const auto b = restored.BuildInput(window);
  ASSERT_TRUE(a.has_transactions && b.has_transactions);
  EXPECT_EQ(a.transactions, b.transactions);
  for (std::size_t u = 0; u < fx.model.num_users(); ++u) {
    EXPECT_EQ(a.cooc[u].active, b.cooc[u].active) << "user " << u;
    EXPECT_EQ(a.cooc[u].pairs, b.cooc[u].pairs) << "user " << u;
  }
}

TEST(DeltaAccumulator, DeserializeRejectsMalformedInputUnchanged) {
  Fixture fx;
  DeltaAccumulator donor{fx.model, DeltaMineConfig{true, 8}, 1};
  trace::InvocationTrace trace{fx.model.num_functions(),
                               TimeRange{0, kHorizon}};
  Drive(fx, donor, trace, 0, 80);
  donor.SealTo(80);
  donor.Commit(80, /*anchored=*/false);
  const std::string good = donor.Serialize();
  ASSERT_NE(good.find("end\n"), std::string::npos);

  struct Case {
    const char* name;
    std::string text;
  };
  const std::vector<Case> cases{
      {"empty", ""},
      {"wrong header", "delta-accumulator-v9\nmeta,0,0,-1,0,1\nend\n"},
      {"missing end sentinel",
       good.substr(0, good.size() - std::string{"end\n"}.size())},
      {"trailing junk after end", good + "run,0,9:9\n"},
      {"window-minutes mismatch",
       "delta-accumulator-v1\nmeta,0,0,-1,0,2\nend\n"},
      {"sealed before begin", "delta-accumulator-v1\nmeta,10,5,-1,0,1\nend\n"},
      {"negative store begin",
       "delta-accumulator-v1\nmeta,-3,0,-1,0,1\nend\n"},
      {"function out of range",
       "delta-accumulator-v1\nmeta,0,0,-1,0,1\nrun,99,5:1\nend\n"},
      {"duplicate function run",
       "delta-accumulator-v1\nmeta,0,0,-1,0,1\nrun,0,5:1\nrun,0,7:1\nend\n"},
      {"non-ascending minutes",
       "delta-accumulator-v1\nmeta,0,0,-1,0,1\nrun,0,7:1,5:1\nend\n"},
      {"zero count", "delta-accumulator-v1\nmeta,0,0,-1,0,1\nrun,0,5:0\nend\n"},
      {"count overflows uint32",
       "delta-accumulator-v1\nmeta,0,0,-1,0,1\nrun,0,5:4294967296\nend\n"},
      {"minute below store begin",
       "delta-accumulator-v1\nmeta,10,10,-1,0,1\nrun,0,5:1\nend\n"},
      {"garbage meta", "delta-accumulator-v1\nmeta,x,y,z,w,v\nend\n"},
  };
  for (const auto& c : cases) {
    DeltaAccumulator victim{fx.model, DeltaMineConfig{true, 8}, 1};
    ASSERT_TRUE(victim.Deserialize(good)) << c.name;
    const std::string before = victim.Serialize();
    EXPECT_FALSE(victim.Deserialize(c.text)) << c.name;
    EXPECT_EQ(victim.Serialize(), before) << c.name;
  }

  // Torn writes: every prefix of a valid snapshot must be rejected (the
  // "end" sentinel is the last line, so no proper prefix parses).
  for (const std::size_t cut :
       {std::size_t{1}, good.size() / 4, good.size() / 2,
        good.size() - 2, good.size() - 1}) {
    DeltaAccumulator victim{fx.model, DeltaMineConfig{true, 8}, 1};
    EXPECT_FALSE(victim.Deserialize(good.substr(0, cut))) << "cut " << cut;
  }
}

TEST(DeltaAccumulator, RebuildFromTraceMatchesStreamedState) {
  Fixture fx;
  DeltaAccumulator streamed{fx.model, DeltaMineConfig{true, 8}, 1};
  trace::InvocationTrace trace{fx.model.num_functions(),
                               TimeRange{0, kHorizon}};
  Drive(fx, streamed, trace, 0, 200);
  trace.Finalize();
  streamed.SealTo(200);
  streamed.EvictTo(60);

  DeltaAccumulator rebuilt{fx.model, DeltaMineConfig{true, 8}, 1};
  rebuilt.RebuildFromTrace(trace, 60);
  rebuilt.SealTo(200);

  const TimeRange window{60, 200};
  const auto a = streamed.BuildInput(window);
  const auto b = rebuilt.BuildInput(window);
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(streamed.Serialize(), rebuilt.Serialize());
}

}  // namespace
}  // namespace defuse::mining
