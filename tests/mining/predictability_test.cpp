#include "mining/predictability.hpp"

#include <gtest/gtest.h>

namespace defuse::mining {
namespace {

constexpr TimeRange kRange{0, 10000};

trace::InvocationTrace PeriodicTrace(MinuteDelta period,
                                     std::size_t num_functions = 1) {
  trace::InvocationTrace t{num_functions, kRange};
  for (Minute m = 0; m < kRange.end; m += period) {
    t.Add(FunctionId{0}, m);
  }
  t.Finalize();
  return t;
}

TEST(BuildItHistogram, CountsGaps) {
  auto t = PeriodicTrace(10);
  const auto hist = BuildItHistogram(t, FunctionId{0}, kRange);
  EXPECT_EQ(hist.total_in_range(), 999u);
  EXPECT_EQ(hist.counts()[10], 999u);
}

TEST(BuildItHistogram, RespectsRange) {
  auto t = PeriodicTrace(10);
  const auto hist = BuildItHistogram(t, FunctionId{0}, TimeRange{0, 101});
  EXPECT_EQ(hist.total(), 10u);
}

TEST(BuildGroupItHistogram, MergesGroupActivity) {
  trace::InvocationTrace t{2, kRange};
  // f0 fires at even hundreds, f1 at odd hundreds: the group fires every
  // 100 minutes even though each function fires every 200.
  for (Minute m = 0; m < kRange.end; m += 200) t.Add(FunctionId{0}, m);
  for (Minute m = 100; m < kRange.end; m += 200) t.Add(FunctionId{1}, m);
  t.Finalize();
  const std::vector<FunctionId> group{FunctionId{0}, FunctionId{1}};
  const auto hist = BuildGroupItHistogram(t, group, kRange);
  EXPECT_EQ(hist.counts()[100], hist.total_in_range());
}

TEST(IsPredictable, PeriodicFunctionIsPredictable) {
  auto t = PeriodicTrace(15);
  const auto hist = BuildItHistogram(t, FunctionId{0}, kRange);
  EXPECT_TRUE(IsPredictable(hist));
}

TEST(IsPredictable, UniformSpreadIsUnpredictable) {
  // One observation in each bin: perfectly flat histogram, CV = 0.
  stats::Histogram hist{240, 1};
  for (MinuteDelta v = 0; v < 240; ++v) hist.Add(v);
  EXPECT_FALSE(IsPredictable(hist));
}

TEST(IsPredictable, TooFewObservationsIsUnpredictable) {
  stats::Histogram hist{240, 1};
  hist.Add(10);  // a single peaked observation, but only one
  PredictabilityConfig cfg;
  cfg.min_observations = 2;
  EXPECT_FALSE(IsPredictable(hist, cfg));
  hist.Add(10);
  EXPECT_TRUE(IsPredictable(hist, cfg));
}

TEST(IsPredictable, ThresholdIsConfigurable) {
  stats::Histogram hist{16, 1};
  hist.AddCount(3, 100);  // CV = sqrt(15) ~ 3.87
  PredictabilityConfig strict;
  strict.cv_threshold = 5.0;
  EXPECT_FALSE(IsPredictable(hist, strict));
  PredictabilityConfig loose;
  loose.cv_threshold = 2.0;
  EXPECT_TRUE(IsPredictable(hist, loose));
}

TEST(ClassifyFunctions, SeparatesPeriodicFromPoissonLike) {
  trace::WorkloadModel model;
  const UserId u = model.AddUser("u");
  const AppId a = model.AddApp(u, "a");
  model.AddFunction(a, "periodic");
  model.AddFunction(a, "random");
  model.AddFunction(a, "silent");

  trace::InvocationTrace t{3, kRange};
  for (Minute m = 0; m < kRange.end; m += 20) t.Add(FunctionId{0}, m);
  // A deterministic "random-looking" spread: strides walking all residues.
  Minute m = 0;
  int k = 0;
  while (m < kRange.end) {
    t.Add(FunctionId{1}, m);
    m += 1 + (k * 37) % 113;
    ++k;
  }
  t.Finalize();

  const auto report = ClassifyFunctions(t, model, kRange);
  ASSERT_EQ(report.predictable.size(), 3u);
  EXPECT_TRUE(report.predictable[0]);
  EXPECT_FALSE(report.predictable[1]);
  EXPECT_FALSE(report.predictable[2]);  // no data -> unpredictable
  EXPECT_GT(report.cv[0], report.cv[1]);
}

TEST(ClassifyFunctions, CvValuesAreExposed) {
  trace::WorkloadModel model;
  const UserId u = model.AddUser("u");
  const AppId a = model.AddApp(u, "a");
  model.AddFunction(a, "f");
  auto t = PeriodicTrace(10);
  const auto report = ClassifyFunctions(t, model, kRange);
  const auto hist = BuildItHistogram(t, FunctionId{0}, kRange);
  EXPECT_DOUBLE_EQ(report.cv[0], hist.BinCountCv());
}

}  // namespace
}  // namespace defuse::mining
