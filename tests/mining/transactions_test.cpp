#include "mining/transactions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>

namespace defuse::mining {
namespace {

/// user0 owns f0..f2 (app0); user1 owns f3 (app1).
struct Fixture {
  trace::WorkloadModel model;
  UserId u0, u1;

  Fixture() {
    u0 = model.AddUser("u0");
    u1 = model.AddUser("u1");
    const AppId a0 = model.AddApp(u0, "a0");
    const AppId a1 = model.AddApp(u1, "a1");
    model.AddFunction(a0, "f0");
    model.AddFunction(a0, "f1");
    model.AddFunction(a0, "f2");
    model.AddFunction(a1, "f3");
  }
};

TEST(BuildUserTransactions, GroupsCoActiveFunctions) {
  Fixture fx;
  trace::InvocationTrace trace{4, TimeRange{0, 100}};
  trace.Add(FunctionId{0}, 5);
  trace.Add(FunctionId{1}, 5);
  trace.Add(FunctionId{2}, 50);
  trace.Add(FunctionId{0}, 50);
  trace.Finalize();
  const auto txs =
      BuildUserTransactions(trace, fx.model, fx.u0, TimeRange{0, 100});
  ASSERT_EQ(txs.size(), 2u);
  EXPECT_EQ(txs[0], (Transaction{FunctionId{0}, FunctionId{1}}));
  EXPECT_EQ(txs[1], (Transaction{FunctionId{0}, FunctionId{2}}));
}

TEST(BuildUserTransactions, SkipsSingletonWindows) {
  Fixture fx;
  trace::InvocationTrace trace{4, TimeRange{0, 100}};
  trace.Add(FunctionId{0}, 5);
  trace.Finalize();
  EXPECT_TRUE(
      BuildUserTransactions(trace, fx.model, fx.u0, TimeRange{0, 100}).empty());
}

TEST(BuildUserTransactions, MinItemsOneKeepsSingletons) {
  Fixture fx;
  trace::InvocationTrace trace{4, TimeRange{0, 100}};
  trace.Add(FunctionId{0}, 5);
  trace.Finalize();
  TransactionConfig cfg;
  cfg.min_items = 1;
  const auto txs =
      BuildUserTransactions(trace, fx.model, fx.u0, TimeRange{0, 100}, cfg);
  ASSERT_EQ(txs.size(), 1u);
  EXPECT_EQ(txs[0], (Transaction{FunctionId{0}}));
}

TEST(BuildUserTransactions, IgnoresOtherUsersFunctions) {
  Fixture fx;
  trace::InvocationTrace trace{4, TimeRange{0, 100}};
  trace.Add(FunctionId{0}, 5);
  trace.Add(FunctionId{3}, 5);  // user1's function, same minute
  trace.Finalize();
  EXPECT_TRUE(
      BuildUserTransactions(trace, fx.model, fx.u0, TimeRange{0, 100}).empty());
}

TEST(BuildUserTransactions, WiderWindowsMergeMinutes) {
  Fixture fx;
  trace::InvocationTrace trace{4, TimeRange{0, 100}};
  trace.Add(FunctionId{0}, 10);
  trace.Add(FunctionId{1}, 14);  // same 5-minute window [10,15)
  trace.Finalize();
  TransactionConfig cfg;
  cfg.window_minutes = 5;
  const auto txs =
      BuildUserTransactions(trace, fx.model, fx.u0, TimeRange{0, 100}, cfg);
  ASSERT_EQ(txs.size(), 1u);
  EXPECT_EQ(txs[0], (Transaction{FunctionId{0}, FunctionId{1}}));
}

TEST(BuildUserTransactions, RespectsRange) {
  Fixture fx;
  trace::InvocationTrace trace{4, TimeRange{0, 100}};
  trace.Add(FunctionId{0}, 5);
  trace.Add(FunctionId{1}, 5);
  trace.Add(FunctionId{0}, 80);
  trace.Add(FunctionId{1}, 80);
  trace.Finalize();
  const auto txs =
      BuildUserTransactions(trace, fx.model, fx.u0, TimeRange{0, 50});
  EXPECT_EQ(txs.size(), 1u);
}

TEST(BuildUserTransactions, DuplicateInvocationsInWindowAppearOnce) {
  Fixture fx;
  trace::InvocationTrace trace{4, TimeRange{0, 100}};
  trace.Add(FunctionId{0}, 5, 10);
  trace.Add(FunctionId{1}, 5, 3);
  trace.Finalize();
  const auto txs =
      BuildUserTransactions(trace, fx.model, fx.u0, TimeRange{0, 100});
  ASSERT_EQ(txs.size(), 1u);
  EXPECT_EQ(txs[0].size(), 2u);
}

std::vector<FunctionId> MakeUniverse(std::uint32_t n) {
  std::vector<FunctionId> fns;
  for (std::uint32_t i = 0; i < n; ++i) fns.push_back(FunctionId{i});
  return fns;
}

TEST(SplitUniverse, SmallUniverseIsOneWindow) {
  Rng rng{1};
  const auto windows = SplitUniverse(MakeUniverse(10), 20, 10, rng).value();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].functions.size(), 10u);
  EXPECT_TRUE(std::is_sorted(windows[0].functions.begin(),
                             windows[0].functions.end()));
}

TEST(SplitUniverse, EmptyUniverse) {
  Rng rng{1};
  EXPECT_TRUE(SplitUniverse({}, 20, 10, rng).value().empty());
}

TEST(SplitUniverse, WindowsHaveExpectedSizesAndStride) {
  Rng rng{2};
  const auto windows = SplitUniverse(MakeUniverse(45), 20, 10, rng).value();
  // Starts at 0, 10, 20, 30 (last one reaches the end: 30+15).
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_EQ(windows[0].functions.size(), 20u);
  EXPECT_EQ(windows[1].functions.size(), 20u);
  EXPECT_EQ(windows[2].functions.size(), 20u);
  EXPECT_EQ(windows[3].functions.size(), 15u);
}

TEST(SplitUniverse, EveryFunctionAppearsAtLeastOnce) {
  Rng rng{3};
  const auto universe = MakeUniverse(57);
  const auto windows = SplitUniverse(universe, 20, 10, rng).value();
  std::set<FunctionId> seen;
  for (const auto& w : windows) {
    seen.insert(w.functions.begin(), w.functions.end());
  }
  EXPECT_EQ(seen.size(), universe.size());
}

TEST(SplitUniverse, OverlapBetweenAdjacentWindows) {
  Rng rng{4};
  const auto windows = SplitUniverse(MakeUniverse(40), 20, 10, rng).value();
  ASSERT_GE(windows.size(), 2u);
  // Stride < window: adjacent windows share exactly window - stride fns.
  std::vector<FunctionId> inter;
  std::set_intersection(windows[0].functions.begin(),
                        windows[0].functions.end(),
                        windows[1].functions.begin(),
                        windows[1].functions.end(),
                        std::back_inserter(inter));
  EXPECT_EQ(inter.size(), 10u);
}

// Regression: stride > window_size used to be only an assert, so release
// builds silently dropped the functions between consecutive windows from
// every split. It must be a hard kInvalidArgument now.
TEST(SplitUniverse, RejectsStrideWiderThanWindow) {
  Rng rng{7};
  const auto result = SplitUniverse(MakeUniverse(45), 10, 11, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
}

TEST(SplitUniverse, RejectsZeroStrideAndZeroWindow) {
  Rng rng{8};
  EXPECT_FALSE(SplitUniverse(MakeUniverse(5), 10, 0, rng).ok());
  EXPECT_FALSE(SplitUniverse(MakeUniverse(5), 0, 1, rng).ok());
}

// The property the rejected configs would violate: with any accepted
// (window, stride) pair, no function is lost by the split.
TEST(SplitUniverse, AcceptedConfigsCoverEveryFunction) {
  for (const auto& [window, stride] :
       {std::pair<std::size_t, std::size_t>{20, 10}, {20, 20}, {7, 3},
        {3, 1}, {1, 1}}) {
    Rng rng{9};
    const auto universe = MakeUniverse(45);
    const auto windows = SplitUniverse(universe, window, stride, rng).value();
    std::set<FunctionId> seen;
    for (const auto& w : windows) {
      seen.insert(w.functions.begin(), w.functions.end());
    }
    EXPECT_EQ(seen.size(), universe.size())
        << "window=" << window << " stride=" << stride;
  }
}

TEST(SplitUniverse, ShuffleIsSeedDependent) {
  Rng rng1{5}, rng2{6};
  const auto w1 = SplitUniverse(MakeUniverse(40), 20, 10, rng1).value();
  const auto w2 = SplitUniverse(MakeUniverse(40), 20, 10, rng2).value();
  EXPECT_NE(w1[0].functions, w2[0].functions);
}

TEST(ProjectTransactions, KeepsOnlyWindowMembers) {
  const std::vector<Transaction> txs{
      {FunctionId{0}, FunctionId{1}, FunctionId{5}},
      {FunctionId{1}, FunctionId{5}},
      {FunctionId{0}, FunctionId{9}}};
  UniverseWindow window{.functions = {FunctionId{0}, FunctionId{1}}};
  const auto projected = ProjectTransactions(txs, window);
  ASSERT_EQ(projected.size(), 1u);
  EXPECT_EQ(projected[0], (Transaction{FunctionId{0}, FunctionId{1}}));
}

TEST(ProjectTransactions, MinItemsOneKeepsPartialMatches) {
  const std::vector<Transaction> txs{{FunctionId{0}, FunctionId{5}}};
  UniverseWindow window{.functions = {FunctionId{0}}};
  EXPECT_EQ(ProjectTransactions(txs, window, 1).size(), 1u);
  EXPECT_TRUE(ProjectTransactions(txs, window, 2).empty());
}

}  // namespace
}  // namespace defuse::mining
