#include "core/defuse.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/experiment.hpp"
#include "trace/generator.hpp"

namespace defuse::core {
namespace {

trace::SyntheticWorkload TestWorkload() {
  auto cfg = trace::GeneratorConfig::Tiny();
  cfg.num_users = 25;
  cfg.seed = 31;
  return trace::GenerateWorkload(cfg);
}

TEST(MineDependencies, ProducesSetsCoveringAllFunctions) {
  const auto w = TestWorkload();
  const auto [train, eval] = SplitTrainEval(w.trace.horizon());
  const auto mining = MineDependencies(w.trace, w.model, train).value();
  std::size_t covered = 0;
  for (const auto& set : mining.sets) covered += set.functions.size();
  EXPECT_EQ(covered, w.model.num_functions());
  EXPECT_GT(mining.num_frequent_itemsets, 0u);
  EXPECT_GT(mining.num_weak_dependencies, 0u);
}

TEST(MineDependencies, DependencySetsNeverCrossUsers) {
  const auto w = TestWorkload();
  const auto [train, eval] = SplitTrainEval(w.trace.horizon());
  const auto mining = MineDependencies(w.trace, w.model, train).value();
  for (const auto& set : mining.sets) {
    const UserId user = w.model.function(set.functions.front()).user;
    for (const FunctionId fn : set.functions) {
      EXPECT_EQ(w.model.function(fn).user, user)
          << "set " << set.id << " crosses users";
    }
  }
}

/// A planted core group is recovered when all of its members (which
/// co-fire on every trigger) land in the same dependency set. FP-Growth
/// can only find groups whose firing frequency clears the support
/// threshold *relative to the owning user's transaction count*, so the
/// hit rate is measured over those.
std::pair<std::size_t, std::size_t> GroupRecovery(
    const trace::SyntheticWorkload& w, TimeRange train,
    const DefuseConfig& config) {
  const auto mining = MineDependencies(w.trace, w.model, train, config).value();
  const auto fn_to_set =
      graph::FunctionToSetIndex(mining.sets, w.model.num_functions());
  std::size_t eligible_groups = 0, recovered = 0;
  for (const auto& group : w.truth.strong_groups) {
    const UserId user = w.model.function(group.front()).user;
    const auto transactions = mining::BuildUserTransactions(
        w.trace, w.model, user, train, config.MakeTransactionConfig());
    const double group_minutes = static_cast<double>(
        w.trace.ActiveMinutes(group.front(), train));
    if (transactions.empty() ||
        group_minutes <
            1.25 * config.support * static_cast<double>(transactions.size())) {
      continue;  // below (or too close to) the support threshold
    }
    ++eligible_groups;
    const auto set = fn_to_set[group.front().value()];
    if (std::all_of(group.begin(), group.end(), [&](FunctionId fn) {
          return fn_to_set[fn.value()] == set;
        })) {
      ++recovered;
    }
  }
  return {recovered, eligible_groups};
}

TEST(MineDependencies, RecoversAllEligibleGroupsWithoutWindowing) {
  // With the universe-window splitting disabled, every group above the
  // support threshold must be recovered: this validates the miner itself.
  const auto w = TestWorkload();
  const auto [train, eval] = SplitTrainEval(w.trace.horizon());
  DefuseConfig config;
  config.universe_window = 1u << 20;  // effectively unbounded
  config.universe_stride = 1u << 19;
  const auto [recovered, eligible] = GroupRecovery(w, train, config);
  ASSERT_GT(eligible, 10u);
  EXPECT_EQ(recovered, eligible);
}

TEST(MineDependencies, WindowingLosesOnlyAModestFractionOfGroups) {
  // With the paper's shuffle + window-20/stride-10 trick (§V.A), two
  // members of a group can land in disjoint FP-Growth windows for users
  // with more than 20 functions. The recovery rate documents that cost;
  // it must stay the dominant behaviour, not the exception.
  const auto w = TestWorkload();
  const auto [train, eval] = SplitTrainEval(w.trace.horizon());
  const auto [recovered, eligible] = GroupRecovery(w, train, DefuseConfig{});
  ASSERT_GT(eligible, 10u);
  EXPECT_GT(static_cast<double>(recovered) / static_cast<double>(eligible),
            0.7);
}

TEST(MineDependencies, RecoversManyPlantedWeakLinks) {
  const auto w = TestWorkload();
  const auto [train, eval] = SplitTrainEval(w.trace.horizon());
  const auto mining = MineDependencies(w.trace, w.model, train).value();
  const auto fn_to_set =
      graph::FunctionToSetIndex(mining.sets, w.model.num_functions());

  std::size_t active_links = 0, joined = 0;
  for (const auto& [from, to] : w.truth.weak_links) {
    if (w.trace.ActiveMinutes(from, train) < 10) continue;
    ++active_links;
    if (fn_to_set[from.value()] == fn_to_set[to.value()]) ++joined;
  }
  ASSERT_GT(active_links, 3u);
  EXPECT_GT(static_cast<double>(joined) / static_cast<double>(active_links),
            0.6);
}

TEST(MineDependencies, StrongOnlyHasNoWeakEdges) {
  const auto w = TestWorkload();
  const auto [train, eval] = SplitTrainEval(w.trace.horizon());
  DefuseConfig cfg;
  cfg.use_weak = false;
  const auto mining = MineDependencies(w.trace, w.model, train, cfg).value();
  EXPECT_EQ(mining.num_weak_dependencies, 0u);
  EXPECT_EQ(mining.graph.num_weak_edges(), 0u);
  EXPECT_GT(mining.graph.num_strong_edges(), 0u);
}

TEST(MineDependencies, WeakOnlyHasNoStrongEdges) {
  const auto w = TestWorkload();
  const auto [train, eval] = SplitTrainEval(w.trace.horizon());
  DefuseConfig cfg;
  cfg.use_strong = false;
  const auto mining = MineDependencies(w.trace, w.model, train, cfg).value();
  EXPECT_EQ(mining.num_frequent_itemsets, 0u);
  EXPECT_EQ(mining.graph.num_strong_edges(), 0u);
  EXPECT_GT(mining.graph.num_weak_edges(), 0u);
}

TEST(MineDependencies, CombinedGraphHasFewerOrEqualSets) {
  // Adding weak edges can only merge components (paper §V.F: S+W makes
  // bigger connected components).
  const auto w = TestWorkload();
  const auto [train, eval] = SplitTrainEval(w.trace.horizon());
  DefuseConfig strong_only;
  strong_only.use_weak = false;
  const auto strong = MineDependencies(w.trace, w.model, train, strong_only).value();
  const auto both = MineDependencies(w.trace, w.model, train).value();
  EXPECT_LE(both.sets.size(), strong.sets.size());
}

TEST(MineDependencies, HigherSupportYieldsFewerStrongEdges) {
  const auto w = TestWorkload();
  const auto [train, eval] = SplitTrainEval(w.trace.horizon());
  DefuseConfig loose;
  loose.support = 0.1;
  loose.use_weak = false;
  DefuseConfig strict;
  strict.support = 0.6;
  strict.use_weak = false;
  const auto a = MineDependencies(w.trace, w.model, train, loose).value();
  const auto b = MineDependencies(w.trace, w.model, train, strict).value();
  EXPECT_GE(a.num_frequent_itemsets, b.num_frequent_itemsets);
}

TEST(MineDependencies, IsDeterministic) {
  const auto w = TestWorkload();
  const auto [train, eval] = SplitTrainEval(w.trace.horizon());
  const auto a = MineDependencies(w.trace, w.model, train).value();
  const auto b = MineDependencies(w.trace, w.model, train).value();
  ASSERT_EQ(a.sets.size(), b.sets.size());
  for (std::size_t i = 0; i < a.sets.size(); ++i) {
    EXPECT_EQ(a.sets[i].functions, b.sets[i].functions);
  }
}

TEST(MakeDefuseScheduler, SeedsHistogramsFromTraining) {
  const auto w = TestWorkload();
  const auto [train, eval] = SplitTrainEval(w.trace.horizon());
  const auto mining = MineDependencies(w.trace, w.model, train).value();
  const auto policy = MakeDefuseScheduler(w.trace, mining, train);
  EXPECT_EQ(policy->unit_map().num_units(), mining.sets.size());
  // At least one active unit must have a seeded histogram.
  std::size_t seeded = 0;
  for (std::size_t u = 0; u < policy->unit_map().num_units(); ++u) {
    if (policy->histogram(UnitId{static_cast<std::uint32_t>(u)}).total() > 0) {
      ++seeded;
    }
  }
  EXPECT_GT(seeded, mining.sets.size() / 2);
}

TEST(MakeBaselineSchedulers, GranularitiesMatch) {
  const auto w = TestWorkload();
  const auto [train, eval] = SplitTrainEval(w.trace.horizon());
  const auto hf = MakeHybridFunctionScheduler(w.trace, w.model, train);
  EXPECT_EQ(hf->unit_map().num_units(), w.model.num_functions());
  const auto ha = MakeHybridApplicationScheduler(w.trace, w.model, train);
  EXPECT_EQ(ha->unit_map().num_units(), w.model.num_apps());
}

TEST(SplitTrainEval, TwelveTwoSplitOfFourteenDays) {
  const auto [train, eval] =
      SplitTrainEval(TimeRange{0, 14 * kMinutesPerDay});
  EXPECT_EQ(train.begin, 0);
  EXPECT_EQ(train.end, 12 * kMinutesPerDay);
  EXPECT_EQ(eval.begin, 12 * kMinutesPerDay);
  EXPECT_EQ(eval.end, 14 * kMinutesPerDay);
}

}  // namespace
}  // namespace defuse::core
