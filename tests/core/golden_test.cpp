// Golden full-pipeline regression test: one fixed seed, exact structural
// expectations, bounded metric expectations. If an intentional algorithm
// change shifts these numbers, update them deliberately — that is the
// point of the test.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "trace/generator.hpp"

namespace defuse::core {
namespace {

class GoldenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace::GeneratorConfig cfg;  // defaults, fixed seed
    cfg.num_users = 40;
    cfg.seed = 123456;
    cfg.horizon_minutes = 7 * kMinutesPerDay;
    workload_ = new trace::SyntheticWorkload{trace::GenerateWorkload(cfg)};
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }
  static trace::SyntheticWorkload* workload_;
};

trace::SyntheticWorkload* GoldenTest::workload_ = nullptr;

TEST_F(GoldenTest, WorkloadStructureIsStable) {
  // The generator is specified to be a pure function of (config, seed);
  // these exact counts pin that contract.
  EXPECT_EQ(workload_->model.num_users(), 40u);
  EXPECT_EQ(workload_->model.num_apps(), 119u);
  EXPECT_EQ(workload_->model.num_functions(), 1040u);
}

TEST_F(GoldenTest, TrafficVolumeIsStable) {
  const auto total =
      workload_->trace.TotalInvocations(workload_->trace.horizon());
  EXPECT_GT(total, 100000u);
  EXPECT_LT(total, 3000000u);
}

TEST_F(GoldenTest, PipelineMetricsWithinExpectedBands) {
  const auto [train, eval] = SplitTrainEval(workload_->trace.horizon());
  ExperimentDriver driver{workload_->model, workload_->trace, train, eval};

  const auto& mining = driver.MiningFor(Method::kDefuse);
  // Coverage is exact; set counts may only drift with algorithm changes.
  std::size_t covered = 0;
  for (const auto& s : mining.sets) covered += s.functions.size();
  EXPECT_EQ(covered, workload_->model.num_functions());
  EXPECT_GT(mining.num_frequent_itemsets, 50u);
  EXPECT_GT(mining.num_weak_dependencies, 20u);
  EXPECT_LT(mining.sets.size(), workload_->model.num_functions());

  const auto ha = driver.Run(Method::kHybridApplication, 1.0);
  const auto hf = driver.Run(Method::kHybridFunction, 1.0);
  // Best Defuse point inside HA's memory budget (the paper's comparison
  // procedure) must beat HA on p75 — the headline, as a regression band.
  MethodResult defuse = driver.Run(Method::kDefuse, 1.0);
  for (const double a : {2.0, 3.0, 4.0, 6.0}) {
    const auto r = driver.Run(Method::kDefuse, a);
    if (r.avg_memory <= ha.avg_memory &&
        r.p75_cold_start_rate < defuse.p75_cold_start_rate) {
      defuse = r;
    }
  }
  EXPECT_LT(defuse.p75_cold_start_rate, ha.p75_cold_start_rate);
  EXPECT_LT(defuse.avg_memory, ha.avg_memory);
  EXPECT_LT(defuse.p75_cold_start_rate, hf.p75_cold_start_rate);
  EXPECT_LT(hf.avg_memory, defuse.avg_memory);
  // Loose absolute bands (catch gross regressions, tolerate tuning).
  EXPECT_GT(defuse.p75_cold_start_rate, 0.0);
  EXPECT_LT(defuse.p75_cold_start_rate, 0.7);
  EXPECT_GT(ha.p75_cold_start_rate, 0.1);
}

TEST_F(GoldenTest, RepeatRunsAreBitwiseIdentical) {
  const auto [train, eval] = SplitTrainEval(workload_->trace.horizon());
  ExperimentDriver d1{workload_->model, workload_->trace, train, eval};
  ExperimentDriver d2{workload_->model, workload_->trace, train, eval};
  const auto r1 = d1.Run(Method::kDefuse);
  const auto r2 = d2.Run(Method::kDefuse);
  EXPECT_EQ(r1.cold_start_rates, r2.cold_start_rates);
  EXPECT_EQ(r1.loading_per_minute, r2.loading_per_minute);
  EXPECT_DOUBLE_EQ(r1.avg_memory, r2.avg_memory);
}

}  // namespace
}  // namespace defuse::core
