// Failure-injection / pathological-workload robustness: the pipeline must
// behave sensibly (no crashes, sane metrics) on degenerate inputs that
// real platforms produce — silent functions, single-function users,
// all-at-once bursts, and empty windows.
#include <gtest/gtest.h>

#include "core/adaptive.hpp"
#include "core/defuse.hpp"
#include "core/experiment.hpp"

namespace defuse::core {
namespace {

TEST(Robustness, CompletelySilentWorkload) {
  trace::WorkloadModel model;
  const UserId u = model.AddUser("u");
  const AppId a = model.AddApp(u, "a");
  model.AddFunction(a, "f0");
  model.AddFunction(a, "f1");
  trace::InvocationTrace trace{2, TimeRange{0, 1000}};
  trace.Finalize();

  const auto mining = MineDependencies(trace, model, TimeRange{0, 500}).value();
  EXPECT_EQ(mining.num_frequent_itemsets, 0u);
  EXPECT_EQ(mining.num_weak_dependencies, 0u);
  EXPECT_EQ(mining.sets.size(), 2u);  // singletons

  ExperimentDriver driver{model, trace, TimeRange{0, 500},
                          TimeRange{500, 1000}};
  const auto r = driver.Run(Method::kDefuse);
  EXPECT_TRUE(r.cold_start_rates.empty());
  EXPECT_DOUBLE_EQ(r.avg_memory, 0.0);
  EXPECT_DOUBLE_EQ(r.event_cold_fraction, 0.0);
}

TEST(Robustness, SingleFunctionSingleInvocation) {
  trace::WorkloadModel model;
  const UserId u = model.AddUser("u");
  const AppId a = model.AddApp(u, "a");
  const FunctionId f = model.AddFunction(a, "f");
  trace::InvocationTrace trace{1, TimeRange{0, 1000}};
  trace.Add(f, 700);
  trace.Finalize();

  ExperimentDriver driver{model, trace, TimeRange{0, 500},
                          TimeRange{500, 1000}};
  for (const auto method :
       {Method::kDefuse, Method::kHybridFunction, Method::kHybridApplication,
        Method::kFixedKeepAlive}) {
    const auto r = driver.Run(method);
    ASSERT_EQ(r.cold_start_rates.size(), 1u) << MethodName(method);
    EXPECT_DOUBLE_EQ(r.cold_start_rates[0], 1.0);  // first touch is cold
  }
}

TEST(Robustness, EverythingFiresEveryMinute) {
  // Maximum-density workload: all functions, all minutes.
  trace::WorkloadModel model;
  const UserId u = model.AddUser("u");
  const AppId a = model.AddApp(u, "a");
  constexpr std::uint32_t kN = 8;
  for (std::uint32_t f = 0; f < kN; ++f) {
    model.AddFunction(a, "f" + std::to_string(f));
  }
  trace::InvocationTrace trace{kN, TimeRange{0, 2000}};
  for (std::uint32_t f = 0; f < kN; ++f) {
    for (Minute t = 0; t < 2000; ++t) trace.Add(FunctionId{f}, t);
  }
  trace.Finalize();

  const auto mining = MineDependencies(trace, model, TimeRange{0, 1000}).value();
  // All functions co-fire constantly -> one big strong component.
  EXPECT_EQ(mining.sets.size(), 1u);
  EXPECT_EQ(mining.sets[0].functions.size(), kN);

  ExperimentDriver driver{model, trace, TimeRange{0, 1000},
                          TimeRange{1000, 2000}};
  const auto r = driver.Run(Method::kDefuse);
  // One cold start (the first minute), everything else warm.
  for (const double rate : r.cold_start_rates) EXPECT_LT(rate, 0.01);
  EXPECT_NEAR(r.avg_memory, kN, 0.5);
}

TEST(Robustness, TrainWindowEmpty) {
  trace::WorkloadModel model;
  const UserId u = model.AddUser("u");
  const AppId a = model.AddApp(u, "a");
  const FunctionId f = model.AddFunction(a, "f");
  trace::InvocationTrace trace{1, TimeRange{0, 100}};
  trace.Add(f, 50);
  trace.Finalize();
  // Degenerate training range.
  const auto mining = MineDependencies(trace, model, TimeRange{0, 0}).value();
  EXPECT_EQ(mining.sets.size(), 1u);
  ExperimentDriver driver{model, trace, TimeRange{0, 0}, TimeRange{0, 100}};
  const auto r = driver.Run(Method::kDefuse);
  EXPECT_EQ(r.cold_start_rates.size(), 1u);
}

TEST(Robustness, ManyUsersOneFunctionEach) {
  trace::WorkloadModel model;
  trace::InvocationTrace trace{0, TimeRange{0, 0}};
  {
    constexpr std::uint32_t kUsers = 40;
    trace::InvocationTrace t{kUsers, TimeRange{0, 4000}};
    for (std::uint32_t i = 0; i < kUsers; ++i) {
      const UserId u = model.AddUser("u" + std::to_string(i));
      const AppId a = model.AddApp(u, "a" + std::to_string(i));
      const FunctionId f = model.AddFunction(a, "f" + std::to_string(i));
      for (Minute m = static_cast<Minute>(i); m < 4000;
           m += 20 + static_cast<Minute>(i)) {
        t.Add(f, m);
      }
    }
    t.Finalize();
    trace = std::move(t);
  }
  // No possible dependencies (one function per user).
  const auto mining = MineDependencies(trace, model, TimeRange{0, 2000}).value();
  EXPECT_EQ(mining.graph.edges().size(), 0u);
  EXPECT_EQ(mining.sets.size(), model.num_functions());
  ExperimentDriver driver{model, trace, TimeRange{0, 2000},
                          TimeRange{2000, 4000}};
  const auto defuse = driver.Run(Method::kDefuse);
  const auto hf = driver.Run(Method::kHybridFunction);
  // With all-singleton sets, Defuse degenerates to Hybrid-Function.
  EXPECT_EQ(defuse.num_units, hf.num_units);
  EXPECT_DOUBLE_EQ(defuse.p75_cold_start_rate, hf.p75_cold_start_rate);
  EXPECT_DOUBLE_EQ(defuse.avg_memory, hf.avg_memory);
}

TEST(Robustness, AdaptiveOnSilentSpan) {
  trace::WorkloadModel model;
  const UserId u = model.AddUser("u");
  const AppId a = model.AddApp(u, "a");
  model.AddFunction(a, "f");
  trace::InvocationTrace trace{1, TimeRange{0, 3 * kMinutesPerDay}};
  trace.Finalize();
  const auto result = RunAdaptive(
      model, trace, TimeRange{kMinutesPerDay, 3 * kMinutesPerDay});
  EXPECT_EQ(result.epochs.size(), 2u);
  EXPECT_TRUE(result.FunctionColdStartRates().empty());
}

TEST(ValidateDefuseConfig, AcceptsDefaults) {
  EXPECT_EQ(ValidateDefuseConfig(DefuseConfig{}), nullptr);
}

TEST(ValidateDefuseConfig, RejectsBadValues) {
  DefuseConfig c;
  c.use_strong = c.use_weak = false;
  EXPECT_NE(ValidateDefuseConfig(c), nullptr);
  c = DefuseConfig{};
  c.support = 0.0;
  EXPECT_NE(ValidateDefuseConfig(c), nullptr);
  c = DefuseConfig{};
  c.support = 1.5;
  EXPECT_NE(ValidateDefuseConfig(c), nullptr);
  c = DefuseConfig{};
  c.universe_stride = 50;  // > universe_window (20)
  EXPECT_NE(ValidateDefuseConfig(c), nullptr);
  c = DefuseConfig{};
  c.top_k = 0;
  EXPECT_NE(ValidateDefuseConfig(c), nullptr);
  c = DefuseConfig{};
  c.window_minutes = 0;
  EXPECT_NE(ValidateDefuseConfig(c), nullptr);
}

}  // namespace
}  // namespace defuse::core
