#include "core/adaptive.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "faults/injector.hpp"
#include "stats/descriptive.hpp"
#include "trace/generator.hpp"

namespace defuse::core {
namespace {

TEST(RunAdaptive, SplitsTheSpanIntoEpochs) {
  auto cfg = trace::GeneratorConfig::Tiny();
  cfg.num_users = 10;
  cfg.seed = 21;
  const auto w = trace::GenerateWorkload(cfg);  // 4-day horizon
  AdaptiveConfig adaptive;
  adaptive.remine_interval = kMinutesPerDay;
  adaptive.mining_window = 2 * kMinutesPerDay;
  const auto result = RunAdaptive(w.model, w.trace,
                                  TimeRange{2 * kMinutesPerDay,
                                            4 * kMinutesPerDay},
                                  adaptive);
  ASSERT_EQ(result.epochs.size(), 2u);
  EXPECT_EQ(result.epochs[0].simulated,
            (TimeRange{2 * kMinutesPerDay, 3 * kMinutesPerDay}));
  EXPECT_EQ(result.epochs[0].mined_from,
            (TimeRange{0, 2 * kMinutesPerDay}));
  EXPECT_EQ(result.epochs[1].mined_from,
            (TimeRange{kMinutesPerDay, 3 * kMinutesPerDay}));
}

TEST(RunAdaptive, PartialFinalEpochIsClipped) {
  auto cfg = trace::GeneratorConfig::Tiny();
  cfg.num_users = 6;
  cfg.seed = 22;
  const auto w = trace::GenerateWorkload(cfg);
  AdaptiveConfig adaptive;
  adaptive.remine_interval = kMinutesPerDay;
  const TimeRange span{2 * kMinutesPerDay,
                       3 * kMinutesPerDay + kMinutesPerHour};
  const auto result = RunAdaptive(w.model, w.trace, span, adaptive);
  ASSERT_EQ(result.epochs.size(), 2u);
  EXPECT_EQ(result.epochs[1].simulated.length(), kMinutesPerHour);
}

TEST(RunAdaptive, MiningWindowIsClippedAtTraceStart) {
  auto cfg = trace::GeneratorConfig::Tiny();
  cfg.num_users = 6;
  cfg.seed = 23;
  const auto w = trace::GenerateWorkload(cfg);
  AdaptiveConfig adaptive;
  adaptive.mining_window = 100 * kMinutesPerDay;  // longer than the trace
  const auto result = RunAdaptive(
      w.model, w.trace, TimeRange{kMinutesPerDay, 2 * kMinutesPerDay},
      adaptive);
  ASSERT_EQ(result.epochs.size(), 1u);
  EXPECT_EQ(result.epochs[0].mined_from, (TimeRange{0, kMinutesPerDay}));
}

TEST(RunAdaptive, AggregateRatesCoverInvokedFunctions) {
  auto cfg = trace::GeneratorConfig::Tiny();
  cfg.num_users = 10;
  cfg.seed = 24;
  const auto w = trace::GenerateWorkload(cfg);
  const TimeRange span{2 * kMinutesPerDay, 4 * kMinutesPerDay};
  const auto result = RunAdaptive(w.model, w.trace, span, AdaptiveConfig{});
  const auto rates = result.FunctionColdStartRates();
  std::size_t invoked_functions = 0;
  for (const auto& fn : w.model.functions()) {
    if (w.trace.ActiveMinutes(fn.id, span) > 0) ++invoked_functions;
  }
  EXPECT_EQ(rates.size(), invoked_functions);
  for (const double r : rates) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0 + 1e-9);
  }
  EXPECT_GT(result.AverageMemoryUsage(), 0.0);
}

TEST(RunAdaptive, AdaptsToAMidTraceDeployment) {
  // The scenario of examples/adaptive_daemon.cpp in miniature: a new
  // unpredictable workflow appears mid-trace, pinging a periodic common
  // service. Daily re-mining links it; a static miner trained before the
  // deployment cannot.
  trace::WorkloadModel model;
  const UserId user = model.AddUser("u");
  const AppId sa = model.AddApp(user, "svc");
  const FunctionId svc = model.AddFunction(sa, "svc-fn");
  const AppId na = model.AddApp(user, "new");
  const FunctionId new_fn = model.AddFunction(na, "new-fn");

  const TimeRange horizon{0, 8 * kMinutesPerDay};
  trace::InvocationTrace trace{2, horizon};
  Rng rng{5};
  for (Minute t = 0; t < horizon.end; t += 10) trace.Add(svc, t);
  // New workflow exists only from day 4, pinging svc on each firing.
  double t = 4.0 * kMinutesPerDay;
  while (t < static_cast<double>(horizon.end)) {
    trace.Add(new_fn, static_cast<Minute>(t));
    trace.Add(svc, static_cast<Minute>(t));
    t += 40.0 * rng.NextExponential(1.0);
  }
  trace.Finalize();

  // Adaptive: simulate days 5..8 with daily re-mining.
  const TimeRange span{5 * kMinutesPerDay, 8 * kMinutesPerDay};
  const auto adaptive = RunAdaptive(model, trace, span, AdaptiveConfig{});

  // Static: mined on days 0..4 (never saw new-fn).
  const auto static_mining =
      MineDependencies(trace, model, TimeRange{0, 4 * kMinutesPerDay}).value();
  const auto static_policy = MakeDefuseScheduler(
      trace, static_mining, TimeRange{0, 4 * kMinutesPerDay});
  const auto static_sim = sim::Simulate(trace, span, *static_policy);

  const auto static_unit = static_policy->unit_map().unit_of(new_fn);
  const double static_rate =
      static_cast<double>(
          static_sim.unit_cold_minutes[static_unit.value()]) /
      static_cast<double>(
          static_sim.unit_invoked_minutes[static_unit.value()]);

  std::uint64_t invoked = 0, cold = 0;
  for (const auto& epoch : adaptive.epochs) {
    invoked += epoch.function_counts[new_fn.value()].first;
    cold += epoch.function_counts[new_fn.value()].second;
  }
  ASSERT_GT(invoked, 0u);
  const double adaptive_rate =
      static_cast<double>(cold) / static_cast<double>(invoked);
  EXPECT_LT(adaptive_rate, 0.3);
  EXPECT_GT(static_rate, 0.6);
}

TEST(AdaptiveResult, EmptyResultIsWellBehaved) {
  AdaptiveResult result;
  EXPECT_TRUE(result.FunctionColdStartRates().empty());
  EXPECT_DOUBLE_EQ(result.AverageMemoryUsage(), 0.0);
  EXPECT_EQ(result.DegradedEpochs(), 0u);
  EXPECT_EQ(result.StaleGraphMinutes(), 0);
}

TEST(RunAdaptive, FaultFreeRunHasNoDegradedEpochs) {
  auto cfg = trace::GeneratorConfig::Tiny();
  cfg.num_users = 6;
  cfg.seed = 25;
  const auto w = trace::GenerateWorkload(cfg);
  const auto result =
      RunAdaptive(w.model, w.trace,
                  TimeRange{2 * kMinutesPerDay, 4 * kMinutesPerDay},
                  AdaptiveConfig{});
  EXPECT_EQ(result.DegradedEpochs(), 0u);
  EXPECT_EQ(result.StaleGraphMinutes(), 0);
  for (const auto& epoch : result.epochs) EXPECT_FALSE(epoch.degraded);
}

TEST(RunAdaptive, InjectedMiningFailuresDegradeExactlyThoseEpochs) {
  auto cfg = trace::GeneratorConfig::Tiny();
  cfg.num_users = 10;
  cfg.seed = 26;
  const auto w = trace::GenerateWorkload(cfg);
  faults::FaultProfile profile;
  profile.remine_failure_fraction = 1.0;  // every epoch's mine fails
  faults::FaultInjector injector{0, profile};
  AdaptiveConfig adaptive;
  adaptive.remine_fault = [&injector] {
    return injector.ShouldFail(faults::FaultSite::kRemine);
  };
  const TimeRange span{2 * kMinutesPerDay, 4 * kMinutesPerDay};
  const auto result = RunAdaptive(w.model, w.trace, span, adaptive);
  ASSERT_EQ(result.epochs.size(), 2u);
  EXPECT_EQ(result.DegradedEpochs(),
            injector.injected(faults::FaultSite::kRemine));
  EXPECT_EQ(result.DegradedEpochs(), 2u);
  // Each degraded epoch serves its whole simulated range stale.
  EXPECT_EQ(result.StaleGraphMinutes(), span.length());
  // No prior graph ever succeeded: the fallback is singleton sets.
  for (const auto& epoch : result.epochs) {
    EXPECT_TRUE(epoch.degraded);
    EXPECT_EQ(epoch.dependency_sets, w.model.num_functions());
    EXPECT_EQ(epoch.stale_graph_minutes, epoch.simulated.length());
  }
  // Rates stay well-formed under full degradation.
  for (const double r : result.FunctionColdStartRates()) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0 + 1e-9);
  }
}

TEST(RunAdaptive, DegradedEpochReusesLastGoodSets) {
  auto cfg = trace::GeneratorConfig::Tiny();
  cfg.num_users = 10;
  cfg.seed = 27;
  const auto w = trace::GenerateWorkload(cfg);
  const TimeRange span{kMinutesPerDay, 4 * kMinutesPerDay};  // 3 epochs

  // Baseline: which sets does epoch 0 mine?
  const auto baseline = RunAdaptive(w.model, w.trace, span, AdaptiveConfig{});
  ASSERT_EQ(baseline.epochs.size(), 3u);

  // Fail only the second re-mine: epoch 1 must reuse epoch 0's set count
  // while epochs 0 and 2 mine fresh.
  faults::FaultProfile profile;
  profile.remine_failure_fraction = 0.5;
  // Find a seed whose injected pattern over 3 draws is (ok, fail, ok).
  std::uint64_t chosen_seed = 0;
  bool found = false;
  for (std::uint64_t seed = 0; seed < 64 && !found; ++seed) {
    faults::FaultInjector probe{seed, profile};
    const bool a = probe.ShouldFail(faults::FaultSite::kRemine);
    const bool b = probe.ShouldFail(faults::FaultSite::kRemine);
    const bool c = probe.ShouldFail(faults::FaultSite::kRemine);
    if (!a && b && !c) {
      chosen_seed = seed;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  faults::FaultInjector injector{chosen_seed, profile};
  AdaptiveConfig adaptive;
  adaptive.remine_fault = [&injector] {
    return injector.ShouldFail(faults::FaultSite::kRemine);
  };
  const auto result = RunAdaptive(w.model, w.trace, span, adaptive);
  ASSERT_EQ(result.epochs.size(), 3u);
  EXPECT_FALSE(result.epochs[0].degraded);
  EXPECT_TRUE(result.epochs[1].degraded);
  EXPECT_FALSE(result.epochs[2].degraded);
  EXPECT_EQ(result.DegradedEpochs(), 1u);
  // The stale epoch serves the previous epoch's sets.
  EXPECT_EQ(result.epochs[1].dependency_sets,
            baseline.epochs[0].dependency_sets);
  EXPECT_EQ(result.epochs[1].stale_graph_minutes, kMinutesPerDay);
  EXPECT_EQ(result.epochs[2].stale_graph_minutes, 0);
}

TEST(RunAdaptive, TransactionBudgetFallsBackToWeakOnly) {
  auto cfg = trace::GeneratorConfig::Tiny();
  cfg.num_users = 10;
  cfg.seed = 28;
  const auto w = trace::GenerateWorkload(cfg);
  const TimeRange span{2 * kMinutesPerDay, 4 * kMinutesPerDay};
  AdaptiveConfig adaptive;
  adaptive.max_mining_transactions = 1;  // every window blows the budget
  const auto result = RunAdaptive(w.model, w.trace, span, adaptive);
  // strong+weak defaults: the epochs degrade to weak-only, which still
  // mines a fresh graph — degraded, but zero stale minutes.
  EXPECT_EQ(result.DegradedEpochs(), result.epochs.size());
  EXPECT_EQ(result.StaleGraphMinutes(), 0);

  // With weak mining off too there is no fallback rung: the epochs keep
  // the previous sets (here: none, so singletons) and count stale time.
  AdaptiveConfig strict = adaptive;
  strict.mining.use_weak = false;
  const auto stale = RunAdaptive(w.model, w.trace, span, strict);
  EXPECT_EQ(stale.DegradedEpochs(), stale.epochs.size());
  EXPECT_EQ(stale.StaleGraphMinutes(), span.length());
}

TEST(EstimateMiningTransactions, CountsActiveCells) {
  trace::WorkloadModel model;
  const UserId u = model.AddUser("u");
  const AppId a = model.AddApp(u, "a");
  const FunctionId f0 = model.AddFunction(a, "f0");
  const FunctionId f1 = model.AddFunction(a, "f1");
  trace::InvocationTrace trace{2, TimeRange{0, 100}};
  trace.Add(f0, 1, 5);   // one active cell (count does not matter)
  trace.Add(f0, 2, 1);
  trace.Add(f1, 2, 1);
  trace.Add(f1, 50, 1);
  trace.Finalize();
  EXPECT_EQ(EstimateMiningTransactions(trace, TimeRange{0, 100}), 4u);
  EXPECT_EQ(EstimateMiningTransactions(trace, TimeRange{0, 10}), 3u);
  EXPECT_EQ(EstimateMiningTransactions(trace, TimeRange{60, 100}), 0u);
}

}  // namespace
}  // namespace defuse::core
