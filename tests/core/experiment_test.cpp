// End-to-end statistical checks: the shapes of the paper's evaluation
// must hold on the synthetic workload. These are the repository's
// headline integration tests.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "trace/generator.hpp"

namespace defuse::core {
namespace {

/// A mid-sized workload shared by all tests in this file (generation and
/// mining are the expensive parts).
class ExperimentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace::GeneratorConfig cfg;
    cfg.num_users = 50;
    cfg.seed = 17;
    cfg.horizon_minutes = 7 * kMinutesPerDay;
    workload_ = new trace::SyntheticWorkload{trace::GenerateWorkload(cfg)};
    const auto [train, eval] = SplitTrainEval(workload_->trace.horizon());
    driver_ = new ExperimentDriver{workload_->model, workload_->trace, train,
                                   eval};
  }
  static void TearDownTestSuite() {
    delete driver_;
    delete workload_;
    driver_ = nullptr;
    workload_ = nullptr;
  }

  static trace::SyntheticWorkload* workload_;
  static ExperimentDriver* driver_;
};

trace::SyntheticWorkload* ExperimentTest::workload_ = nullptr;
ExperimentDriver* ExperimentTest::driver_ = nullptr;

TEST_F(ExperimentTest, MethodNamesAreStable) {
  EXPECT_STREQ(MethodName(Method::kDefuse), "Defuse");
  EXPECT_STREQ(MethodName(Method::kHybridFunction), "Hybrid-Function");
  EXPECT_STREQ(MethodName(Method::kHybridApplication), "Hybrid-Application");
  EXPECT_STREQ(MethodName(Method::kDefuseStrongOnly), "Strong-Only");
  EXPECT_STREQ(MethodName(Method::kDefuseWeakOnly), "Weak-Only");
  EXPECT_STREQ(MethodName(Method::kFixedKeepAlive), "Fixed-KeepAlive");
}

TEST_F(ExperimentTest, ResultsArePopulated) {
  const auto r = driver_->Run(Method::kDefuse);
  EXPECT_FALSE(r.cold_start_rates.empty());
  EXPECT_GT(r.avg_memory, 0.0);
  EXPECT_GT(r.avg_loading, 0.0);
  EXPECT_GT(r.num_units, 0u);
  EXPECT_FALSE(r.loading_per_minute.empty());
  EXPECT_EQ(r.loading_per_minute.size(), r.loaded_per_minute.size());
  EXPECT_GE(r.p75_cold_start_rate, 0.0);
  EXPECT_LE(r.p75_cold_start_rate, 1.0);
}

TEST_F(ExperimentTest, DefuseUsesFewerUnitsThanFunctionsMoreThanApps) {
  const auto defuse = driver_->Run(Method::kDefuse);
  const auto hf = driver_->Run(Method::kHybridFunction);
  const auto ha = driver_->Run(Method::kHybridApplication);
  EXPECT_LT(defuse.num_units, hf.num_units);
  EXPECT_GT(defuse.num_units, ha.num_units);
}

// Paper Fig 7 / headline: at comparable or lower memory, Defuse's 75th
// percentile cold-start rate beats Hybrid-Application's.
TEST_F(ExperimentTest, DefuseBeatsHybridApplicationAtComparableMemory) {
  const auto ha = driver_->Run(Method::kHybridApplication, 1.0);
  // Find a Defuse amplification whose memory is at most HA's.
  MethodResult best_defuse;
  bool found = false;
  for (const double a : {1.0, 1.5, 2.0, 2.5, 3.0}) {
    const auto r = driver_->Run(Method::kDefuse, a);
    if (r.avg_memory <= ha.avg_memory) {
      best_defuse = r;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_LE(best_defuse.avg_memory, ha.avg_memory);
  EXPECT_LT(best_defuse.p75_cold_start_rate, ha.p75_cold_start_rate);
}

// Paper Fig 7: Hybrid-Function has the least memory but the worst
// cold-start rate at the default amplification.
TEST_F(ExperimentTest, HybridFunctionTradesColdStartsForMemory) {
  const auto defuse = driver_->Run(Method::kDefuse);
  const auto hf = driver_->Run(Method::kHybridFunction);
  const auto ha = driver_->Run(Method::kHybridApplication);
  EXPECT_LT(hf.avg_memory, defuse.avg_memory);
  EXPECT_LT(hf.avg_memory, ha.avg_memory);
  EXPECT_GT(hf.p75_cold_start_rate, defuse.p75_cold_start_rate);
}

// Paper Fig 9: Defuse loads far fewer functions per minute than
// Hybrid-Application. The paper measures this at its headline operating
// point (comparable-memory restriction, cf. Fig 8), where Defuse's
// keep-alives are amplified; at a = 1 Defuse's aggressive pre-warm
// cycling can reload sets as often as HA reloads apps.
TEST_F(ExperimentTest, DefuseLoadsFewerFunctionsThanHybridApplication) {
  const auto defuse = driver_->Run(Method::kDefuse, 3.0);
  const auto ha = driver_->Run(Method::kHybridApplication, 1.0);
  EXPECT_LE(defuse.avg_memory, ha.avg_memory);
  EXPECT_LT(defuse.avg_loading, ha.avg_loading);
}

// Paper Fig 10: memory and cold-start rate trade off monotonically in the
// amplification factor.
TEST_F(ExperimentTest, AmplificationTradesMemoryForColdStarts) {
  double prev_memory = 0.0;
  double prev_p75 = 2.0;
  for (const double a : {1.0, 3.0, 5.0, 10.0}) {
    const auto r = driver_->Run(Method::kDefuse, a);
    EXPECT_GT(r.avg_memory, prev_memory) << "a=" << a;
    EXPECT_LE(r.p75_cold_start_rate, prev_p75 + 0.02) << "a=" << a;
    prev_memory = r.avg_memory;
    prev_p75 = r.p75_cold_start_rate;
  }
}

// Paper Fig 11: combining strong and weak mining beats either alone on
// cold starts, at the cost of the highest memory.
TEST_F(ExperimentTest, AblationCombinedBeatsEitherAlone) {
  const auto both = driver_->Run(Method::kDefuse);
  const auto strong = driver_->Run(Method::kDefuseStrongOnly);
  const auto weak = driver_->Run(Method::kDefuseWeakOnly);
  EXPECT_LE(both.p75_cold_start_rate, strong.p75_cold_start_rate);
  EXPECT_LE(both.p75_cold_start_rate, weak.p75_cold_start_rate);
  EXPECT_GE(both.avg_memory, strong.avg_memory);
  EXPECT_GE(both.avg_memory, weak.avg_memory);
}

TEST_F(ExperimentTest, FixedKeepAliveIsWorseThanDefuse) {
  const auto fixed = driver_->Run(Method::kFixedKeepAlive);
  const auto defuse = driver_->Run(Method::kDefuse);
  EXPECT_GT(fixed.p75_cold_start_rate, defuse.p75_cold_start_rate);
}

TEST_F(ExperimentTest, ExtensionMethodsRunAndShareDefuseSets) {
  const auto predictor = driver_->Run(Method::kDefusePredictor);
  const auto diurnal = driver_->Run(Method::kDefuseDiurnal);
  const auto defuse = driver_->Run(Method::kDefuse);
  EXPECT_EQ(predictor.num_units, defuse.num_units);
  EXPECT_EQ(diurnal.num_units, defuse.num_units);
  EXPECT_FALSE(predictor.cold_start_rates.empty());
  EXPECT_FALSE(diurnal.cold_start_rates.empty());
  // The diurnal profile can only help or tie on this workload.
  EXPECT_LE(diurnal.p75_cold_start_rate,
            defuse.p75_cold_start_rate + 0.05);
}

TEST_F(ExperimentTest, RunsAreReproducible) {
  const auto a = driver_->Run(Method::kDefuse);
  const auto b = driver_->Run(Method::kDefuse);
  EXPECT_EQ(a.cold_start_rates, b.cold_start_rates);
  EXPECT_DOUBLE_EQ(a.avg_memory, b.avg_memory);
  EXPECT_EQ(a.loading_per_minute, b.loading_per_minute);
}

TEST_F(ExperimentTest, MiningIsCachedAcrossRuns) {
  const auto& m1 = driver_->MiningFor(Method::kDefuse);
  const auto& m2 = driver_->MiningFor(Method::kDefuse);
  EXPECT_EQ(&m1, &m2);
}

TEST_F(ExperimentTest, EventColdFractionIsConsistent) {
  const auto r = driver_->Run(Method::kDefuse);
  EXPECT_GE(r.event_cold_fraction, 0.0);
  EXPECT_LE(r.event_cold_fraction, 1.0);
  // The function-level mean rate and the event-level fraction measure
  // related things; both must be nonzero on this workload.
  EXPECT_GT(r.event_cold_fraction, 0.0);
  EXPECT_GT(r.mean_cold_start_rate, 0.0);
}

}  // namespace
}  // namespace defuse::core
