#include "core/replication.hpp"

#include <gtest/gtest.h>

namespace defuse::core {
namespace {

trace::GeneratorConfig SmallConfig() {
  auto cfg = trace::GeneratorConfig::Tiny();
  cfg.num_users = 10;
  return cfg;
}

TEST(RunReplicated, OneRunPerSeed) {
  const std::vector<std::uint64_t> seeds{1, 2, 3};
  const auto metrics =
      RunReplicated(SmallConfig(), seeds, Method::kDefuse);
  EXPECT_EQ(metrics.runs.size(), 3u);
  EXPECT_EQ(metrics.p75_cold_start_rate.count, 3u);
  EXPECT_EQ(metrics.avg_memory.count, 3u);
}

TEST(RunReplicated, SeedsActuallyVaryTheWorkload) {
  const std::vector<std::uint64_t> seeds{1, 2};
  const auto metrics =
      RunReplicated(SmallConfig(), seeds, Method::kHybridFunction);
  ASSERT_EQ(metrics.runs.size(), 2u);
  EXPECT_NE(metrics.runs[0].avg_memory, metrics.runs[1].avg_memory);
}

TEST(RunReplicated, SameSeedListIsReproducible) {
  const std::vector<std::uint64_t> seeds{7};
  const auto a = RunReplicated(SmallConfig(), seeds, Method::kDefuse);
  const auto b = RunReplicated(SmallConfig(), seeds, Method::kDefuse);
  EXPECT_DOUBLE_EQ(a.runs[0].p75_cold_start_rate,
                   b.runs[0].p75_cold_start_rate);
  EXPECT_DOUBLE_EQ(a.runs[0].avg_memory, b.runs[0].avg_memory);
}

TEST(RunReplicated, SummariesMatchTheRuns) {
  const std::vector<std::uint64_t> seeds{1, 2, 3};
  const auto metrics =
      RunReplicated(SmallConfig(), seeds, Method::kFixedKeepAlive);
  double sum = 0.0;
  for (const auto& run : metrics.runs) sum += run.avg_memory;
  EXPECT_NEAR(metrics.avg_memory.mean, sum / 3.0, 1e-9);
}

TEST(DominatesOnColdStarts, TrueOnlyForStrictPerSeedDominance) {
  ReplicatedMetrics a, b;
  MethodResult ra, rb;
  ra.p75_cold_start_rate = 0.2;
  rb.p75_cold_start_rate = 0.5;
  a.runs = {ra, ra};
  b.runs = {rb, rb};
  EXPECT_TRUE(DominatesOnColdStarts(a, b));
  EXPECT_FALSE(DominatesOnColdStarts(b, a));
  // A single tie breaks dominance.
  b.runs[1].p75_cold_start_rate = 0.2;
  EXPECT_FALSE(DominatesOnColdStarts(a, b));
}

TEST(DominatesOnColdStarts, MismatchedOrEmptyIsFalse) {
  ReplicatedMetrics a, b;
  EXPECT_FALSE(DominatesOnColdStarts(a, b));
  a.runs.resize(1);
  EXPECT_FALSE(DominatesOnColdStarts(a, b));
}

}  // namespace
}  // namespace defuse::core
