#include "stats/ecdf.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace defuse::stats {
namespace {

TEST(Ecdf, EmptyIsZeroEverywhere) {
  Ecdf ecdf;
  EXPECT_TRUE(ecdf.empty());
  EXPECT_DOUBLE_EQ(ecdf.At(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.Quantile(0.5), 0.0);
}

TEST(Ecdf, AtCountsFractionLeq) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  Ecdf ecdf{v};
  EXPECT_DOUBLE_EQ(ecdf.At(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.At(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf.At(2.5), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.At(4.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.At(99.0), 1.0);
}

TEST(Ecdf, HandlesDuplicates) {
  const std::vector<double> v{1.0, 1.0, 1.0, 2.0};
  Ecdf ecdf{v};
  EXPECT_DOUBLE_EQ(ecdf.At(1.0), 0.75);
  EXPECT_DOUBLE_EQ(ecdf.At(1.5), 0.75);
}

TEST(Ecdf, SortsUnsortedInput) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  Ecdf ecdf{v};
  EXPECT_EQ(ecdf.sorted_samples(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Ecdf, QuantileInverseOfAt) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(static_cast<double>(i));
  Ecdf ecdf{v};
  EXPECT_DOUBLE_EQ(ecdf.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.Quantile(1.0), 99.0);
  EXPECT_DOUBLE_EQ(ecdf.Quantile(0.5), 50.0);
}

TEST(Ecdf, SeriesCoversRange) {
  const std::vector<double> v{0.0, 1.0};
  Ecdf ecdf{v};
  const auto series = ecdf.Series(0.0, 1.0, 5);
  ASSERT_EQ(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series.front().first, 0.0);
  EXPECT_DOUBLE_EQ(series.back().first, 1.0);
  EXPECT_DOUBLE_EQ(series.front().second, 0.5);
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(Ecdf, SeriesZeroPointsIsEmpty) {
  Ecdf ecdf{std::vector<double>{1.0}};
  EXPECT_TRUE(ecdf.Series(0, 1, 0).empty());
}

TEST(Ecdf, SeriesIsMonotone) {
  const std::vector<double> v{0.1, 0.4, 0.4, 0.9};
  Ecdf ecdf{v};
  const auto series = ecdf.Series(0.0, 1.0, 21);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].second, series[i - 1].second);
  }
}

TEST(RenderEcdfTable, EmitsHeaderAndRows) {
  std::vector<std::pair<std::string, Ecdf>> curves;
  curves.emplace_back("a", Ecdf{std::vector<double>{0.0}});
  curves.emplace_back("b", Ecdf{std::vector<double>{1.0}});
  const std::string table = RenderEcdfTable(curves, 0.0, 1.0, 3);
  EXPECT_NE(table.find("x,a,b"), std::string::npos);
  // At x=0: a has all mass <= 0 (1.0), b none (0.0).
  EXPECT_NE(table.find("0.0000,1.0000,0.0000"), std::string::npos);
  // At x=1 both are 1.
  EXPECT_NE(table.find("1.0000,1.0000,1.0000"), std::string::npos);
}

}  // namespace
}  // namespace defuse::stats
