#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace defuse::stats {
namespace {

TEST(Descriptive, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(Descriptive, MeanBasic) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
}

TEST(Descriptive, VarianceIsPopulationVariance) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Variance(v), 4.0);  // classic example
  EXPECT_DOUBLE_EQ(StdDev(v), 2.0);
}

TEST(Descriptive, VarianceOfConstantIsZero) {
  const std::vector<double> v{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(Variance(v), 0.0);
}

TEST(Descriptive, CoefficientOfVariation) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(CoefficientOfVariation(v), 2.0 / 5.0);
}

TEST(Descriptive, CvOfZeroMeanIsZero) {
  const std::vector<double> v{-1.0, 1.0};
  EXPECT_DOUBLE_EQ(CoefficientOfVariation(v), 0.0);
}

TEST(Descriptive, PercentileOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
}

TEST(Descriptive, PercentileOfSingleton) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 7.0);
}

TEST(Descriptive, PercentileInterpolatesLinearly) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0 / 3.0), 2.0);
}

TEST(Descriptive, PercentileDoesNotRequireSortedInput) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 2.5);
}

TEST(Descriptive, PercentileSortedMatchesPercentile) {
  const std::vector<double> sorted{0.0, 1.0, 2.0, 3.0, 10.0};
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(PercentileSorted(sorted, q), Percentile(sorted, q));
  }
}

TEST(Descriptive, PercentileClampsOutOfRangeQ) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 2.0), 2.0);
}

TEST(Descriptive, SummaryOfEmpty) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Descriptive, SummaryFields) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const Summary s = Summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 0.01);
  EXPECT_NEAR(s.p25, 25.75, 0.01);
  EXPECT_NEAR(s.p75, 75.25, 0.01);
  EXPECT_NEAR(s.p95, 95.05, 0.01);
}

TEST(BinnedDensity, FractionsSumToOne) {
  const std::vector<double> v{0.1, 0.2, 0.3, 0.9};
  const auto density = BinnedDensity(v, 0.0, 1.0, 10);
  ASSERT_EQ(density.size(), 10u);
  double total = 0.0;
  for (const double d : density) total += d;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(density[1], 0.25);  // 0.1
  EXPECT_DOUBLE_EQ(density[9], 0.25);  // 0.9
}

TEST(BinnedDensity, OutOfRangeSamplesClampToBoundaryBins) {
  const std::vector<double> v{-5.0, 5.0};
  const auto density = BinnedDensity(v, 0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(density[0], 0.5);
  EXPECT_DOUBLE_EQ(density[3], 0.5);
}

TEST(BinnedDensity, DegenerateInputs) {
  EXPECT_TRUE(BinnedDensity({}, 0, 1, 0).empty());
  const auto empty_samples = BinnedDensity({}, 0, 1, 3);
  for (const double d : empty_samples) EXPECT_DOUBLE_EQ(d, 0.0);
  const std::vector<double> v{0.5};
  const auto bad_range = BinnedDensity(v, 1.0, 0.0, 3);
  for (const double d : bad_range) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(FractionBelow, CountsStrictlyBelow) {
  const std::vector<double> v{0.1, 0.25, 0.3};
  EXPECT_DOUBLE_EQ(FractionBelow(v, 0.25), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(FractionBelow(v, 0.31), 1.0);
  EXPECT_DOUBLE_EQ(FractionBelow(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(FractionBelow({}, 1.0), 0.0);
}

// Percentile is monotone in q.
class PercentileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotoneTest, MonotoneInQ) {
  std::vector<double> v;
  // Deterministic pseudo-random-ish values.
  for (int i = 0; i < GetParam(); ++i) {
    v.push_back(static_cast<double>((i * 7919) % 997));
  }
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double p = Percentile(v, q);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PercentileMonotoneTest,
                         ::testing::Values(1, 2, 3, 10, 101, 1000));

}  // namespace
}  // namespace defuse::stats
