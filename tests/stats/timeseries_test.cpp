#include "stats/timeseries.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace defuse::stats {
namespace {

std::vector<double> Impulses(std::size_t length, std::size_t period) {
  std::vector<double> s(length, 0.0);
  for (std::size_t i = 0; i < length; i += period) s[i] = 1.0;
  return s;
}

TEST(Autocorrelation, LagZeroIsOne) {
  const std::vector<double> s{1.0, 3.0, 2.0, 5.0, 4.0};
  const auto acf = Autocorrelation(s, 2);
  ASSERT_EQ(acf.size(), 3u);
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
}

TEST(Autocorrelation, ConstantSeriesHasNoStructure) {
  const std::vector<double> s(50, 7.0);
  const auto acf = Autocorrelation(s, 5);
  for (const double a : acf) EXPECT_DOUBLE_EQ(a, 0.0);
}

TEST(Autocorrelation, EmptySeries) {
  EXPECT_TRUE(Autocorrelation({}, 5).empty());
}

TEST(Autocorrelation, MaxLagClampsToSeriesLength) {
  const std::vector<double> s{1.0, 2.0, 1.0};
  EXPECT_EQ(Autocorrelation(s, 100).size(), 3u);
}

TEST(Autocorrelation, PeriodicImpulsesPeakAtThePeriod) {
  const auto s = Impulses(300, 10);
  const auto acf = Autocorrelation(s, 25);
  EXPECT_GT(acf[10], 0.8);
  EXPECT_GT(acf[20], 0.6);
  EXPECT_LT(acf[5], 0.2);
}

TEST(Autocorrelation, SineWaveCorrelatesAtItsPeriod) {
  std::vector<double> s;
  constexpr std::size_t kPeriod = 24;
  for (std::size_t i = 0; i < 480; ++i) {
    s.push_back(std::sin(2.0 * std::numbers::pi * static_cast<double>(i) /
                         kPeriod));
  }
  const auto acf = Autocorrelation(s, 40);
  EXPECT_GT(acf[kPeriod], 0.9);
  EXPECT_LT(acf[kPeriod / 2], -0.8);  // anti-phase
}

TEST(DominantPeriod, FindsTheImpulsePeriod) {
  const auto s = Impulses(400, 15);
  const auto estimate = DominantPeriod(s, 2, 60);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_EQ(estimate->period, 15u);
  EXPECT_GT(estimate->strength, 0.7);
}

TEST(DominantPeriod, RejectsAperiodicSeries) {
  // Deterministic pseudo-noise.
  std::vector<double> s;
  std::uint64_t x = 7;
  for (int i = 0; i < 400; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    s.push_back(static_cast<double>((x >> 33) % 100));
  }
  const auto estimate = DominantPeriod(s, 2, 60, 0.3);
  EXPECT_FALSE(estimate.has_value());
}

TEST(DominantPeriod, RespectsTheLagRange) {
  const auto s = Impulses(400, 15);
  // Period 15 excluded by the range; its harmonic at 30 is found.
  const auto estimate = DominantPeriod(s, 20, 60);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_EQ(estimate->period, 30u);
}

TEST(DominantPeriod, DegenerateInputs) {
  EXPECT_FALSE(DominantPeriod({}, 1, 10).has_value());
  const std::vector<double> tiny{1.0, 2.0};
  EXPECT_FALSE(DominantPeriod(tiny, 1, 10).has_value());
  const auto s = Impulses(100, 10);
  EXPECT_FALSE(DominantPeriod(s, 20, 10).has_value());  // min > max
}

}  // namespace
}  // namespace defuse::stats
