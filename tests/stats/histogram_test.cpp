#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace defuse::stats {
namespace {

TEST(Histogram, StartsEmpty) {
  Histogram h{10, 1};
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.total_in_range(), 0u);
  EXPECT_EQ(h.out_of_bounds(), 0u);
  EXPECT_EQ(h.num_bins(), 10u);
  EXPECT_EQ(h.bin_width(), 1);
}

TEST(Histogram, AddPlacesValueInCorrectBin) {
  Histogram h{10, 1};
  h.Add(0);
  h.Add(3);
  h.Add(3);
  h.Add(9);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[3], 2u);
  EXPECT_EQ(h.counts()[9], 1u);
  EXPECT_EQ(h.total_in_range(), 4u);
}

TEST(Histogram, WiderBinsGroupValues) {
  Histogram h{4, 5};  // bins [0,5) [5,10) [10,15) [15,20)
  h.Add(0);
  h.Add(4);
  h.Add(5);
  h.Add(14);
  h.Add(19);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
}

TEST(Histogram, ValuesPastRangeAreOutOfBounds) {
  Histogram h{10, 1};
  h.Add(10);
  h.Add(100);
  EXPECT_EQ(h.total_in_range(), 0u);
  EXPECT_EQ(h.out_of_bounds(), 2u);
  EXPECT_DOUBLE_EQ(h.out_of_bounds_fraction(), 1.0);
}

// Regression: negative idle times (clock skew in the feeding trace) used
// to be clamped into bin 0, indistinguishable from a real immediate
// re-invocation — dragging the pre-warm percentile toward zero. They are
// quarantined in their own counter now and touch no bin or percentile.
TEST(Histogram, NegativeValuesAreQuarantinedNotClamped) {
  Histogram h{10, 1};
  h.Add(-5);
  h.AddCount(-1, 3);
  EXPECT_EQ(h.counts()[0], 0u);
  EXPECT_EQ(h.negative_count(), 4u);
  EXPECT_EQ(h.total_in_range(), 0u);
  EXPECT_EQ(h.total(), 0u);  // negatives are not observations
}

TEST(Histogram, NegativeValuesDoNotMovePercentilesOrCv) {
  Histogram clean{10, 1}, skewed{10, 1};
  for (MinuteDelta v : {4, 4, 5, 6}) {
    clean.Add(v);
    skewed.Add(v);
  }
  skewed.AddCount(-3, 100);
  EXPECT_EQ(skewed.Percentile(0.05), clean.Percentile(0.05));
  EXPECT_DOUBLE_EQ(skewed.BinCountCv(), clean.BinCountCv());
  EXPECT_EQ(skewed.negative_count(), 100u);
}

TEST(Histogram, MergeAndClearCarryNegativeCount) {
  Histogram a{5, 1}, b{5, 1};
  a.Add(-1);
  b.AddCount(-2, 2);
  a.Merge(b);
  EXPECT_EQ(a.negative_count(), 3u);
  a.Clear();
  EXPECT_EQ(a.negative_count(), 0u);
}

TEST(Histogram, SerializeRoundTripsNegativeCount) {
  Histogram h{10, 1};
  h.Add(2);
  h.AddCount(-7, 5);
  Histogram loaded{10, 1};
  ASSERT_TRUE(loaded.Deserialize(h.Serialize()));
  EXPECT_EQ(loaded.negative_count(), 5u);
  EXPECT_EQ(loaded.counts()[2], 1u);
}

// States written before the negative counter existed use the two-pipe
// "width|oob|bins" form; they must still load (negatives default to 0).
TEST(Histogram, DeserializeAcceptsPreNegativeCounterFormat) {
  Histogram h{10, 1};
  ASSERT_TRUE(h.Deserialize("1|2|0:1,3:4"));
  EXPECT_EQ(h.out_of_bounds(), 2u);
  EXPECT_EQ(h.negative_count(), 0u);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[3], 4u);
}

// Regression for the -Wconversion/overflow audit: a serialized bin
// index of 2^64+1 used to wrap the unchecked `value*10+digit` parse to
// 1 and silently land its count in bin 1. Arithmetic overflow in any
// numeric field must reject the whole snapshot instead.
TEST(Histogram, DeserializeRejectsOverflowingNumbers) {
  Histogram h{10, 1};
  // 2^64 + 1 == 18446744073709551617: wraps to 1 without the check.
  EXPECT_FALSE(h.Deserialize("1|0|0|18446744073709551617:5"));
  EXPECT_EQ(h.counts()[1], 0u);
  EXPECT_EQ(h.total_in_range(), 0u);
  // Overflowing count field.
  EXPECT_FALSE(h.Deserialize("1|0|0|2:99999999999999999999"));
  // Overflowing out-of-bounds header field.
  EXPECT_FALSE(h.Deserialize("1|18446744073709551616|0|2:1"));
  // The u64 maximum itself still parses (boundary, not overflow).
  EXPECT_TRUE(h.Deserialize("1|18446744073709551615|0|2:1"));
  EXPECT_EQ(h.out_of_bounds(), 18446744073709551615ull);
  EXPECT_EQ(h.counts()[2], 1u);
}

TEST(Histogram, AddCountAccumulates) {
  Histogram h{10, 1};
  h.AddCount(2, 7);
  h.AddCount(2, 0);  // no-op
  EXPECT_EQ(h.counts()[2], 7u);
  EXPECT_EQ(h.total_in_range(), 7u);
}

TEST(Histogram, MergeAddsCountsAndOob) {
  Histogram a{5, 1}, b{5, 1};
  a.Add(1);
  b.Add(1);
  b.Add(4);
  b.Add(99);
  a.Merge(b);
  EXPECT_EQ(a.counts()[1], 2u);
  EXPECT_EQ(a.counts()[4], 1u);
  EXPECT_EQ(a.out_of_bounds(), 1u);
  EXPECT_EQ(a.total(), 4u);
}

TEST(Histogram, ClearResetsEverything) {
  Histogram h{5, 1};
  h.Add(1);
  h.Add(99);
  h.Clear();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.counts()[1], 0u);
}

TEST(Histogram, CvOfEmptyIsZero) {
  Histogram h{10, 1};
  EXPECT_DOUBLE_EQ(h.BinCountCv(), 0.0);
}

TEST(Histogram, CvOfPerfectlyFlatIsZero) {
  Histogram h{10, 1};
  for (MinuteDelta v = 0; v < 10; ++v) h.Add(v);
  EXPECT_NEAR(h.BinCountCv(), 0.0, 1e-12);
}

TEST(Histogram, CvOfSingleSpikeIsSqrtBinsMinusOne) {
  // All mass in one of n bins: mean = N/n, stddev = N*sqrt(n-1)/n,
  // CV = sqrt(n-1).
  Histogram h{16, 1};
  h.AddCount(3, 1000);
  EXPECT_NEAR(h.BinCountCv(), std::sqrt(15.0), 1e-9);
}

TEST(Histogram, PeakedHistogramHasHigherCvThanSpread) {
  Histogram peaked{240, 1}, spread{240, 1};
  peaked.AddCount(10, 100);
  for (int i = 0; i < 100; ++i) spread.Add(i * 2);
  EXPECT_GT(peaked.BinCountCv(), spread.BinCountCv());
}

TEST(Histogram, PercentileOfEmptyIsZero) {
  Histogram h{10, 1};
  EXPECT_EQ(h.Percentile(0.5), 0);
}

TEST(Histogram, PercentileSingleBin) {
  Histogram h{10, 1};
  h.AddCount(4, 100);
  // Everything in bin 4 => any percentile is that bin's upper edge.
  EXPECT_EQ(h.Percentile(0.05), 5);
  EXPECT_EQ(h.Percentile(0.5), 5);
  EXPECT_EQ(h.Percentile(0.95), 5);
  EXPECT_EQ(h.PercentileLowerEdge(0.05), 4);
  EXPECT_EQ(h.PercentileLowerEdge(0.95), 4);
}

TEST(Histogram, PercentileSpansDistribution) {
  Histogram h{100, 1};
  for (MinuteDelta v = 0; v < 100; ++v) h.Add(v);  // uniform
  EXPECT_EQ(h.Percentile(0.05), 5);
  EXPECT_EQ(h.Percentile(0.50), 50);
  EXPECT_EQ(h.Percentile(0.95), 95);
  EXPECT_EQ(h.PercentileLowerEdge(0.05), 4);
  EXPECT_EQ(h.PercentileLowerEdge(0.95), 94);
}

TEST(Histogram, PercentileRespectsBinWidth) {
  Histogram h{10, 5};
  h.AddCount(12, 10);  // bin 2: [10, 15)
  EXPECT_EQ(h.Percentile(0.5), 15);
  EXPECT_EQ(h.PercentileLowerEdge(0.5), 10);
}

TEST(Histogram, PercentileClampsQ) {
  Histogram h{10, 1};
  h.Add(3);
  EXPECT_EQ(h.Percentile(-0.5), 4);
  EXPECT_EQ(h.Percentile(2.0), 4);
}

TEST(Histogram, PercentileIgnoresOutOfBounds) {
  Histogram h{10, 1};
  h.Add(2);
  h.AddCount(50, 100);  // out of bounds
  EXPECT_EQ(h.Percentile(0.99), 3);
}

TEST(Histogram, CdfIsMonotoneAndBounded) {
  Histogram h{10, 1};
  h.Add(2);
  h.Add(5);
  h.Add(8);
  double prev = -1.0;
  for (MinuteDelta v = 0; v < 12; ++v) {
    const double c = h.Cdf(v);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(h.Cdf(20), 1.0);
  EXPECT_DOUBLE_EQ(h.Cdf(-1), 0.0);
}

TEST(Histogram, CdfValues) {
  Histogram h{10, 1};
  h.Add(0);
  h.Add(5);
  EXPECT_DOUBLE_EQ(h.Cdf(0), 0.5);
  EXPECT_DOUBLE_EQ(h.Cdf(4), 0.5);
  EXPECT_DOUBLE_EQ(h.Cdf(5), 1.0);
}

TEST(Histogram, MeanValueUsesBinMidpoints) {
  Histogram h{10, 2};
  h.AddCount(0, 1);  // bin 0, mid 1.0
  h.AddCount(2, 1);  // bin 1, mid 3.0
  EXPECT_DOUBLE_EQ(h.MeanValue(), 2.0);
}

TEST(Histogram, MeanValueOfEmptyIsZero) {
  Histogram h{10, 1};
  EXPECT_DOUBLE_EQ(h.MeanValue(), 0.0);
}

TEST(Histogram, ModeBinOfEmptyIsZero) {
  Histogram h{10, 1};
  EXPECT_EQ(h.ModeBin(), (std::pair<std::size_t, std::uint64_t>{0, 0}));
}

TEST(Histogram, ModeBinFindsTheMostPopulated) {
  Histogram h{10, 1};
  h.AddCount(3, 5);
  h.AddCount(7, 9);
  h.AddCount(2, 1);
  EXPECT_EQ(h.ModeBin(), (std::pair<std::size_t, std::uint64_t>{7, 9}));
}

TEST(Histogram, ModeBinTiesResolveToLowestBin) {
  Histogram h{10, 1};
  h.AddCount(4, 3);
  h.AddCount(8, 3);
  EXPECT_EQ(h.ModeBin().first, 4u);
}

TEST(Histogram, ModeMassFractionCountsNeighborhood) {
  Histogram h{10, 1};
  h.AddCount(4, 6);
  h.AddCount(5, 2);
  h.AddCount(9, 2);
  // Mode at 4; radius 1 covers bins 3..5 -> 8 of 10.
  EXPECT_DOUBLE_EQ(h.ModeMassFraction(1), 0.8);
  EXPECT_DOUBLE_EQ(h.ModeMassFraction(0), 0.6);
  EXPECT_DOUBLE_EQ(h.ModeMassFraction(9), 1.0);
}

TEST(Histogram, ModeMassFractionAtBoundaries) {
  Histogram h{10, 1};
  h.AddCount(0, 5);
  h.AddCount(9, 5);
  EXPECT_DOUBLE_EQ(h.ModeMassFraction(1), 0.5);  // bins 0..1
  EXPECT_DOUBLE_EQ(Histogram(10, 1).ModeMassFraction(1), 0.0);
}

TEST(Histogram, MakeIdleTimeHistogramShape) {
  const auto h = Histogram::MakeIdleTimeHistogram();
  EXPECT_EQ(h.num_bins(), 240u);
  EXPECT_EQ(h.bin_width(), 1);
}

TEST(Histogram, SerializeRoundTrips) {
  Histogram h{20, 1};
  h.AddCount(3, 5);
  h.AddCount(17, 2);
  h.AddCount(100, 7);  // out of bounds
  Histogram loaded{20, 1};
  ASSERT_TRUE(loaded.Deserialize(h.Serialize()));
  EXPECT_EQ(loaded.counts(), h.counts());
  EXPECT_EQ(loaded.out_of_bounds(), h.out_of_bounds());
  EXPECT_EQ(loaded.total(), h.total());
}

TEST(Histogram, SerializeEmptyHistogram) {
  Histogram h{20, 1};
  Histogram loaded{20, 1};
  ASSERT_TRUE(loaded.Deserialize(h.Serialize()));
  EXPECT_EQ(loaded.total(), 0u);
}

TEST(Histogram, DeserializeRejectsMalformedInput) {
  Histogram h{20, 1};
  EXPECT_FALSE(h.Deserialize(""));
  EXPECT_FALSE(h.Deserialize("nonsense"));
  EXPECT_FALSE(h.Deserialize("1|x|0:1"));
  EXPECT_FALSE(h.Deserialize("1|0|0-1"));
  EXPECT_FALSE(h.Deserialize("2|0|0:1"));  // wrong bin width
  EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, DeserializeIntoNarrowerShapeCountsOob) {
  Histogram wide{100, 1};
  wide.AddCount(50, 4);
  wide.AddCount(5, 1);
  Histogram narrow{10, 1};
  ASSERT_TRUE(narrow.Deserialize(wide.Serialize()));
  EXPECT_EQ(narrow.counts()[5], 1u);
  EXPECT_EQ(narrow.out_of_bounds(), 4u);
}

// Property sweep: for a histogram filled from a uniform grid, the q-th
// percentile must be within one bin of q * range.
class HistogramPercentileSweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(HistogramPercentileSweep, PercentileTracksUniformMass) {
  const auto [q, bin_width] = GetParam();
  Histogram h{200, bin_width};
  const MinuteDelta range = 200 * bin_width;
  for (MinuteDelta v = 0; v < range; ++v) h.Add(v);
  const auto p = h.Percentile(q);
  EXPECT_NEAR(static_cast<double>(p), q * static_cast<double>(range),
              static_cast<double>(bin_width) + 1e-9);
  EXPECT_EQ(h.PercentileLowerEdge(q), p - bin_width);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HistogramPercentileSweep,
    ::testing::Combine(::testing::Values(0.01, 0.05, 0.25, 0.5, 0.75, 0.95,
                                         0.99),
                       ::testing::Values(1, 3, 10)));

}  // namespace
}  // namespace defuse::stats
