#include "faults/injector.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace defuse::faults {
namespace {

FaultProfile AllOn() {
  FaultProfile p;
  p.remine_failure_fraction = 0.5;
  p.prewarm_spawn_failure_fraction = 0.5;
  p.malformed_row_fraction = 0.5;
  p.duplicate_row_fraction = 0.5;
  p.reorder_row_fraction = 0.5;
  p.truncate_probability = 0.5;
  return p;
}

constexpr std::string_view kCsv =
    "user,app,function,minute,count\n"
    "u0,a0,f0,0,1\n"
    "u0,a0,f0,1,2\n"
    "u0,a0,f1,0,3\n"
    "u0,a0,f1,2,1\n";

TEST(FaultInjector, DefaultConstructedIsDisabled) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.ShouldFail(FaultSite::kRemine));
  EXPECT_EQ(injector.decisions(FaultSite::kRemine), 0u);
  EXPECT_EQ(injector.injected(FaultSite::kRemine), 0u);
}

TEST(FaultInjector, AllZeroProfileIsDisabled) {
  FaultInjector injector{42, FaultProfile{}};
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.ShouldFail(FaultSite::kPrewarmSpawn));
  EXPECT_EQ(injector.decisions(FaultSite::kPrewarmSpawn), 0u);
}

TEST(FaultInjector, DisabledCorruptCsvIsIdentity) {
  FaultInjector injector;
  EXPECT_EQ(injector.CorruptCsv(kCsv), kCsv);
  EXPECT_EQ(injector.decisions(FaultSite::kTraceRow), 0u);
  EXPECT_EQ(injector.decisions(FaultSite::kTraceTruncate), 0u);
}

TEST(FaultInjector, FractionOneAlwaysFails) {
  FaultProfile p;
  p.remine_failure_fraction = 1.0;
  FaultInjector injector{7, p};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(injector.ShouldFail(FaultSite::kRemine));
  }
  EXPECT_EQ(injector.decisions(FaultSite::kRemine), 100u);
  EXPECT_EQ(injector.injected(FaultSite::kRemine), 100u);
}

TEST(FaultInjector, FractionZeroSiteNeverFailsButCounts) {
  FaultProfile p;
  p.remine_failure_fraction = 1.0;  // enables the injector
  FaultInjector injector{7, p};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(injector.ShouldFail(FaultSite::kPrewarmSpawn));
  }
  EXPECT_EQ(injector.decisions(FaultSite::kPrewarmSpawn), 50u);
  EXPECT_EQ(injector.injected(FaultSite::kPrewarmSpawn), 0u);
}

TEST(FaultInjector, EmpiricalRateTracksFraction) {
  FaultProfile p;
  p.remine_failure_fraction = 0.3;
  FaultInjector injector{123, p};
  const int draws = 20000;
  int fails = 0;
  for (int i = 0; i < draws; ++i) {
    if (injector.ShouldFail(FaultSite::kRemine)) ++fails;
  }
  const double rate = static_cast<double>(fails) / draws;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(FaultInjector, SameSeedReplaysIdentically) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    FaultInjector a{seed, AllOn()};
    FaultInjector b{seed, AllOn()};
    for (int i = 0; i < 200; ++i) {
      const auto site = static_cast<FaultSite>(i % 2);
      EXPECT_EQ(a.ShouldFail(site), b.ShouldFail(site));
    }
    EXPECT_EQ(a.CorruptCsv(kCsv), b.CorruptCsv(kCsv));
  }
}

TEST(FaultInjector, SitesDrawIndependentStreams) {
  // Interleaving draws at another site must not perturb a site's own
  // decision sequence.
  FaultInjector pure{9, AllOn()};
  FaultInjector interleaved{9, AllOn()};
  std::vector<bool> a, b;
  for (int i = 0; i < 100; ++i) a.push_back(pure.ShouldFail(FaultSite::kRemine));
  for (int i = 0; i < 100; ++i) {
    (void)interleaved.ShouldFail(FaultSite::kPrewarmSpawn);
    b.push_back(interleaved.ShouldFail(FaultSite::kRemine));
  }
  EXPECT_EQ(a, b);
}

TEST(FaultInjector, ResetRewindsTheReplay) {
  FaultInjector injector{11, AllOn()};
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) {
    first.push_back(injector.ShouldFail(FaultSite::kRemine));
  }
  injector.Reset();
  EXPECT_EQ(injector.decisions(FaultSite::kRemine), 0u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(injector.ShouldFail(FaultSite::kRemine), first[static_cast<std::size_t>(i)]);
  }
}

TEST(FaultInjector, MiningFailureAlternatesBothDegradedCodes) {
  FaultProfile p;
  p.remine_failure_fraction = 1.0;
  FaultInjector injector{3, p};
  bool saw_exhausted = false, saw_deadline = false;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(injector.ShouldFail(FaultSite::kRemine));
    const Error e = injector.MiningFailure();
    saw_exhausted |= e.code == ErrorCode::kResourceExhausted;
    saw_deadline |= e.code == ErrorCode::kDeadlineExceeded;
  }
  EXPECT_TRUE(saw_exhausted);
  EXPECT_TRUE(saw_deadline);
}

TEST(FaultInjector, DeltaMiningSitesAreRegisteredAndIndependent) {
  EXPECT_STREQ(FaultSiteName(FaultSite::kDeltaWindowSkew),
               "delta_window_skew");
  EXPECT_STREQ(FaultSiteName(FaultSite::kDeltaSnapshotTorn),
               "delta_snapshot_torn");

  // Each new site has its own knob and its own draw stream: enabling the
  // delta sites must not perturb the kRemine sequence (the property the
  // delta differential suite leans on when comparing a delta platform
  // against a full-rebuild twin under the same seed).
  FaultProfile base;
  base.remine_failure_fraction = 0.5;
  FaultProfile with_delta = base;
  with_delta.delta_window_skew_fraction = 1.0;
  with_delta.delta_snapshot_torn_fraction = 1.0;
  EXPECT_TRUE(FaultInjector(3, with_delta).enabled());
  FaultInjector pure{3, base};
  FaultInjector mixed{3, with_delta};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(mixed.ShouldFail(FaultSite::kDeltaWindowSkew));
    EXPECT_TRUE(mixed.ShouldFail(FaultSite::kDeltaSnapshotTorn));
    EXPECT_EQ(pure.ShouldFail(FaultSite::kRemine),
              mixed.ShouldFail(FaultSite::kRemine))
        << i;
  }
  EXPECT_EQ(mixed.injected(FaultSite::kDeltaWindowSkew), 100u);
  EXPECT_EQ(mixed.injected(FaultSite::kDeltaSnapshotTorn), 100u);

  // A profile with only the delta knobs set still enables the injector.
  FaultProfile only_delta;
  only_delta.delta_snapshot_torn_fraction = 0.5;
  EXPECT_TRUE(FaultInjector(1, only_delta).enabled());
}

TEST(FaultInjector, CorruptCsvPreservesHeaderLine) {
  FaultProfile p;
  p.malformed_row_fraction = 1.0;
  FaultInjector injector{5, p};
  const std::string corrupted = injector.CorruptCsv(kCsv);
  EXPECT_EQ(corrupted.rfind("user,app,function,minute,count\n", 0), 0u);
  EXPECT_GT(injector.injected(FaultSite::kTraceRow), 0u);
  EXPECT_NE(corrupted, kCsv);
}

TEST(FaultInjector, CorruptCsvDuplicatesRows) {
  FaultProfile p;
  p.duplicate_row_fraction = 1.0;
  FaultInjector injector{5, p};
  const std::string corrupted = injector.CorruptCsv(kCsv);
  // 1 header + 4 data rows, each duplicated once.
  std::size_t newlines = 0;
  for (const char c : corrupted) newlines += c == '\n' ? 1u : 0u;
  EXPECT_EQ(newlines, 9u);
}

TEST(FaultInjector, CorruptCsvTruncatesTail) {
  FaultProfile p;
  p.truncate_probability = 1.0;
  FaultInjector injector{5, p};
  const std::string corrupted = injector.CorruptCsv(kCsv);
  EXPECT_LT(corrupted.size(), kCsv.size());
  EXPECT_FALSE(corrupted.empty());
  EXPECT_EQ(injector.injected(FaultSite::kTraceTruncate), 1u);
}

}  // namespace
}  // namespace defuse::faults
