#include <gtest/gtest.h>

#include "sim/metrics.hpp"

namespace defuse::sim {
namespace {

SimulationResult ResultWith(std::uint64_t invocations, std::uint64_t cold) {
  SimulationResult r;
  r.function_invocation_minutes = invocations;
  r.function_cold_minutes = cold;
  return r;
}

TEST(Latency, AllWarmIsWarmLatency) {
  const auto r = ResultWith(100, 0);
  EXPECT_DOUBLE_EQ(MeanLatencyMs(r), 5.0);
  EXPECT_DOUBLE_EQ(LatencyPercentileMs(r, 0.99), 5.0);
}

TEST(Latency, AllColdIsColdLatency) {
  const auto r = ResultWith(100, 100);
  EXPECT_DOUBLE_EQ(MeanLatencyMs(r), 1500.0);
  EXPECT_DOUBLE_EQ(LatencyPercentileMs(r, 0.01), 1500.0);
}

TEST(Latency, MeanInterpolatesLinearly) {
  const auto r = ResultWith(100, 10);
  EXPECT_DOUBLE_EQ(MeanLatencyMs(r), 5.0 + 0.1 * 1495.0);
}

TEST(Latency, PercentileSwitchesAtTheWarmMass) {
  const auto r = ResultWith(100, 10);  // 90% warm
  EXPECT_DOUBLE_EQ(LatencyPercentileMs(r, 0.50), 5.0);
  EXPECT_DOUBLE_EQ(LatencyPercentileMs(r, 0.90), 5.0);
  EXPECT_DOUBLE_EQ(LatencyPercentileMs(r, 0.95), 1500.0);
  EXPECT_DOUBLE_EQ(LatencyPercentileMs(r, 0.99), 1500.0);
}

TEST(Latency, CustomModelValues) {
  const auto r = ResultWith(10, 5);
  const LatencyModel model{.warm_ms = 1.0, .cold_ms = 11.0};
  EXPECT_DOUBLE_EQ(MeanLatencyMs(r, model), 6.0);
  EXPECT_DOUBLE_EQ(LatencyPercentileMs(r, 0.4, model), 1.0);
  EXPECT_DOUBLE_EQ(LatencyPercentileMs(r, 0.6, model), 11.0);
}

TEST(Latency, EmptyResultIsZero) {
  const auto r = ResultWith(0, 0);
  EXPECT_DOUBLE_EQ(MeanLatencyMs(r), 0.0);
  EXPECT_DOUBLE_EQ(LatencyPercentileMs(r, 0.99), 0.0);
}

}  // namespace
}  // namespace defuse::sim
