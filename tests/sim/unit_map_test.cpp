#include "graph/unit_map.hpp"

#include <gtest/gtest.h>

namespace defuse::sim {

using graph::UnitMap;
namespace {

TEST(UnitMap, PerFunctionIsIdentity) {
  const auto units = UnitMap::PerFunction(4);
  EXPECT_EQ(units.num_units(), 4u);
  EXPECT_EQ(units.num_functions(), 4u);
  for (std::uint32_t f = 0; f < 4; ++f) {
    EXPECT_EQ(units.unit_of(FunctionId{f}).value(), f);
    EXPECT_EQ(units.unit_size(UnitId{f}), 1u);
    ASSERT_EQ(units.functions_of(UnitId{f}).size(), 1u);
    EXPECT_EQ(units.functions_of(UnitId{f})[0], FunctionId{f});
  }
}

TEST(UnitMap, PerApplicationGroupsByApp) {
  trace::WorkloadModel model;
  const UserId u = model.AddUser("u");
  const AppId a0 = model.AddApp(u, "a0");
  const AppId a1 = model.AddApp(u, "a1");
  model.AddFunction(a0, "f0");
  model.AddFunction(a1, "f1");
  model.AddFunction(a0, "f2");
  const auto units = UnitMap::PerApplication(model);
  EXPECT_EQ(units.num_units(), 2u);
  EXPECT_EQ(units.unit_of(FunctionId{0}), units.unit_of(FunctionId{2}));
  EXPECT_NE(units.unit_of(FunctionId{0}), units.unit_of(FunctionId{1}));
  EXPECT_EQ(units.unit_size(units.unit_of(FunctionId{0})), 2u);
}

TEST(UnitMap, FromDependencySets) {
  std::vector<graph::DependencySet> sets(2);
  sets[0].id = 0;
  sets[0].functions = {FunctionId{0}, FunctionId{2}};
  sets[1].id = 1;
  sets[1].functions = {FunctionId{1}};
  const auto units = UnitMap::FromDependencySets(sets, 3);
  EXPECT_EQ(units.num_units(), 2u);
  EXPECT_EQ(units.unit_of(FunctionId{0}).value(), 0u);
  EXPECT_EQ(units.unit_of(FunctionId{2}).value(), 0u);
  EXPECT_EQ(units.unit_of(FunctionId{1}).value(), 1u);
  EXPECT_EQ(units.unit_size(UnitId{0}), 2u);
}

TEST(UnitMap, ExplicitIndexConstruction) {
  const UnitMap units{std::vector<std::uint32_t>{1, 0, 1}};
  EXPECT_EQ(units.num_units(), 2u);
  const auto fns = units.functions_of(UnitId{1});
  EXPECT_EQ(std::vector<FunctionId>(fns.begin(), fns.end()),
            (std::vector<FunctionId>{FunctionId{0}, FunctionId{2}}));
}

}  // namespace
}  // namespace defuse::sim
