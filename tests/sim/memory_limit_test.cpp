// Tests for the hard memory cap + LRU capacity eviction extension
// (SimulatorOptions::memory_limit).
#include <gtest/gtest.h>

#include "policy/fixed.hpp"
#include "sim/simulator.hpp"

namespace defuse::sim {

using graph::UnitMap;
namespace {

trace::InvocationTrace TraceOf(std::size_t num_functions,
                               std::vector<std::pair<std::uint32_t, Minute>>
                                   events,
                               Minute horizon = 200) {
  trace::InvocationTrace t{num_functions, TimeRange{0, horizon}};
  for (const auto& [fn, minute] : events) t.Add(FunctionId{fn}, minute);
  t.Finalize();
  return t;
}

SimulatorOptions Limited(std::uint64_t limit) {
  SimulatorOptions o;
  o.memory_limit = limit;
  return o;
}

TEST(MemoryLimit, UnlimitedByDefault) {
  auto trace = TraceOf(3, {{0, 5}, {1, 5}, {2, 5}});
  policy::FixedKeepAlivePolicy policy{UnitMap::PerFunction(3), 100};
  const auto r = Simulate(trace, TimeRange{0, 200}, policy);
  EXPECT_EQ(r.capacity_evictions, 0u);
  EXPECT_EQ(r.loaded_functions[10], 3u);
}

TEST(MemoryLimit, CapIsRespected) {
  auto trace = TraceOf(3, {{0, 5}, {1, 10}, {2, 15}});
  policy::FixedKeepAlivePolicy policy{UnitMap::PerFunction(3), 100};
  const auto r = Simulate(trace, TimeRange{0, 200}, policy, Limited(2));
  for (const auto loaded : r.loaded_functions) EXPECT_LE(loaded, 2u);
  EXPECT_GT(r.capacity_evictions, 0u);
}

TEST(MemoryLimit, EvictsLeastRecentlyInvoked) {
  // Units 0, 1 invoked at 5 and 10; at 15 unit 2 loads -> unit 0 (oldest)
  // is evicted, unit 1 survives and is warm at 20.
  auto trace = TraceOf(3, {{0, 5}, {1, 10}, {2, 15}, {1, 20}, {0, 25}});
  policy::FixedKeepAlivePolicy policy{UnitMap::PerFunction(3), 100};
  const auto r = Simulate(trace, TimeRange{0, 200}, policy, Limited(2));
  EXPECT_EQ(r.unit_cold_minutes[1], 1u);  // warm at 20
  EXPECT_EQ(r.unit_cold_minutes[0], 2u);  // evicted, cold again at 25
}

TEST(MemoryLimit, SameMinuteUnitsAreProtected) {
  // Three units all invoked at minute 5 with capacity 2: the load of the
  // third must not evict a unit invoked in the same minute... but
  // capacity forces an overcommit instead.
  auto trace = TraceOf(3, {{0, 5}, {1, 5}, {2, 5}});
  policy::FixedKeepAlivePolicy policy{UnitMap::PerFunction(3), 100};
  const auto r = Simulate(trace, TimeRange{0, 200}, policy, Limited(2));
  // All three served (never rejected), so the peak overcommits to 3.
  EXPECT_EQ(r.loaded_functions[5], 3u);
  EXPECT_EQ(r.function_cold_minutes, 3u);
}

TEST(MemoryLimit, EvictedUnitsPendingEventsAreCancelled) {
  // Unit 0's keep-alive would evict it at 105; it is capacity-evicted at
  // 15 and re-invoked at 50 (cold), re-arming its keep-alive to 150. The
  // stale evict must not fire at 105: unit 0 is still warm at 140.
  auto trace = TraceOf(2, {{0, 5}, {1, 15}, {0, 50}, {0, 140}});
  policy::FixedKeepAlivePolicy policy{UnitMap::PerFunction(2), 100};
  const auto r = Simulate(trace, TimeRange{0, 200}, policy, Limited(1));
  EXPECT_EQ(r.unit_cold_minutes[0], 2u);  // cold at 5 and 50, warm at 140
}

TEST(MemoryLimit, LargeUnitOvercommitsWhenNothingEvictable) {
  // A 3-function unit with capacity 2: it must still load (overcommit).
  auto trace = TraceOf(3, {{0, 5}});
  policy::FixedKeepAlivePolicy policy{
      UnitMap{std::vector<std::uint32_t>{0, 0, 0}}, 10};
  const auto r = Simulate(trace, TimeRange{0, 50}, policy, Limited(2));
  EXPECT_EQ(r.loaded_functions[5], 3u);
  EXPECT_EQ(r.unit_cold_minutes[0], 1u);
}

TEST(MemoryLimit, TighterBudgetsMeanMoreColdStarts) {
  // Monotone sanity on a rotating workload.
  std::vector<std::pair<std::uint32_t, Minute>> events;
  for (Minute t = 0; t < 180; ++t) {
    events.emplace_back(static_cast<std::uint32_t>(t % 6), t);
  }
  auto trace = TraceOf(6, events);
  std::uint64_t prev_cold = 0;
  for (const std::uint64_t limit : {6u, 3u, 1u}) {
    policy::FixedKeepAlivePolicy policy{UnitMap::PerFunction(6), 100};
    const auto r = Simulate(trace, TimeRange{0, 200}, policy, Limited(limit));
    EXPECT_GE(r.function_cold_minutes, prev_cold) << "limit=" << limit;
    prev_cold = r.function_cold_minutes;
  }
}

TEST(MemoryLimit, CapacityEvictionKeepsAccountingConsistent) {
  // Loaded-function counts never go negative / leak across many
  // evictions.
  std::vector<std::pair<std::uint32_t, Minute>> events;
  for (Minute t = 0; t < 150; ++t) {
    events.emplace_back(static_cast<std::uint32_t>((t * 7) % 10), t);
  }
  auto trace = TraceOf(10, events);
  policy::FixedKeepAlivePolicy policy{UnitMap::PerFunction(10), 30};
  const auto r = Simulate(trace, TimeRange{0, 200}, policy, Limited(4));
  for (const auto loaded : r.loaded_functions) EXPECT_LE(loaded, 4u);
  // After the last keep-alive expires everything is unloaded.
  EXPECT_EQ(r.loaded_functions.back(), 0u);
}

}  // namespace
}  // namespace defuse::sim
