#include "sim/concurrency.hpp"

#include <gtest/gtest.h>

#include "policy/fixed.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace defuse::sim {

using graph::UnitMap;
namespace {

trace::InvocationTrace TraceOf(
    std::size_t num_functions,
    std::vector<std::tuple<std::uint32_t, Minute, std::uint32_t>> events,
    Minute horizon = 200) {
  trace::InvocationTrace t{num_functions, TimeRange{0, horizon}};
  for (const auto& [fn, minute, count] : events) {
    t.Add(FunctionId{fn}, minute, count);
  }
  t.Finalize();
  return t;
}

TEST(Concurrency, SingleInvocationIsOneColdEvent) {
  auto trace = TraceOf(1, {{0, 5, 1}});
  policy::FixedKeepAlivePolicy policy{UnitMap::PerFunction(1), 10};
  const auto r = SimulateConcurrent(trace, TimeRange{0, 200}, policy);
  EXPECT_EQ(r.total_invocation_events, 1u);
  EXPECT_EQ(r.total_cold_events, 1u);
  EXPECT_EQ(r.resident_containers[5], 1u);
  EXPECT_EQ(r.resident_containers[14], 1u);
  EXPECT_EQ(r.resident_containers[15], 0u);
}

TEST(Concurrency, BurstSpawnsOneContainerPerConcurrentInvocation) {
  auto trace = TraceOf(1, {{0, 5, 4}});
  policy::FixedKeepAlivePolicy policy{UnitMap::PerFunction(1), 10};
  const auto r = SimulateConcurrent(trace, TimeRange{0, 200}, policy);
  EXPECT_EQ(r.total_invocation_events, 4u);
  EXPECT_EQ(r.total_cold_events, 4u);
  EXPECT_EQ(r.resident_containers[5], 4u);
}

TEST(Concurrency, WarmPoolAbsorbsRepeatBursts) {
  auto trace = TraceOf(1, {{0, 5, 4}, {0, 10, 3}});
  policy::FixedKeepAlivePolicy policy{UnitMap::PerFunction(1), 10};
  const auto r = SimulateConcurrent(trace, TimeRange{0, 200}, policy);
  // Second burst of 3 fits entirely in the 4 warm containers.
  EXPECT_EQ(r.total_cold_events, 4u);
  EXPECT_EQ(r.total_invocation_events, 7u);
}

TEST(Concurrency, GrowingBurstSpawnsOnlyTheDifference) {
  auto trace = TraceOf(1, {{0, 5, 2}, {0, 10, 5}});
  policy::FixedKeepAlivePolicy policy{UnitMap::PerFunction(1), 10};
  const auto r = SimulateConcurrent(trace, TimeRange{0, 200}, policy);
  EXPECT_EQ(r.total_cold_events, 2u + 3u);
  EXPECT_EQ(r.resident_containers[10], 5u);
}

TEST(Concurrency, ContainersExpireIndividuallyAfterKeepAlive) {
  auto trace = TraceOf(1, {{0, 5, 3}, {0, 30, 1}});
  policy::FixedKeepAlivePolicy policy{UnitMap::PerFunction(1), 10};
  const auto r = SimulateConcurrent(trace, TimeRange{0, 200}, policy);
  EXPECT_EQ(r.resident_containers[14], 3u);
  EXPECT_EQ(r.resident_containers[20], 0u);  // all expired
  EXPECT_EQ(r.total_cold_events, 4u);        // the 30' one is cold again
}

TEST(Concurrency, UnitInvocationKeepsAllMembersWarm) {
  // Functions 0,1 in one unit. Only 0 fires at 5; both get containers
  // (whole-set loading); 1's invocation at 10 is then warm.
  auto trace = TraceOf(2, {{0, 5, 1}, {1, 10, 1}});
  policy::FixedKeepAlivePolicy policy{
      UnitMap{std::vector<std::uint32_t>{0, 0}}, 10};
  const auto r = SimulateConcurrent(trace, TimeRange{0, 200}, policy);
  EXPECT_EQ(r.resident_containers[5], 2u);  // one per member
  EXPECT_EQ(r.unit_cold_events[0], 1u);     // only fn0's spawn at 5
  EXPECT_EQ(r.total_invocation_events, 2u);
}

TEST(Concurrency, PerFunctionUnitsDoNotCrossWarm) {
  auto trace = TraceOf(2, {{0, 5, 1}, {1, 10, 1}});
  policy::FixedKeepAlivePolicy policy{UnitMap::PerFunction(2), 10};
  const auto r = SimulateConcurrent(trace, TimeRange{0, 200}, policy);
  EXPECT_EQ(r.total_cold_events, 2u);
}

TEST(Concurrency, MatchesBasicSimulatorWhenCountsAreOne) {
  // With unit counts of 1 everywhere and per-function units under a
  // fixed keep-alive, event-level cold counts coincide with the basic
  // simulator's cold minutes.
  std::vector<std::tuple<std::uint32_t, Minute, std::uint32_t>> events;
  for (Minute t = 0; t < 180; t += 7) {
    events.emplace_back(static_cast<std::uint32_t>((t / 7) % 3), t, 1);
  }
  auto trace = TraceOf(3, events);
  policy::FixedKeepAlivePolicy p1{UnitMap::PerFunction(3), 15};
  policy::FixedKeepAlivePolicy p2{UnitMap::PerFunction(3), 15};
  const auto concurrent = SimulateConcurrent(trace, TimeRange{0, 200}, p1);
  const auto basic = Simulate(trace, TimeRange{0, 200}, p2);
  for (std::size_t u = 0; u < 3; ++u) {
    EXPECT_EQ(concurrent.unit_cold_events[u], basic.unit_cold_minutes[u])
        << "unit " << u;
    EXPECT_EQ(concurrent.unit_invocation_events[u],
              basic.unit_invoked_minutes[u]);
  }
  EXPECT_EQ(concurrent.resident_containers, basic.loaded_functions);
}

/// Differential anchor: with all counts = 1 and per-function units under
/// a fixed keep-alive, the container simulator must agree with the
/// (independently verified) unit-residency simulator on random
/// workloads.
class ConcurrencyDifferentialTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(ConcurrencyDifferentialTest, AgreesWithBaseSimulatorOnCountOne) {
  const auto [seed, keepalive] = GetParam();
  Rng rng{seed};
  constexpr std::size_t kFunctions = 12;
  trace::InvocationTrace trace{kFunctions, TimeRange{0, 500}};
  for (std::uint32_t f = 0; f < kFunctions; ++f) {
    Minute t = static_cast<Minute>(rng.NextBelow(30));
    while (t < 500) {
      trace.Add(FunctionId{f}, t);
      t += 1 + static_cast<Minute>(rng.NextBelow(50));
    }
  }
  trace.Finalize();
  policy::FixedKeepAlivePolicy p1{UnitMap::PerFunction(kFunctions),
                                  keepalive};
  policy::FixedKeepAlivePolicy p2{UnitMap::PerFunction(kFunctions),
                                  keepalive};
  const auto concurrent = SimulateConcurrent(trace, TimeRange{0, 500}, p1);
  const auto basic = Simulate(trace, TimeRange{0, 500}, p2);
  for (std::size_t u = 0; u < kFunctions; ++u) {
    EXPECT_EQ(concurrent.unit_cold_events[u], basic.unit_cold_minutes[u])
        << "seed=" << seed << " ka=" << keepalive << " unit=" << u;
  }
  EXPECT_EQ(concurrent.resident_containers, basic.loaded_functions);
  EXPECT_EQ(concurrent.spawned_containers, basic.loading_functions);
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, ConcurrencyDifferentialTest,
    ::testing::Combine(::testing::Values(10, 11, 12, 13, 14),
                       ::testing::Values(1, 5, 20)));

TEST(Concurrency, FunctionColdStartRatesInheritUnitRates) {
  auto trace = TraceOf(2, {{0, 5, 2}, {1, 5, 2}, {0, 8, 2}});
  policy::FixedKeepAlivePolicy policy{
      UnitMap{std::vector<std::uint32_t>{0, 0}}, 10};
  const auto r = SimulateConcurrent(trace, TimeRange{0, 200}, policy);
  const auto rates = r.FunctionColdStartRates(policy.unit_map());
  ASSERT_EQ(rates.size(), 2u);
  // 6 events, 4 cold spawns (2 + 2 at minute 5; minute 8 warm).
  EXPECT_DOUBLE_EQ(rates[0], 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(rates[0], rates[1]);
}

TEST(Concurrency, EventColdFractionAndAverages) {
  auto trace = TraceOf(1, {{0, 5, 2}}, 10);
  policy::FixedKeepAlivePolicy policy{UnitMap::PerFunction(1), 3};
  const auto r = SimulateConcurrent(trace, TimeRange{0, 10}, policy);
  EXPECT_DOUBLE_EQ(r.EventColdFraction(), 1.0);
  // Containers resident minutes 5,6,7 (2 each) -> avg 6/10.
  EXPECT_DOUBLE_EQ(r.AverageResidentContainers(), 0.6);
}

TEST(Concurrency, EmptyEvalRange) {
  auto trace = TraceOf(1, {{0, 5, 1}});
  policy::FixedKeepAlivePolicy policy{UnitMap::PerFunction(1), 10};
  const auto r = SimulateConcurrent(trace, TimeRange{50, 50}, policy);
  EXPECT_EQ(r.total_invocation_events, 0u);
  EXPECT_TRUE(r.resident_containers.empty());
}

}  // namespace
}  // namespace defuse::sim
