// Tests for weighted-memory accounting
// (SimulatorOptions::function_weights).
#include <gtest/gtest.h>

#include "policy/fixed.hpp"
#include "sim/simulator.hpp"

namespace defuse::sim {

using graph::UnitMap;
namespace {

trace::InvocationTrace TwoFunctionTrace() {
  trace::InvocationTrace t{2, TimeRange{0, 50}};
  t.Add(FunctionId{0}, 5);
  t.Add(FunctionId{1}, 20);
  t.Finalize();
  return t;
}

TEST(WeightedMemory, DisabledByDefault) {
  auto trace = TwoFunctionTrace();
  policy::FixedKeepAlivePolicy policy{UnitMap::PerFunction(2), 10};
  const auto r = Simulate(trace, TimeRange{0, 50}, policy);
  EXPECT_TRUE(r.loaded_weight.empty());
  EXPECT_DOUBLE_EQ(r.AverageWeightedMemory(), 0.0);
}

TEST(WeightedMemory, TracksPerMinuteWeight) {
  auto trace = TwoFunctionTrace();
  const std::vector<double> weights{2.0, 0.5};
  policy::FixedKeepAlivePolicy policy{UnitMap::PerFunction(2), 10};
  SimulatorOptions options;
  options.function_weights = &weights;
  const auto r = Simulate(trace, TimeRange{0, 50}, policy, options);
  ASSERT_EQ(r.loaded_weight.size(), 50u);
  EXPECT_DOUBLE_EQ(r.loaded_weight[5], 2.0);    // fn0 resident
  EXPECT_DOUBLE_EQ(r.loaded_weight[14], 2.0);   // still within keep-alive
  EXPECT_DOUBLE_EQ(r.loaded_weight[15], 0.0);   // evicted
  EXPECT_DOUBLE_EQ(r.loaded_weight[20], 0.5);   // fn1 resident
  EXPECT_DOUBLE_EQ(r.loaded_weight[40], 0.0);
}

TEST(WeightedMemory, UnitWeightIsTheSumOfMembers) {
  trace::InvocationTrace trace{2, TimeRange{0, 30}};
  trace.Add(FunctionId{0}, 5);
  trace.Finalize();
  const std::vector<double> weights{1.5, 2.5};
  policy::FixedKeepAlivePolicy policy{
      UnitMap{std::vector<std::uint32_t>{0, 0}}, 10};
  SimulatorOptions options;
  options.function_weights = &weights;
  const auto r = Simulate(trace, TimeRange{0, 30}, policy, options);
  EXPECT_DOUBLE_EQ(r.loaded_weight[5], 4.0);  // both functions load
}

TEST(WeightedMemory, UnitWeightsEqualCountsWhenAllOnes) {
  auto trace = TwoFunctionTrace();
  const std::vector<double> weights{1.0, 1.0};
  policy::FixedKeepAlivePolicy policy{UnitMap::PerFunction(2), 10};
  SimulatorOptions options;
  options.function_weights = &weights;
  const auto r = Simulate(trace, TimeRange{0, 50}, policy, options);
  for (std::size_t m = 0; m < 50; ++m) {
    EXPECT_DOUBLE_EQ(r.loaded_weight[m],
                     static_cast<double>(r.loaded_functions[m]));
  }
  EXPECT_DOUBLE_EQ(r.AverageWeightedMemory(), r.AverageMemoryUsage());
}

TEST(WeightedMemory, CapacityEvictionUpdatesWeight) {
  trace::InvocationTrace trace{2, TimeRange{0, 60}};
  trace.Add(FunctionId{0}, 5);
  trace.Add(FunctionId{1}, 10);
  trace.Finalize();
  const std::vector<double> weights{3.0, 1.0};
  policy::FixedKeepAlivePolicy policy{UnitMap::PerFunction(2), 50};
  SimulatorOptions options;
  options.function_weights = &weights;
  options.memory_limit = 1;  // unit 0 is evicted when unit 1 loads
  const auto r = Simulate(trace, TimeRange{0, 60}, policy, options);
  EXPECT_DOUBLE_EQ(r.loaded_weight[5], 3.0);
  EXPECT_DOUBLE_EQ(r.loaded_weight[10], 1.0);  // 0 evicted, 1 resident
  EXPECT_GT(r.capacity_evictions, 0u);
}

}  // namespace
}  // namespace defuse::sim
