// Invariant fuzzing: random workloads driven through random-but-valid
// policy decisions must never violate the simulator's accounting
// invariants, with or without a memory cap.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace defuse::sim {

using graph::UnitMap;
using policy::SchedulingPolicy;
using policy::UnitDecision;
namespace {

/// Emits pseudo-random (pre-warm, keep-alive) decisions.
class ChaosPolicy final : public SchedulingPolicy {
 public:
  ChaosPolicy(UnitMap units, std::uint64_t seed)
      : units_(std::move(units)), rng_(seed) {}

  [[nodiscard]] const UnitMap& unit_map() const noexcept override {
    return units_;
  }
  [[nodiscard]] UnitDecision OnInvocation(UnitId, Minute) override {
    UnitDecision d;
    d.prewarm = static_cast<MinuteDelta>(rng_.NextBelow(40));
    d.keepalive = static_cast<MinuteDelta>(rng_.NextBelow(60));
    return d;
  }
  void ObserveIdleTime(UnitId, MinuteDelta) override {}
  [[nodiscard]] const char* name() const noexcept override { return "chaos"; }

 private:
  UnitMap units_;
  Rng rng_;
};

struct FuzzCase {
  std::uint64_t seed;
  std::uint64_t memory_limit;  // 0 = unlimited
};

class SimulatorInvariantsTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(SimulatorInvariantsTest, AccountingInvariantsHold) {
  const auto [seed, memory_limit] = GetParam();
  Rng rng{seed};
  constexpr std::size_t kFunctions = 30;
  constexpr Minute kHorizon = 800;

  trace::InvocationTrace trace{kFunctions, TimeRange{0, kHorizon}};
  std::uint64_t expected_fn_minutes = 0;
  for (std::uint32_t f = 0; f < kFunctions; ++f) {
    Minute t = static_cast<Minute>(rng.NextBelow(50));
    while (t < kHorizon) {
      trace.Add(FunctionId{f}, t, 1 + static_cast<std::uint32_t>(
                                          rng.NextBelow(3)));
      ++expected_fn_minutes;
      t += 1 + static_cast<Minute>(rng.NextBelow(45));
    }
  }
  trace.Finalize();

  // Random partition into units.
  std::vector<std::uint32_t> fn_to_unit(kFunctions);
  for (auto& u : fn_to_unit) {
    u = static_cast<std::uint32_t>(rng.NextBelow(10));
  }
  // Densify.
  std::vector<std::int64_t> remap(10, -1);
  std::uint32_t next = 0;
  for (auto& u : fn_to_unit) {
    if (remap[u] < 0) remap[u] = next++;
    u = static_cast<std::uint32_t>(remap[u]);
  }

  ChaosPolicy policy{UnitMap{fn_to_unit}, seed ^ 0xabcd};
  SimulatorOptions options;
  options.memory_limit = memory_limit;
  const auto r = Simulate(trace, TimeRange{0, kHorizon}, policy, options);

  // (1) every function-minute event accounted exactly once;
  EXPECT_EQ(r.function_invocation_minutes, expected_fn_minutes);
  // (2) cold counts bounded by invocation counts, per unit and globally;
  EXPECT_LE(r.function_cold_minutes, r.function_invocation_minutes);
  std::uint64_t unit_invoked = 0;
  for (std::size_t u = 0; u < r.unit_invoked_minutes.size(); ++u) {
    EXPECT_LE(r.unit_cold_minutes[u], r.unit_invoked_minutes[u]);
    unit_invoked += r.unit_invoked_minutes[u];
  }
  EXPECT_LE(unit_invoked, expected_fn_minutes);
  // (3) memory samples bounded by the platform size (and the cap, when
  // no same-minute overcommit is forced — bursts of distinct units can
  // exceed the cap only transiently; the bound below is conservative);
  for (const auto loaded : r.loaded_functions) {
    EXPECT_LE(loaded, kFunctions);
  }
  // (4) rates derived from the counters are probabilities;
  for (const double rate : r.FunctionColdStartRates(policy.unit_map())) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
  // (5) loading events are nonzero iff something was ever cold/prewarmed.
  std::uint64_t loads = 0;
  for (const auto v : r.loading_functions) loads += v;
  EXPECT_GE(loads, r.unit_cold_minutes[0]);
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, SimulatorInvariantsTest,
    ::testing::Values(FuzzCase{101, 0}, FuzzCase{102, 0}, FuzzCase{103, 0},
                      FuzzCase{104, 12}, FuzzCase{105, 12},
                      FuzzCase{106, 5}, FuzzCase{107, 5}, FuzzCase{108, 2},
                      FuzzCase{109, 30}, FuzzCase{110, 1}));

}  // namespace
}  // namespace defuse::sim
