// Direct tests of SimulationResult's derived metrics (most behaviour is
// also covered end-to-end through the simulator tests).
#include <gtest/gtest.h>

#include "sim/metrics.hpp"

namespace defuse::sim {

using graph::UnitMap;
namespace {

/// Two units over three functions: unit 0 = {f0, f1}, unit 1 = {f2}.
UnitMap TwoUnits() { return UnitMap{std::vector<std::uint32_t>{0, 0, 1}}; }

SimulationResult MakeResult() {
  SimulationResult r;
  r.eval_range = TimeRange{0, 4};
  r.unit_invoked_minutes = {4, 2};
  r.unit_cold_minutes = {1, 2};
  r.loaded_functions = {2, 3, 3, 0};
  r.loading_functions = {2, 1, 0, 0};
  r.function_invocation_minutes = 6;
  r.function_cold_minutes = 3;
  return r;
}

TEST(Metrics, FunctionRatesInheritUnitRates) {
  const auto r = MakeResult();
  const auto rates = r.FunctionColdStartRates(TwoUnits());
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_DOUBLE_EQ(rates[0], 0.25);
  EXPECT_DOUBLE_EQ(rates[1], 0.25);
  EXPECT_DOUBLE_EQ(rates[2], 1.0);
}

TEST(Metrics, UninvokedUnitsAreSkipped) {
  auto r = MakeResult();
  r.unit_invoked_minutes[1] = 0;
  const auto rates = r.FunctionColdStartRates(TwoUnits());
  EXPECT_EQ(rates.size(), 2u);  // f2's unit never invoked
}

TEST(Metrics, AveragesOverTheWindow) {
  const auto r = MakeResult();
  EXPECT_DOUBLE_EQ(r.AverageMemoryUsage(), (2 + 3 + 3 + 0) / 4.0);
  EXPECT_DOUBLE_EQ(r.AverageLoadingFunctions(), 3.0 / 4.0);
}

TEST(Metrics, EmptyResultAveragesAreZero) {
  SimulationResult r;
  EXPECT_DOUBLE_EQ(r.AverageMemoryUsage(), 0.0);
  EXPECT_DOUBLE_EQ(r.AverageLoadingFunctions(), 0.0);
  EXPECT_DOUBLE_EQ(r.AverageWeightedMemory(), 0.0);
}

TEST(Metrics, PercentileAndEcdfAgree) {
  const auto r = MakeResult();
  const auto units = TwoUnits();
  const auto ecdf = r.ColdStartRateEcdf(units);
  EXPECT_EQ(ecdf.size(), 3u);
  // 2 of 3 rates are 0.25.
  EXPECT_DOUBLE_EQ(ecdf.At(0.25), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(r.ColdStartRatePercentile(units, 0.0), 0.25);
  EXPECT_DOUBLE_EQ(r.ColdStartRatePercentile(units, 1.0), 1.0);
}

TEST(Metrics, WeightedAverageUsesLoadedWeight) {
  SimulationResult r;
  r.loaded_weight = {1.5, 2.5, 0.0, 4.0};
  EXPECT_DOUBLE_EQ(r.AverageWeightedMemory(), 2.0);
}

}  // namespace
}  // namespace defuse::sim
