// Differential test: the event-driven simulator against a brute-force
// reference implementation for the fixed keep-alive policy, on random
// workloads. The reference models residency directly minute-by-minute:
//
//   a unit invoked at t is resident for minutes [t, t + K) (sliding on
//   each invocation); an invocation is warm iff the unit was already
//   resident at that minute.
//
// Any disagreement in cold counts, memory integral, or load counts is a
// simulator bug.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "policy/fixed.hpp"
#include "sim/simulator.hpp"

namespace defuse::sim {

using graph::UnitMap;
namespace {

struct Reference {
  std::vector<std::uint64_t> unit_cold;
  std::vector<std::uint64_t> unit_invoked;
  std::vector<std::uint64_t> loaded_per_minute;
  std::vector<std::uint64_t> loads_per_minute;
};

/// O(units x minutes) direct computation.
Reference SimulateReference(const trace::InvocationTrace& trace,
                            const UnitMap& units, TimeRange eval,
                            MinuteDelta keepalive) {
  const std::size_t n = units.num_units();
  const auto len = static_cast<std::size_t>(eval.length());
  Reference ref;
  ref.unit_cold.assign(n, 0);
  ref.unit_invoked.assign(n, 0);
  ref.loaded_per_minute.assign(len, 0);
  ref.loads_per_minute.assign(len, 0);

  // Per unit: the sorted minutes (within eval) at which it is invoked.
  std::vector<std::vector<Minute>> invocations(n);
  for (std::size_t f = 0; f < units.num_functions(); ++f) {
    const FunctionId fn{static_cast<std::uint32_t>(f)};
    const UnitId unit = units.unit_of(fn);
    for (const auto& e : trace.SeriesInRange(fn, eval)) {
      invocations[unit.value()].push_back(e.minute);
    }
  }
  for (auto& list : invocations) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  for (std::size_t u = 0; u < n; ++u) {
    Minute resident_until = -1;  // exclusive
    const auto size = units.unit_size(UnitId{static_cast<std::uint32_t>(u)});
    Minute resident_from = -1;
    const auto mark_resident = [&](Minute from, Minute until) {
      for (Minute t = from; t < until && t < eval.end; ++t) {
        if (t >= eval.begin) {
          ref.loaded_per_minute[static_cast<std::size_t>(t - eval.begin)] +=
              size;
        }
      }
    };
    for (const Minute t : invocations[u]) {
      ++ref.unit_invoked[u];
      const bool warm = t < resident_until;
      if (!warm) {
        ++ref.unit_cold[u];
        ref.loads_per_minute[static_cast<std::size_t>(t - eval.begin)] +=
            size;
        // Close out the previous residency interval.
        if (resident_from >= 0) mark_resident(resident_from, resident_until);
        resident_from = t;
      }
      resident_until = t + std::max<MinuteDelta>(keepalive, 1);
    }
    if (resident_from >= 0) mark_resident(resident_from, resident_until);
  }
  return ref;
}

class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int, int>> {};

TEST_P(DifferentialTest, MatchesReferenceOnRandomWorkloads) {
  const auto [seed, keepalive, granularity] = GetParam();
  Rng rng{seed};
  constexpr std::size_t kFunctions = 24;
  constexpr Minute kHorizon = 600;

  trace::InvocationTrace trace{kFunctions, TimeRange{0, kHorizon}};
  for (std::uint32_t f = 0; f < kFunctions; ++f) {
    Minute t = static_cast<Minute>(rng.NextBelow(40));
    while (t < kHorizon) {
      trace.Add(FunctionId{f}, t);
      t += 1 + static_cast<Minute>(rng.NextBelow(60));
    }
  }
  trace.Finalize();

  // Random unit partition: `granularity` controls how many functions
  // share a unit.
  std::vector<std::uint32_t> fn_to_unit(kFunctions);
  const auto num_units = kFunctions / static_cast<std::size_t>(granularity);
  for (std::size_t f = 0; f < kFunctions; ++f) {
    fn_to_unit[f] = static_cast<std::uint32_t>(rng.NextBelow(num_units));
  }
  // Densify (every unit id must own at least one function).
  std::map<std::uint32_t, std::uint32_t> dense;
  for (auto& u : fn_to_unit) {
    const auto [it, added] =
        dense.emplace(u, static_cast<std::uint32_t>(dense.size()));
    u = it->second;
  }

  const TimeRange eval{0, kHorizon};
  policy::FixedKeepAlivePolicy policy{UnitMap{fn_to_unit}, keepalive};
  const auto fast = Simulate(trace, eval, policy);
  const auto ref = SimulateReference(trace, policy.unit_map(), eval,
                                     keepalive);

  ASSERT_EQ(fast.unit_cold_minutes.size(), ref.unit_cold.size());
  for (std::size_t u = 0; u < ref.unit_cold.size(); ++u) {
    EXPECT_EQ(fast.unit_cold_minutes[u], ref.unit_cold[u]) << "unit " << u;
    EXPECT_EQ(fast.unit_invoked_minutes[u], ref.unit_invoked[u])
        << "unit " << u;
  }
  EXPECT_EQ(fast.loaded_functions, ref.loaded_per_minute);
  EXPECT_EQ(fast.loading_functions, ref.loads_per_minute);
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, DifferentialTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(1, 5, 10, 60),
                       ::testing::Values(1, 3, 8)));

}  // namespace
}  // namespace defuse::sim
