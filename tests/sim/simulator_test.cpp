#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace defuse::sim {

using graph::UnitMap;
using policy::SchedulingPolicy;
using policy::UnitDecision;
namespace {

/// Test policy: returns a fixed decision (optionally per unit) and
/// records every observed idle time.
class ScriptedPolicy final : public SchedulingPolicy {
 public:
  ScriptedPolicy(UnitMap units, UnitDecision decision)
      : units_(std::move(units)),
        decisions_(units_.num_units(), decision) {}

  void SetDecision(UnitId unit, UnitDecision decision) {
    decisions_[unit.value()] = decision;
  }

  [[nodiscard]] const UnitMap& unit_map() const noexcept override {
    return units_;
  }
  [[nodiscard]] UnitDecision OnInvocation(UnitId unit, Minute) override {
    return decisions_[unit.value()];
  }
  void ObserveIdleTime(UnitId unit, MinuteDelta gap) override {
    observed.emplace_back(unit.value(), gap);
  }
  [[nodiscard]] const char* name() const noexcept override {
    return "scripted";
  }

  std::vector<std::pair<std::uint32_t, MinuteDelta>> observed;

 private:
  UnitMap units_;
  std::vector<UnitDecision> decisions_;
};

trace::InvocationTrace TraceOf(std::size_t num_functions,
                               std::vector<std::pair<std::uint32_t, Minute>>
                                   events,
                               Minute horizon = 100) {
  trace::InvocationTrace t{num_functions, TimeRange{0, horizon}};
  for (const auto& [fn, minute] : events) t.Add(FunctionId{fn}, minute);
  t.Finalize();
  return t;
}

TEST(Simulator, FirstInvocationIsCold) {
  auto trace = TraceOf(1, {{0, 5}});
  ScriptedPolicy policy{UnitMap::PerFunction(1), {.prewarm = 0, .keepalive = 10}};
  const auto r = Simulate(trace, TimeRange{0, 100}, policy);
  EXPECT_EQ(r.unit_invoked_minutes[0], 1u);
  EXPECT_EQ(r.unit_cold_minutes[0], 1u);
  EXPECT_EQ(r.function_invocation_minutes, 1u);
  EXPECT_EQ(r.function_cold_minutes, 1u);
}

TEST(Simulator, WithinKeepAliveIsWarm) {
  auto trace = TraceOf(1, {{0, 5}, {0, 14}});  // gap 9 < keepalive 10
  ScriptedPolicy policy{UnitMap::PerFunction(1), {.prewarm = 0, .keepalive = 10}};
  const auto r = Simulate(trace, TimeRange{0, 100}, policy);
  EXPECT_EQ(r.unit_invoked_minutes[0], 2u);
  EXPECT_EQ(r.unit_cold_minutes[0], 1u);  // only the first
}

TEST(Simulator, GapEqualToKeepAliveIsCold) {
  // Residency is [t, t+keepalive): the eviction fires at the start of
  // minute t+keepalive, before invocations.
  auto trace = TraceOf(1, {{0, 5}, {0, 15}});
  ScriptedPolicy policy{UnitMap::PerFunction(1), {.prewarm = 0, .keepalive = 10}};
  const auto r = Simulate(trace, TimeRange{0, 100}, policy);
  EXPECT_EQ(r.unit_cold_minutes[0], 2u);
}

TEST(Simulator, KeepAliveSlidesOnEachInvocation) {
  // Invocations at 5, 10, 15: each within 10 of the previous, so only
  // the first is cold; the unit stays resident until 15 + 10 = 25.
  auto trace = TraceOf(1, {{0, 5}, {0, 10}, {0, 15}, {0, 24}});
  ScriptedPolicy policy{UnitMap::PerFunction(1), {.prewarm = 0, .keepalive = 10}};
  const auto r = Simulate(trace, TimeRange{0, 100}, policy);
  EXPECT_EQ(r.unit_invoked_minutes[0], 4u);
  EXPECT_EQ(r.unit_cold_minutes[0], 1u);
}

TEST(Simulator, StaleEvictionDoesNotFire) {
  // Without generation tracking, the eviction scheduled at 5+10=15 would
  // unload the unit even though the invocation at 10 re-armed it to 20.
  auto trace = TraceOf(1, {{0, 5}, {0, 10}, {0, 16}});
  ScriptedPolicy policy{UnitMap::PerFunction(1), {.prewarm = 0, .keepalive = 10}};
  const auto r = Simulate(trace, TimeRange{0, 100}, policy);
  EXPECT_EQ(r.unit_cold_minutes[0], 1u);
}

TEST(Simulator, MemoryAccountingTracksResidency) {
  auto trace = TraceOf(1, {{0, 5}});
  ScriptedPolicy policy{UnitMap::PerFunction(1), {.prewarm = 0, .keepalive = 3}};
  const auto r = Simulate(trace, TimeRange{0, 12}, policy);
  // Resident minutes: 5, 6, 7 (evicted at start of minute 8).
  const std::vector<std::uint64_t> expected{0, 0, 0, 0, 0, 1, 1, 1,
                                            0, 0, 0, 0};
  EXPECT_EQ(r.loaded_functions, expected);
  EXPECT_NEAR(r.AverageMemoryUsage(), 3.0 / 12.0, 1e-12);
}

TEST(Simulator, LoadingFunctionsCountsColdLoads) {
  auto trace = TraceOf(1, {{0, 5}, {0, 50}});
  ScriptedPolicy policy{UnitMap::PerFunction(1), {.prewarm = 0, .keepalive = 3}};
  const auto r = Simulate(trace, TimeRange{0, 100}, policy);
  EXPECT_EQ(r.loading_functions[5], 1u);
  EXPECT_EQ(r.loading_functions[50], 1u);
  EXPECT_EQ(r.AverageLoadingFunctions(), 2.0 / 100.0);
}

TEST(Simulator, PrewarmLoadsBeforeTheNextInvocation) {
  // Decision (prewarm 10, keepalive 5) and a 12-minute period: evicted at
  // 6, re-loaded at 15, so the invocation at 17 is warm.
  auto trace = TraceOf(1, {{0, 5}, {0, 17}});
  ScriptedPolicy policy{UnitMap::PerFunction(1),
                        {.prewarm = 10, .keepalive = 5}};
  const auto r = Simulate(trace, TimeRange{0, 100}, policy);
  EXPECT_EQ(r.unit_cold_minutes[0], 1u);
  // Residency: minute 5 (invocation), then 15..19 (prewarm window refreshed
  // at 17): loaded at 15, invocation 17 re-decides -> evict 18, load 27.
  EXPECT_EQ(r.loaded_functions[5], 1u);
  EXPECT_EQ(r.loaded_functions[6], 0u);   // evicted after the minute
  EXPECT_EQ(r.loaded_functions[14], 0u);
  EXPECT_EQ(r.loaded_functions[15], 1u);  // pre-warm load
  EXPECT_EQ(r.loaded_functions[16], 1u);
  EXPECT_EQ(r.loaded_functions[17], 1u);  // warm invocation, then evict at 18
  EXPECT_EQ(r.loaded_functions[18], 0u);
  // The pre-warm load is charged to the loading counter.
  EXPECT_EQ(r.loading_functions[15], 1u);
}

TEST(Simulator, PrewarmTooLateIsCold) {
  auto trace = TraceOf(1, {{0, 5}, {0, 12}});  // next fires before 5+10
  ScriptedPolicy policy{UnitMap::PerFunction(1),
                        {.prewarm = 10, .keepalive = 5}};
  const auto r = Simulate(trace, TimeRange{0, 100}, policy);
  EXPECT_EQ(r.unit_cold_minutes[0], 2u);
}

TEST(Simulator, LingerKeepsResidencyBeforeThePrewarmGap) {
  // (prewarm 20, keepalive 5, linger 10): resident [t, t+10), gap,
  // resident [t+20, t+25).
  auto trace = TraceOf(1, {{0, 5}});
  ScriptedPolicy policy{UnitMap::PerFunction(1),
                        {.prewarm = 20, .keepalive = 5, .linger = 10}};
  const auto r = Simulate(trace, TimeRange{0, 40}, policy);
  EXPECT_EQ(r.loaded_functions[5], 1u);
  EXPECT_EQ(r.loaded_functions[14], 1u);  // still lingering
  EXPECT_EQ(r.loaded_functions[15], 0u);  // linger over
  EXPECT_EQ(r.loaded_functions[24], 0u);
  EXPECT_EQ(r.loaded_functions[25], 1u);  // pre-warm landed
  EXPECT_EQ(r.loaded_functions[29], 1u);
  EXPECT_EQ(r.loaded_functions[30], 0u);
}

TEST(Simulator, LingerCoveringThePrewarmFoldsToContinuous) {
  // prewarm <= linger: continuous residency, one load only.
  auto trace = TraceOf(1, {{0, 5}});
  ScriptedPolicy policy{UnitMap::PerFunction(1),
                        {.prewarm = 8, .keepalive = 4, .linger = 10}};
  const auto r = Simulate(trace, TimeRange{0, 40}, policy);
  // Folded keep-alive = max(linger, prewarm + keepalive) = 12.
  EXPECT_EQ(r.loaded_functions[16], 1u);
  EXPECT_EQ(r.loaded_functions[17], 0u);
  std::uint64_t loads = 0;
  for (const auto v : r.loading_functions) loads += v;
  EXPECT_EQ(loads, 1u);
}

TEST(Simulator, WarmInvocationDuringLingerIsWarm) {
  auto trace = TraceOf(1, {{0, 5}, {0, 12}});
  ScriptedPolicy policy{UnitMap::PerFunction(1),
                        {.prewarm = 30, .keepalive = 5, .linger = 10}};
  const auto r = Simulate(trace, TimeRange{0, 60}, policy);
  EXPECT_EQ(r.unit_cold_minutes[0], 1u);  // 12 is inside [5, 15)
}

TEST(Simulator, PrewarmOfOneMinuteFoldsIntoKeepAlive) {
  // prewarm <= 1 must behave like continuous residency, not an
  // evict-and-reload, and must not emit an extra load event.
  auto trace = TraceOf(1, {{0, 5}, {0, 7}});
  ScriptedPolicy policy{UnitMap::PerFunction(1),
                        {.prewarm = 1, .keepalive = 2}};
  const auto r = Simulate(trace, TimeRange{0, 100}, policy);
  EXPECT_EQ(r.unit_cold_minutes[0], 1u);  // 7 - 5 = 2 < 1 + 2
  std::uint64_t total_loads = 0;
  for (const auto v : r.loading_functions) total_loads += v;
  EXPECT_EQ(total_loads, 1u);
}

TEST(Simulator, UnitGranularitySharesResidency) {
  // Functions 0 and 1 form one unit: 0's invocation keeps 1 warm.
  auto trace = TraceOf(2, {{0, 5}, {1, 8}});
  ScriptedPolicy policy{UnitMap{std::vector<std::uint32_t>{0, 0}},
                        {.prewarm = 0, .keepalive = 10}};
  const auto r = Simulate(trace, TimeRange{0, 100}, policy);
  EXPECT_EQ(r.unit_invoked_minutes[0], 2u);
  EXPECT_EQ(r.unit_cold_minutes[0], 1u);
  // Unit size 2: the cold load loads both functions.
  EXPECT_EQ(r.loading_functions[5], 2u);
  EXPECT_EQ(r.loaded_functions[5], 2u);
}

TEST(Simulator, SameMinuteSameUnitIsOneUnitEvent) {
  auto trace = TraceOf(2, {{0, 5}, {1, 5}});
  ScriptedPolicy policy{UnitMap{std::vector<std::uint32_t>{0, 0}},
                        {.prewarm = 0, .keepalive = 10}};
  const auto r = Simulate(trace, TimeRange{0, 100}, policy);
  EXPECT_EQ(r.unit_invoked_minutes[0], 1u);
  EXPECT_EQ(r.unit_cold_minutes[0], 1u);
  // Both function events share the unit's cold resolution.
  EXPECT_EQ(r.function_invocation_minutes, 2u);
  EXPECT_EQ(r.function_cold_minutes, 2u);
}

TEST(Simulator, SameMinuteDifferentUnitsAreIndependent) {
  auto trace = TraceOf(2, {{0, 5}, {1, 5}});
  ScriptedPolicy policy{UnitMap::PerFunction(2), {.prewarm = 0, .keepalive = 5}};
  const auto r = Simulate(trace, TimeRange{0, 100}, policy);
  EXPECT_EQ(r.unit_cold_minutes[0], 1u);
  EXPECT_EQ(r.unit_cold_minutes[1], 1u);
  EXPECT_EQ(r.loaded_functions[5], 2u);
}

TEST(Simulator, ObserveIdleTimeReportsGaps) {
  auto trace = TraceOf(1, {{0, 5}, {0, 9}, {0, 30}});
  ScriptedPolicy policy{UnitMap::PerFunction(1), {.prewarm = 0, .keepalive = 2}};
  (void)Simulate(trace, TimeRange{0, 100}, policy);
  ASSERT_EQ(policy.observed.size(), 2u);
  EXPECT_EQ(policy.observed[0], (std::pair<std::uint32_t, MinuteDelta>{0, 4}));
  EXPECT_EQ(policy.observed[1], (std::pair<std::uint32_t, MinuteDelta>{0, 21}));
}

TEST(Simulator, OnlineUpdatesCanBeDisabled) {
  auto trace = TraceOf(1, {{0, 5}, {0, 9}});
  ScriptedPolicy policy{UnitMap::PerFunction(1), {.prewarm = 0, .keepalive = 2}};
  SimulatorOptions options;
  options.online_updates = false;
  (void)Simulate(trace, TimeRange{0, 100}, policy, options);
  EXPECT_TRUE(policy.observed.empty());
}

TEST(Simulator, EvalRangeOffsetsAreRespected) {
  // Events before eval.begin must not count.
  auto trace = TraceOf(1, {{0, 5}, {0, 55}}, 100);
  ScriptedPolicy policy{UnitMap::PerFunction(1), {.prewarm = 0, .keepalive = 5}};
  const auto r = Simulate(trace, TimeRange{50, 100}, policy);
  EXPECT_EQ(r.unit_invoked_minutes[0], 1u);
  EXPECT_EQ(r.loaded_functions.size(), 50u);
  EXPECT_EQ(r.loaded_functions[5], 1u);  // minute 55, offset 5
}

TEST(Simulator, EmptyEvalRange) {
  auto trace = TraceOf(1, {{0, 5}});
  ScriptedPolicy policy{UnitMap::PerFunction(1), {.prewarm = 0, .keepalive = 5}};
  const auto r = Simulate(trace, TimeRange{50, 50}, policy);
  EXPECT_TRUE(r.loaded_functions.empty());
  EXPECT_EQ(r.function_invocation_minutes, 0u);
}

TEST(Simulator, ZeroKeepAliveStillServesTheCurrentMinute) {
  auto trace = TraceOf(2, {{0, 5}, {1, 5}});
  ScriptedPolicy policy{UnitMap{std::vector<std::uint32_t>{0, 0}},
                        {.prewarm = 0, .keepalive = 0}};
  const auto r = Simulate(trace, TimeRange{0, 10}, policy);
  EXPECT_EQ(r.function_cold_minutes, 2u);  // one unit resolution, shared
  EXPECT_EQ(r.loaded_functions[5], 2u);    // resident during minute 5
  EXPECT_EQ(r.loaded_functions[6], 0u);    // evicted right after
}

TEST(Simulator, ColdStartRateMetricsPropagate) {
  auto trace = TraceOf(2, {{0, 5}, {0, 8}, {1, 5}, {1, 30}});
  ScriptedPolicy policy{UnitMap::PerFunction(2), {.prewarm = 0, .keepalive = 10}};
  const auto r = Simulate(trace, TimeRange{0, 100}, policy);
  const auto rates = r.FunctionColdStartRates(policy.unit_map());
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 0.5);  // cold at 5, warm at 8
  EXPECT_DOUBLE_EQ(rates[1], 1.0);  // cold at 5 and at 30
  EXPECT_DOUBLE_EQ(r.ColdStartRatePercentile(policy.unit_map(), 0.0), 0.5);
  EXPECT_DOUBLE_EQ(r.ColdStartRatePercentile(policy.unit_map(), 1.0), 1.0);
}

TEST(Simulator, UninvokedFunctionsHaveNoRate) {
  auto trace = TraceOf(3, {{0, 5}});
  ScriptedPolicy policy{UnitMap::PerFunction(3), {.prewarm = 0, .keepalive = 5}};
  const auto r = Simulate(trace, TimeRange{0, 100}, policy);
  EXPECT_EQ(r.FunctionColdStartRates(policy.unit_map()).size(), 1u);
}

TEST(Simulator, SharedUnitRateInheritedByAllMembers) {
  // Functions 0,1 in one unit; only 0 is ever invoked. Function 1 still
  // has no rate (it never fired), but if both fire they share the unit's.
  auto trace = TraceOf(2, {{0, 5}, {1, 8}});
  ScriptedPolicy policy{UnitMap{std::vector<std::uint32_t>{0, 0}},
                        {.prewarm = 0, .keepalive = 10}};
  const auto r = Simulate(trace, TimeRange{0, 100}, policy);
  const auto rates = r.FunctionColdStartRates(policy.unit_map());
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 0.5);
  EXPECT_DOUBLE_EQ(rates[1], 0.5);  // inherits the unit's rate
}

}  // namespace
}  // namespace defuse::sim
