// Scenario matrix: every preset is a pure deterministic function of
// (spec, seed), scale overrides apply, and the presets are actually
// distinct workload shapes.
#include "arena/scenarios.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "trace/generator.hpp"

namespace defuse::arena {
namespace {

/// FNV-1a over every (function, minute, count) event of the trace — a
/// cheap bit-identity fingerprint.
std::uint64_t TraceFingerprint(const trace::InvocationTrace& trace) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (std::size_t fn = 0; fn < trace.num_functions(); ++fn) {
    for (const auto& e : trace.SeriesInRange(FunctionId{
             static_cast<std::uint32_t>(fn)}, trace.horizon())) {
      mix(fn);
      mix(static_cast<std::uint64_t>(e.minute));
      mix(e.count);
    }
  }
  return h;
}

TEST(ScenarioRegistry, ListsEveryPresetSorted) {
  const auto& entries = ScenarioRegistry::Builtin().entries();
  ASSERT_EQ(entries.size(), 5u);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].name, entries[i].name);
  }
  for (const char* name : {"azure_like", "flat_poisson", "huawei_bursty",
                           "huawei_diurnal", "skew_extreme"}) {
    EXPECT_NE(ScenarioRegistry::Builtin().Find(name), nullptr) << name;
  }
}

TEST(ScenarioRegistry, GenerationIsDeterministicPerSeed) {
  for (const auto& entry : ScenarioRegistry::Builtin().entries()) {
    for (std::uint64_t seed : {0ull, 3ull, 9ull}) {
      auto spec = ScenarioRegistry::Builtin().Resolve(
          entry.name + ":users=4,days=2", seed);
      ASSERT_TRUE(spec.ok()) << entry.name;
      const auto a = trace::GenerateScenario(spec.value());
      const auto b = trace::GenerateScenario(spec.value());
      EXPECT_EQ(TraceFingerprint(a.trace), TraceFingerprint(b.trace))
          << entry.name << " seed " << seed;
      EXPECT_EQ(a.trace.TotalInvocations(a.trace.horizon()),
                b.trace.TotalInvocations(b.trace.horizon()));
    }
  }
}

TEST(ScenarioRegistry, SeedChangesTheWorkload) {
  auto s0 = ScenarioRegistry::Builtin().Resolve("azure_like:users=4,days=2", 0);
  auto s1 = ScenarioRegistry::Builtin().Resolve("azure_like:users=4,days=2", 1);
  ASSERT_TRUE(s0.ok());
  ASSERT_TRUE(s1.ok());
  EXPECT_NE(TraceFingerprint(trace::GenerateScenario(s0.value()).trace),
            TraceFingerprint(trace::GenerateScenario(s1.value()).trace));
}

TEST(ScenarioRegistry, PresetsAreDistinctShapes) {
  std::vector<std::uint64_t> fingerprints;
  for (const auto& entry : ScenarioRegistry::Builtin().entries()) {
    auto spec = ScenarioRegistry::Builtin().Resolve(
        entry.name + ":users=4,days=2", 42);
    ASSERT_TRUE(spec.ok()) << entry.name;
    fingerprints.push_back(
        TraceFingerprint(trace::GenerateScenario(spec.value()).trace));
  }
  for (std::size_t i = 0; i < fingerprints.size(); ++i) {
    for (std::size_t j = i + 1; j < fingerprints.size(); ++j) {
      EXPECT_NE(fingerprints[i], fingerprints[j]) << i << " vs " << j;
    }
  }
}

TEST(ScenarioRegistry, ScaleOverridesApply) {
  auto spec =
      ScenarioRegistry::Builtin().Resolve("huawei_bursty:users=3,days=2", 5);
  ASSERT_TRUE(spec.ok());
  const auto w = trace::GenerateScenario(spec.value());
  EXPECT_EQ(w.model.num_users(), 3u);
  EXPECT_EQ(w.trace.horizon().length(), 2 * kMinutesPerDay);
}

TEST(ScenarioRegistry, DefaultScaleIsScenarioOwn) {
  auto spec = ScenarioRegistry::Builtin().Resolve("flat_poisson", 5);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().num_users, 0u);
  EXPECT_EQ(spec.value().horizon_minutes, 0);
  const auto cfg = trace::MakeScenarioConfig(spec.value());
  EXPECT_GT(cfg.num_users, 0u);
  EXPECT_GT(cfg.horizon_minutes, 0);
}

}  // namespace
}  // namespace defuse::arena
