// Registry construction: registry-built policies must be byte-identical
// to directly-constructed ones (same histograms, same simulation), and
// missing build inputs must fail with kFailedPrecondition, not crash.
#include "arena/registry.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "arena/scenarios.hpp"
#include "core/defuse.hpp"
#include "core/experiment.hpp"
#include "policy/hybrid.hpp"
#include "sim/simulator.hpp"
#include "trace/generator.hpp"

namespace defuse::arena {
namespace {

struct Fixture {
  trace::SyntheticWorkload workload;
  TimeRange train;
  TimeRange eval;
  core::MiningOutput mining;
};

Fixture MakeFixture(std::uint64_t seed = 7) {
  trace::ScenarioSpec spec;
  spec.kind = trace::ScenarioKind::kAzureLike;
  spec.seed = seed;
  spec.num_users = 6;
  spec.horizon_minutes = 7 * kMinutesPerDay;
  auto workload = trace::GenerateScenario(spec);
  const auto [train, eval] = core::SplitTrainEval(workload.trace.horizon());
  auto mined = core::MineDependencies(workload.trace, workload.model, train);
  EXPECT_TRUE(mined.ok());
  return Fixture{.workload = std::move(workload),
                 .train = train,
                 .eval = eval,
                 .mining = std::move(mined).value()};
}

PolicyBuildContext ContextOf(const Fixture& f) {
  return PolicyBuildContext{.model = &f.workload.model,
                            .trace = &f.workload.trace,
                            .train = f.train,
                            .mining = &f.mining};
}

TEST(PolicyRegistry, ListsEveryBuiltinSorted) {
  const auto& entries = PolicyRegistry::Builtin().entries();
  ASSERT_GE(entries.size(), 8u);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].name, entries[i].name);
  }
  for (const char* name :
       {"ar", "diurnal", "fixed", "forecast", "hiku", "hybrid", "predictor",
        "spes"}) {
    EXPECT_NE(PolicyRegistry::Builtin().Find(name), nullptr) << name;
  }
}

TEST(PolicyRegistry, HybridSetMatchesDirectConstructionByteForByte) {
  const auto f = MakeFixture();
  auto built = PolicyRegistry::Builtin().Build(ContextOf(f), "hybrid:set");
  ASSERT_TRUE(built.ok()) << built.error().message;

  auto direct =
      core::MakeDefuseScheduler(f.workload.trace, f.mining, f.train);

  auto* hybrid =
      dynamic_cast<policy::HybridHistogramPolicy*>(built.value().get());
  ASSERT_NE(hybrid, nullptr);
  EXPECT_EQ(hybrid->SerializeHistograms(), direct->SerializeHistograms());

  const auto a = sim::Simulate(f.workload.trace, f.eval, *built.value());
  const auto b = sim::Simulate(f.workload.trace, f.eval, *direct);
  EXPECT_EQ(a.unit_cold_minutes, b.unit_cold_minutes);
  EXPECT_EQ(a.unit_invoked_minutes, b.unit_invoked_minutes);
  EXPECT_EQ(a.loaded_functions, b.loaded_functions);
  EXPECT_EQ(a.loading_functions, b.loading_functions);
  EXPECT_EQ(a.function_cold_minutes, b.function_cold_minutes);
}

TEST(PolicyRegistry, VariantAliasesBuildTheSamePolicy) {
  const auto f = MakeFixture();
  const auto ctx = ContextOf(f);
  auto coarse = PolicyRegistry::Builtin().Build(ctx, "hybrid:coarse");
  auto app = PolicyRegistry::Builtin().Build(ctx, "hybrid:variant=application");
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(app.ok());
  auto* a = dynamic_cast<policy::HybridHistogramPolicy*>(coarse.value().get());
  auto* b = dynamic_cast<policy::HybridHistogramPolicy*>(app.value().get());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->SerializeHistograms(), b->SerializeHistograms());
}

TEST(PolicyRegistry, EveryBuiltinConstructsAndSimulates) {
  const auto f = MakeFixture();
  const auto ctx = ContextOf(f);
  for (const char* spec :
       {"ar", "diurnal", "fixed", "forecast", "hiku", "hybrid:set",
        "hybrid:function", "hybrid:application", "predictor",
        "spes:tier=latency", "spes:tier=balanced", "spes:tier=cost"}) {
    auto built = PolicyRegistry::Builtin().Build(ctx, spec);
    ASSERT_TRUE(built.ok()) << spec << ": " << built.error().message;
    const auto r = sim::Simulate(f.workload.trace, f.eval, *built.value());
    EXPECT_GT(r.function_invocation_minutes, 0u) << spec;
  }
}

TEST(PolicyRegistry, MissingMiningIsFailedPrecondition) {
  const auto f = MakeFixture();
  auto ctx = ContextOf(f);
  ctx.mining = nullptr;
  for (const char* spec : {"hybrid:set", "diurnal", "predictor", "ar",
                           "hiku", "forecast"}) {
    auto built = PolicyRegistry::Builtin().Build(ctx, spec);
    ASSERT_FALSE(built.ok()) << spec;
    EXPECT_EQ(built.error().code, ErrorCode::kFailedPrecondition) << spec;
  }
  // Trace-only policies still build without mining.
  for (const char* spec : {"fixed", "hybrid:function", "spes"}) {
    auto built = PolicyRegistry::Builtin().Build(ctx, spec);
    EXPECT_TRUE(built.ok()) << spec;
  }
}

TEST(PolicyRegistry, MissingTraceIsFailedPrecondition) {
  PolicyBuildContext empty;
  auto built = PolicyRegistry::Builtin().Build(empty, "fixed");
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.error().code, ErrorCode::kFailedPrecondition);
}

TEST(PolicyRegistry, RegisterRejectsDuplicates) {
  PolicyRegistry registry;
  PolicyEntry entry;
  entry.name = "custom";
  entry.factory = [](const PolicyBuildContext&, const SpecValues&)
      -> Result<std::unique_ptr<policy::SchedulingPolicy>> {
    return Error{.code = ErrorCode::kFailedPrecondition, .message = "stub"};
  };
  ASSERT_TRUE(registry.Register(entry).ok());
  EXPECT_FALSE(registry.Register(entry).ok());
  EXPECT_NE(registry.Find("custom"), nullptr);
}

}  // namespace
}  // namespace defuse::arena
