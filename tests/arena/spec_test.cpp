// Spec grammar and schema resolution: the good cases, and a
// table-driven sweep of malformed specs — every rejection must be
// kInvalidArgument and must name the offending token.
#include "arena/spec.hpp"

#include <gtest/gtest.h>

#include "arena/registry.hpp"
#include "arena/scenarios.hpp"

namespace defuse::arena {
namespace {

TEST(ParseSpec, NameOnly) {
  const auto r = ParseSpec("fixed");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().name, "fixed");
  EXPECT_TRUE(r.value().params.empty());
}

TEST(ParseSpec, BareWordIsVariantSugar) {
  const auto r = ParseSpec("hybrid:coarse");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().params.size(), 1u);
  EXPECT_EQ(r.value().params[0].first, "variant");
  EXPECT_EQ(r.value().params[0].second, "coarse");
}

TEST(ParseSpec, KeyValueList) {
  const auto r = ParseSpec("hiku:delay=2,window=7");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().params.size(), 2u);
  EXPECT_EQ(r.value().params[0], (std::pair<std::string, std::string>{
                                     "delay", "2"}));
  EXPECT_EQ(r.value().params[1], (std::pair<std::string, std::string>{
                                     "window", "7"}));
}

struct BadSpec {
  const char* spec;
  /// Every rejection must mention this token in its message.
  const char* token;
};

/// Pure grammar failures (ParseSpec).
TEST(ParseSpec, MalformedSpecsRejectNamingTheToken) {
  const BadSpec kBad[] = {
      {"", "empty"},
      {":", "invalid name"},
      {"Fixed", "Fixed"},              // uppercase name
      {"fi xed", "fi xed"},            // space in name
      {"fixed:", "empty parameter list"},
      {"fixed:,", "empty token"},
      {"fixed:keepalive=5,,", "empty token"},
      {"fixed:=5", "=5"},              // empty key
      {"fixed:keepalive=", "keepalive="},  // empty value
      {"fixed:keep alive=5", "keep alive=5"},
      {"fixed:a=1=2", "a=1=2"},        // second '='
      {"hybrid:variant=set,variant=app", "variant"},  // duplicate key
      {"hiku:delay=1,delay=2", "delay"},
  };
  for (const auto& bad : kBad) {
    const auto r = ParseSpec(bad.spec);
    ASSERT_FALSE(r.ok()) << "spec '" << bad.spec << "' parsed";
    EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument) << bad.spec;
    EXPECT_NE(r.error().message.find(bad.token), std::string::npos)
        << "spec '" << bad.spec << "' error does not name '" << bad.token
        << "': " << r.error().message;
  }
}

/// Schema failures through the policy registry (unknown names, unknown
/// params, type errors, out-of-range values, bad enum choices).
TEST(PolicyRegistry, MalformedSpecsRejectNamingTheToken) {
  const BadSpec kBad[] = {
      {"nosuch", "nosuch"},
      {"fixed:bogus=1", "bogus"},
      {"fixed:keepalive=0", "keepalive=0"},      // below range
      {"fixed:keepalive=1441", "keepalive=1441"},  // above range
      {"fixed:keepalive=abc", "keepalive=abc"},  // not an int
      {"fixed:keepalive=2.5", "keepalive=2.5"},  // int param, double value
      {"ar:band=0.1", "band=0.1"},               // below double range
      {"ar:band=xyz", "band=xyz"},               // not a double
      {"hybrid:variant=bogus", "variant=bogus"},  // bad enum choice
      {"hybrid:nope", "variant=nope"},            // bad bare-word variant
      {"spes:tier=warm", "tier=warm"},
  };
  const auto& registry = PolicyRegistry::Builtin();
  for (const auto& bad : kBad) {
    const auto r = registry.Resolve(bad.spec);
    ASSERT_FALSE(r.ok()) << "spec '" << bad.spec << "' resolved";
    EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument) << bad.spec;
    EXPECT_NE(r.error().message.find(bad.token), std::string::npos)
        << "spec '" << bad.spec << "' error does not name '" << bad.token
        << "': " << r.error().message;
  }
}

TEST(ScenarioRegistry, MalformedSpecsReject) {
  const BadSpec kBad[] = {
      {"mars_colony", "mars_colony"},
      {"azure_like:users=-1", "users=-1"},
      {"azure_like:days=366", "days=366"},
      {"azure_like:users=3,users=4", "users"},
  };
  const auto& registry = ScenarioRegistry::Builtin();
  for (const auto& bad : kBad) {
    const auto r = registry.Resolve(bad.spec, 1);
    ASSERT_FALSE(r.ok()) << "spec '" << bad.spec << "' resolved";
    EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument) << bad.spec;
    EXPECT_NE(r.error().message.find(bad.token), std::string::npos)
        << "spec '" << bad.spec << "' error does not name '" << bad.token
        << "': " << r.error().message;
  }
}

TEST(ResolveSpec, FillsDefaultsAndMarksExplicit) {
  const auto& registry = PolicyRegistry::Builtin();
  const auto r = registry.Resolve("fixed:keepalive=25");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().values.GetInt("keepalive"), 25);
  EXPECT_TRUE(r.value().values.WasExplicit("keepalive"));

  const auto d = registry.Resolve("fixed");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().values.GetInt("keepalive"), 10);
  EXPECT_FALSE(d.value().values.WasExplicit("keepalive"));
}

TEST(ResolveSpec, EnumDefaultsApply) {
  const auto& registry = PolicyRegistry::Builtin();
  const auto r = registry.Resolve("hybrid");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().values.GetEnum("variant"), "set");
  const auto c = registry.Resolve("hybrid:coarse");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().values.GetEnum("variant"), "coarse");
}

TEST(DescribeParam, RendersRangeAndDefault) {
  ParamInfo info;
  info.key = "keepalive";
  info.type = ParamType::kInt;
  info.min_value = 1;
  info.max_value = 1440;
  info.default_value = "10";
  const auto text = DescribeParam(info);
  EXPECT_NE(text.find("keepalive"), std::string::npos);
  EXPECT_NE(text.find("1440"), std::string::npos);
  EXPECT_NE(text.find("10"), std::string::npos);
}

}  // namespace
}  // namespace defuse::arena
