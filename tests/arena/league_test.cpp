// League determinism and the triggered pre-warm machinery the hiku
// competitor rides on.
//
// The headline arena guarantee: every policy×scenario cell is
// bit-identical across reruns for seeds 0–9 (the CSV rendering is
// compared byte-for-byte, so every metric in every cell is pinned).
#include "arena/league.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace defuse::arena {
namespace {

LeagueConfig TinyConfig(std::uint64_t seed) {
  LeagueConfig config;
  config.policies = {"fixed", "hybrid:set", "hiku", "spes:tier=cost"};
  config.scenarios = {"flat_poisson", "huawei_bursty"};
  config.seed = seed;
  config.num_users = 4;
  config.horizon_minutes = 2 * kMinutesPerDay;
  return config;
}

TEST(League, RerunsAreBitIdenticalForSeeds0To9) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto a = RunLeague(TinyConfig(seed));
    auto b = RunLeague(TinyConfig(seed));
    ASSERT_TRUE(a.ok()) << "seed " << seed << ": " << a.error().message;
    ASSERT_TRUE(b.ok()) << "seed " << seed << ": " << b.error().message;
    EXPECT_EQ(RenderLeagueCsv(a.value()), RenderLeagueCsv(b.value()))
        << "seed " << seed;
  }
}

TEST(League, CellsCoverTheCrossProductScenarioMajor) {
  const auto config = TinyConfig(1);
  auto table = RunLeague(config);
  ASSERT_TRUE(table.ok()) << table.error().message;
  ASSERT_EQ(table.value().cells.size(),
            config.policies.size() * config.scenarios.size());
  std::size_t i = 0;
  for (const auto& scenario : config.scenarios) {
    for (const auto& policy : config.policies) {
      EXPECT_EQ(table.value().cells[i].scenario, scenario);
      EXPECT_EQ(table.value().cells[i].policy, policy);
      EXPECT_GT(table.value().cells[i].num_units, 0u);
      EXPECT_GT(table.value().cells[i].invocation_minutes, 0u);
      ++i;
    }
  }
}

TEST(League, BadPolicySpecFailsBeforeAnyMining) {
  auto config = TinyConfig(1);
  config.policies.push_back("fixed:keepalive=nope");
  auto table = RunLeague(config);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.error().code, ErrorCode::kInvalidArgument);
  EXPECT_NE(table.error().message.find("keepalive=nope"), std::string::npos)
      << table.error().message;
}

TEST(League, BadScenarioSpecFails) {
  auto config = TinyConfig(1);
  config.scenarios = {"made_up_world"};
  auto table = RunLeague(config);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.error().code, ErrorCode::kInvalidArgument);
  EXPECT_NE(table.error().message.find("made_up_world"), std::string::npos);
}

TEST(League, JsonAndCsvRowsAgreeOnCellCount) {
  auto table = RunLeague(TinyConfig(2));
  ASSERT_TRUE(table.ok());
  const auto csv = RenderLeagueCsv(table.value());
  const auto json = LeagueTableJson(table.value());
  std::size_t csv_rows = 0;
  for (const char c : csv) csv_rows += c == '\n' ? 1u : 0u;
  EXPECT_EQ(csv_rows, table.value().cells.size() + 1);  // + header
  for (const auto& cell : table.value().cells) {
    EXPECT_NE(json.find("\"" + cell.policy + "|" + cell.scenario + "\""),
              std::string::npos);
  }
}

/// Two-function policy: invoking function 0 pulls function 1 warm via
/// CollectTriggeredPrewarms (delay 1, keepalive 2); nobody lingers on
/// their own.
class PullPolicy final : public policy::SchedulingPolicy {
 public:
  PullPolicy() : units_(graph::UnitMap::PerFunction(2)) {}

  [[nodiscard]] const graph::UnitMap& unit_map() const noexcept override {
    return units_;
  }
  [[nodiscard]] policy::UnitDecision OnInvocation(UnitId, Minute) override {
    return {.prewarm = 0, .keepalive = 1};
  }
  void ObserveIdleTime(UnitId, MinuteDelta) override {}
  void CollectTriggeredPrewarms(
      UnitId invoked, Minute,
      std::vector<policy::PrewarmRequest>& out) override {
    if (invoked.value() == 0) {
      out.push_back({.unit = UnitId{1}, .delay = 1, .keepalive = 2});
    }
  }
  [[nodiscard]] const char* name() const noexcept override { return "pull"; }

 private:
  graph::UnitMap units_;
};

trace::InvocationTrace TraceOf(
    std::vector<std::pair<std::uint32_t, Minute>> events) {
  trace::InvocationTrace t{2, TimeRange{0, 100}};
  for (const auto& [fn, minute] : events) t.Add(FunctionId{fn}, minute);
  t.Finalize();
  return t;
}

TEST(TriggeredPrewarm, PullsTheTargetWarm) {
  // fn0 fires at 5; fn1 fires at 7 — inside the triggered window
  // [6, 6+2), so fn1's only invocation is warm.
  auto trace = TraceOf({{0, 5}, {1, 7}});
  PullPolicy policy;
  const auto r = sim::Simulate(trace, TimeRange{0, 100}, policy);
  EXPECT_EQ(r.triggered_prewarms, 1u);
  EXPECT_EQ(r.unit_cold_minutes[1], 0u);
  EXPECT_EQ(r.unit_cold_minutes[0], 1u);  // nothing pulls fn0
}

TEST(TriggeredPrewarm, WindowExpires) {
  // fn1 fires at 9 — the triggered window [6, 8) has closed, cold.
  auto trace = TraceOf({{0, 5}, {1, 9}});
  PullPolicy policy;
  const auto r = sim::Simulate(trace, TimeRange{0, 100}, policy);
  EXPECT_EQ(r.triggered_prewarms, 1u);
  EXPECT_EQ(r.unit_cold_minutes[1], 1u);
}

TEST(TriggeredPrewarm, TargetInvokedThisMinuteIsSkipped) {
  // fn0 and fn1 both fire at 5: fn1's own residency decision governs
  // (keepalive 1 → resident [5, 6), evicted before the invocation at
  // 6), and the trigger is not applied or counted.
  auto trace = TraceOf({{0, 5}, {1, 5}, {1, 6}});
  PullPolicy policy;
  const auto r = sim::Simulate(trace, TimeRange{0, 100}, policy);
  EXPECT_EQ(r.triggered_prewarms, 0u);
  EXPECT_EQ(r.unit_cold_minutes[1], 2u);
}

TEST(TriggeredPrewarm, RetriggerExtendsResidency) {
  // fn0 fires at 5 and 6. The first trigger keeps fn1 resident over
  // [6, 8); the second extends the window to [6, 9) without an extra
  // load, so fn1 is warm at 8.
  auto trace = TraceOf({{0, 5}, {0, 6}, {1, 8}});
  PullPolicy policy;
  const auto r = sim::Simulate(trace, TimeRange{0, 100}, policy);
  EXPECT_EQ(r.triggered_prewarms, 2u);
  EXPECT_EQ(r.unit_cold_minutes[1], 0u);
}

}  // namespace
}  // namespace defuse::arena
