#include "analysis/analysis.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/defuse.hpp"
#include "core/experiment.hpp"
#include "sim/simulator.hpp"
#include "trace/generator.hpp"

namespace defuse::analysis {
namespace {

/// Two apps: one with a hot + a cold function (skew), one single-function.
struct Fixture {
  trace::WorkloadModel model;
  trace::InvocationTrace trace{0, TimeRange{0, 0}};

  Fixture() : trace{4, TimeRange{0, 10000}} {
    const UserId u = model.AddUser("u");
    const AppId a = model.AddApp(u, "skewed");
    const FunctionId hot = model.AddFunction(a, "hot");
    const FunctionId cold = model.AddFunction(a, "cold");
    const AppId b = model.AddApp(u, "solo");
    const FunctionId periodic = model.AddFunction(b, "periodic");
    model.AddFunction(b, "silent");
    // hot fires every 10 minutes, cold every 100 (10% frequency).
    for (Minute t = 0; t < 10000; t += 10) trace.Add(hot, t);
    for (Minute t = 0; t < 10000; t += 100) trace.Add(cold, t);
    for (Minute t = 0; t < 10000; t += 20) trace.Add(periodic, t);
    trace.Finalize();
  }
};

TEST(AnalyzeFrequencySkew, ComputesWithinAppFrequencies) {
  Fixture fx;
  const auto report =
      AnalyzeFrequencySkew(fx.model, fx.trace, fx.trace.horizon());
  // Only the 2-function app with enough activity contributes... the solo
  // app has 2 functions too (one silent), so both contribute.
  ASSERT_EQ(report.frequencies.size(), 4u);
  // hot: every app-active minute -> 1.0; cold: ~10%.
  EXPECT_NEAR(report.frequencies[0], 1.0, 0.01);
  EXPECT_NEAR(report.frequencies[1], 0.1, 0.01);
  EXPECT_NEAR(report.fraction_below_quarter, 0.5, 0.01);  // cold + silent
}

TEST(AnalyzeFrequencySkew, SkipsTinyApps) {
  trace::WorkloadModel model;
  const UserId u = model.AddUser("u");
  const AppId a = model.AddApp(u, "a");
  const FunctionId f = model.AddFunction(a, "f");
  model.AddFunction(a, "g");
  trace::InvocationTrace t{2, TimeRange{0, 1000}};
  t.Add(f, 1);
  t.Add(f, 2);
  t.Finalize();
  const auto report = AnalyzeFrequencySkew(model, t, t.horizon(), 50);
  EXPECT_TRUE(report.frequencies.empty());  // only 2 active minutes < 50
}

TEST(AnalyzeFrequencySkew, LargestAppIsTracked) {
  Fixture fx;
  const auto report =
      AnalyzeFrequencySkew(fx.model, fx.trace, fx.trace.horizon());
  ASSERT_TRUE(report.largest_app.valid());
  EXPECT_EQ(report.largest_app_frequencies.size(),
            fx.model.app(report.largest_app).functions.size());
  // Sorted descending.
  for (std::size_t i = 1; i < report.largest_app_frequencies.size(); ++i) {
    EXPECT_GE(report.largest_app_frequencies[i - 1],
              report.largest_app_frequencies[i]);
  }
}

TEST(AnalyzePredictability, PeriodicIsPredictableAtBothLevels) {
  Fixture fx;
  const auto report =
      AnalyzePredictability(fx.model, fx.trace, fx.trace.horizon());
  ASSERT_FALSE(report.app_cvs.empty());
  ASSERT_FALSE(report.function_cvs.empty());
  // All traffic here is strictly periodic: nothing is unpredictable.
  EXPECT_DOUBLE_EQ(report.unpredictable_apps, 0.0);
  EXPECT_DOUBLE_EQ(report.unpredictable_functions, 0.0);
}

TEST(AnalyzePredictability, SilentEntitiesAreExcluded) {
  Fixture fx;
  const auto report =
      AnalyzePredictability(fx.model, fx.trace, fx.trace.horizon());
  // 3 active functions have histograms; "silent" does not.
  EXPECT_EQ(report.function_cvs.size(), 3u);
}

TEST(AnalyzeWorkload, FullReportFields) {
  Fixture fx;
  const auto report = AnalyzeWorkload(fx.model, fx.trace, fx.trace.horizon());
  EXPECT_EQ(report.num_users, 1u);
  EXPECT_EQ(report.num_apps, 2u);
  EXPECT_EQ(report.num_functions, 4u);
  EXPECT_EQ(report.active_functions, 3u);
  EXPECT_EQ(report.total_invocations, 1000u + 100u + 500u);
  EXPECT_GT(report.invocations_per_minute, 0.0);
}

TEST(AnalyzeWorkload, RenderMentionsTheHeadlines) {
  Fixture fx;
  const auto text = RenderWorkloadReport(
      AnalyzeWorkload(fx.model, fx.trace, fx.trace.horizon()));
  EXPECT_NE(text.find("entities:"), std::string::npos);
  EXPECT_NE(text.find("frequency skew"), std::string::npos);
  EXPECT_NE(text.find("predictability"), std::string::npos);
}

TEST(BreakdownByTriggerKind, DefuseRescuesUnpredictableFunctions) {
  // The paper's core mechanism, quantified per trigger archetype: under
  // Hybrid-Function, Poisson-driven functions are mostly cold; Defuse's
  // weak dependencies link them to predictable services and cut their
  // cold rates, while periodic functions are fine either way.
  auto cfg = trace::GeneratorConfig::Tiny();
  cfg.num_users = 30;
  cfg.seed = 77;
  const auto w = trace::GenerateWorkload(cfg);
  const auto [train, eval] = core::SplitTrainEval(w.trace.horizon());

  const auto mining = core::MineDependencies(w.trace, w.model, train).value();
  const auto defuse_policy = core::MakeDefuseScheduler(w.trace, mining, train);
  const auto defuse_sim = sim::Simulate(w.trace, eval, *defuse_policy);
  const auto defuse = BreakdownByTriggerKind(w.truth, defuse_sim,
                                             defuse_policy->unit_map());

  const auto hf_policy =
      core::MakeHybridFunctionScheduler(w.trace, w.model, train);
  const auto hf_sim = sim::Simulate(w.trace, eval, *hf_policy);
  const auto hf = BreakdownByTriggerKind(w.truth, hf_sim,
                                         hf_policy->unit_map());

  const auto poisson =
      static_cast<std::size_t>(trace::TriggerKind::kPoisson);
  const auto periodic =
      static_cast<std::size_t>(trace::TriggerKind::kPeriodic);
  ASSERT_GT(defuse.function_count[poisson], 10u);
  // Defuse cuts the unpredictable functions' mean cold rate vs HF...
  EXPECT_LT(defuse.mean_cold_rate[poisson],
            0.8 * hf.mean_cold_rate[poisson]);
  // ...while periodic functions are already cheap under both.
  EXPECT_LT(defuse.mean_cold_rate[periodic], 0.35);
  EXPECT_LT(hf.mean_cold_rate[periodic],
            hf.mean_cold_rate[poisson]);
}

TEST(BreakdownByTriggerKind, CountsCoverInvokedFunctionsOnly) {
  auto cfg = trace::GeneratorConfig::Tiny();
  cfg.num_users = 10;
  cfg.seed = 78;
  const auto w = trace::GenerateWorkload(cfg);
  const auto [train, eval] = core::SplitTrainEval(w.trace.horizon());
  const auto policy =
      core::MakeHybridFunctionScheduler(w.trace, w.model, train);
  const auto result = sim::Simulate(w.trace, eval, *policy);
  const auto breakdown =
      BreakdownByTriggerKind(w.truth, result, policy->unit_map());
  std::size_t counted = 0;
  for (const auto c : breakdown.function_count) counted += c;
  std::size_t invoked = 0;
  for (const auto& fn : w.model.functions()) {
    if (w.trace.ActiveMinutes(fn.id, eval) > 0) ++invoked;
  }
  EXPECT_EQ(counted, invoked);
}

TEST(DetectDailyPattern, FindsOfficeHoursRhythm) {
  trace::WorkloadModel model;
  const UserId u = model.AddUser("u");
  const AppId a = model.AddApp(u, "a");
  const FunctionId f = model.AddFunction(a, "office");
  trace::InvocationTrace t{1, TimeRange{0, 7 * kMinutesPerDay}};
  for (Minute day = 0; day < 7; ++day) {
    for (Minute m = 9 * 60; m < 17 * 60; m += 7) {
      t.Add(f, day * kMinutesPerDay + m);
    }
  }
  t.Finalize();
  const auto pattern = DetectDailyPattern(t, f, t.horizon());
  EXPECT_TRUE(pattern.detected);
  EXPECT_GT(pattern.strength, 0.5);
}

TEST(DetectDailyPattern, RejectsPoissonTraffic) {
  trace::WorkloadModel model;
  const UserId u = model.AddUser("u");
  const AppId a = model.AddApp(u, "a");
  const FunctionId f = model.AddFunction(a, "random");
  trace::InvocationTrace t{1, TimeRange{0, 7 * kMinutesPerDay}};
  Rng rng{3};
  double m = 0.0;
  while (m < 7.0 * kMinutesPerDay) {
    t.Add(f, static_cast<Minute>(m));
    m += 30.0 * rng.NextExponential(1.0);
  }
  t.Finalize();
  EXPECT_FALSE(DetectDailyPattern(t, f, t.horizon()).detected);
}

TEST(DetectDailyPattern, TooShortTraceIsInconclusive) {
  trace::WorkloadModel model;
  const UserId u = model.AddUser("u");
  const AppId a = model.AddApp(u, "a");
  const FunctionId f = model.AddFunction(a, "f");
  trace::InvocationTrace t{1, TimeRange{0, kMinutesPerDay}};
  for (Minute m = 0; m < kMinutesPerDay; m += 30) t.Add(f, m);
  t.Finalize();
  EXPECT_FALSE(DetectDailyPattern(t, f, t.horizon()).detected);
}

TEST(DetectDailyPattern, GeneratorDiurnalArchetypeIsDetected) {
  auto cfg = trace::GeneratorConfig::Tiny();
  cfg.frac_diurnal = 1.0;
  cfg.frac_periodic = cfg.frac_poisson = cfg.frac_bursty = 0.0;
  cfg.frac_users_with_common_service = 0.0;
  cfg.horizon_minutes = 7 * kMinutesPerDay;
  cfg.num_users = 25;
  const auto w = trace::GenerateWorkload(cfg);
  std::size_t active = 0, detected = 0;
  for (const auto& group : w.truth.strong_groups) {
    if (w.trace.ActiveMinutes(group.front(), w.trace.horizon()) < 100) {
      continue;
    }
    ++active;
    if (DetectDailyPattern(w.trace, group.front(), w.trace.horizon())
            .detected) {
      ++detected;
    }
  }
  ASSERT_GT(active, 5u);
  EXPECT_GT(static_cast<double>(detected) / static_cast<double>(active),
            0.7);
}

TEST(AnalyzeWorkload, SyntheticWorkloadShowsPaperLikeStructure) {
  auto cfg = trace::GeneratorConfig::Tiny();
  cfg.num_users = 30;
  cfg.seed = 11;
  const auto w = trace::GenerateWorkload(cfg);
  const auto report =
      AnalyzeWorkload(w.model, w.trace, w.trace.horizon());
  // The two structural facts the paper's motivation rests on:
  // functions are less predictable than apps, and a large share of
  // functions is rarely used within their app.
  EXPECT_GT(report.predictability.unpredictable_functions,
            report.predictability.unpredictable_apps);
  EXPECT_GT(report.skew.fraction_below_quarter, 0.3);
}

}  // namespace
}  // namespace defuse::analysis
