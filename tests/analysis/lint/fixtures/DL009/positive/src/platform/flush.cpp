// Fixture: blocking I/O and a future join while lexically holding a lock.
namespace defuse::platform {

void Flush(int fd) {
  std::lock_guard<std::mutex> lock(mu);
  fsync(fd);
}

void Join() {
  std::future<int> pending = Submit(Job{});
  std::unique_lock<std::mutex> lock(mu);
  pending.get();
}

}  // namespace defuse::platform
