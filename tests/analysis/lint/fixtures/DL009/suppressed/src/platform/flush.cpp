// Fixture: the same blocking calls carrying lock-free-handoff notes.
namespace defuse::platform {

void Flush(int fd) {
  std::lock_guard<std::mutex> lock(mu);
  // defuse-lint: lock-free-handoff fd is private to this thread; the lock orders metadata only
  fsync(fd);
}

void Join() {
  std::future<int> pending = Submit(Job{});
  std::unique_lock<std::mutex> lock(mu);
  // defuse-lint: lock-free-handoff worker finished before the lock was taken (joined upstream)
  pending.get();
}

}  // namespace defuse::platform
