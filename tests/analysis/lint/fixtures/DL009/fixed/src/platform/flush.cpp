// Fixture: the repair — snapshot under the lock, block after release.
namespace defuse::platform {

void Flush(int fd) {
  {
    std::lock_guard<std::mutex> lock(mu);
    snapshot = state;
  }
  fsync(fd);
}

void Join() {
  std::future<int> pending = Submit(Job{});
  pending.get();
  std::unique_lock<std::mutex> lock(mu);
}

}  // namespace defuse::platform
