// Fixture: half of a same-rank include cycle (stats <-> trace).
#include "trace/b.hpp"

namespace defuse::stats {
int A();
}  // namespace defuse::stats
