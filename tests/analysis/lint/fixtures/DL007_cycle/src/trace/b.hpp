// Fixture: the other half of the cycle.
#include "stats/a.hpp"

namespace defuse::trace {
int B();
}  // namespace defuse::trace
