// Fixture test: exercises both sites.
#include "faults/injector.hpp"

int main() {
  const auto a = defuse::faults::FaultSite::kAlpha;
  const auto b = defuse::faults::FaultSite::kBeta;
  return static_cast<int>(a) + static_cast<int>(b);
}
