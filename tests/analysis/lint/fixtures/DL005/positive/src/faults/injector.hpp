// Fixture fault registry, mirroring src/faults/injector.hpp.
#pragma once

namespace defuse::faults {

enum class FaultSite { kAlpha = 0, kBeta = 1 };

constexpr const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kAlpha: return "alpha";
    case FaultSite::kBeta: return "beta";
  }
  return "unknown";
}

}  // namespace defuse::faults
