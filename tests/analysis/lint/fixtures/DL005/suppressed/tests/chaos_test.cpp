// Fixture test: exercises only the first site (kAlpha).
#include "faults/injector.hpp"

int main() {
  return static_cast<int>(defuse::faults::FaultSite::kAlpha);
}
