// Fixture: .value() without ok() checks — variable, temporary, and the
// std::move(var) form (a call's parentheses must not read as a boolean
// `(r)` check).
#include "common/result.hpp"

namespace defuse::trace {

Result<int> ParseCount(int raw) {
  if (raw < 0) return Error{ErrorCode::kParseError, "negative"};
  return raw;
}

int CountOf(int raw) {
  auto parsed = ParseCount(raw);
  return parsed.value();
}

int CountOfInline(int raw) { return ParseCount(raw).value(); }

int CountOfMoved(int raw) {
  auto parsed = ParseCount(raw);
  return std::move(parsed).value();
}

}  // namespace defuse::trace
