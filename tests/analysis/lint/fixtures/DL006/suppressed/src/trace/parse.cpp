// Fixture: the same accesses, explicitly suppressed.
#include "common/result.hpp"

namespace defuse::trace {

Result<int> ParseCount(int raw) {
  if (raw < 0) return Error{ErrorCode::kParseError, "negative"};
  return raw;
}

int CountOf(int raw) {
  auto parsed = ParseCount(raw);
  // defuse-lint: suppress(DL006) raw is validated by the caller
  return parsed.value();
}

int CountOfInline(int raw) {
  return ParseCount(raw).value();  // defuse-lint: suppress(DL006) ditto
}

}  // namespace defuse::trace
