// Fixture: every access is guarded (or defaulted).
#include "common/result.hpp"

namespace defuse::trace {

Result<int> ParseCount(int raw) {
  if (raw < 0) return Error{ErrorCode::kParseError, "negative"};
  return raw;
}

int CountOf(int raw) {
  auto parsed = ParseCount(raw);
  if (!parsed.ok()) return 0;
  return parsed.value();
}

int CountOfInline(int raw) { return ParseCount(raw).value_or(0); }

}  // namespace defuse::trace
