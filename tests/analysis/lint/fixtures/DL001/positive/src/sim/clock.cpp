// Fixture: wall-clock read inside a deterministic layer (sim/).
#include <chrono>

namespace defuse::sim {

long NowMinutes() {
  const auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count();
}

}  // namespace defuse::sim
