// Fixture: time comes in through the simulated minute stream.
namespace defuse::sim {

long NowMinutes(long simulated_minute) { return simulated_minute; }

}  // namespace defuse::sim
