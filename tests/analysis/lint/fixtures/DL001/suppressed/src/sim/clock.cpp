// Fixture: same read, carrying an explicit suppression.
#include <chrono>

namespace defuse::sim {

long NowMinutes() {
  // defuse-lint: suppress(DL001) boundary probe, result never feeds state
  const auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count();
}

}  // namespace defuse::sim
