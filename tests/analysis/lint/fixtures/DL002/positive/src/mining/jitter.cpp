// Fixture: ambient randomness inside a deterministic layer (mining/).
#include <cstdlib>

namespace defuse::mining {

int DrawJitter() { return std::rand() % 7; }

}  // namespace defuse::mining
