// Fixture: same draw, explicitly suppressed.
#include <cstdlib>

namespace defuse::mining {

int DrawJitter() {
  return std::rand() % 7;  // defuse-lint: suppress(DL002) fixture only
}

}  // namespace defuse::mining
