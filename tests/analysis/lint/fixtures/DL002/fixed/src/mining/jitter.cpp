// Fixture: the draw comes from a caller-seeded stream.
#include <cstdint>

namespace defuse::mining {

int DrawJitter(std::uint64_t draw) { return static_cast<int>(draw % 7); }

}  // namespace defuse::mining
