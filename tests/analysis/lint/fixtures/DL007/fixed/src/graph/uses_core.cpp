// Fixture: the repaired edge — depend downward on common instead.
#include "common/ids.hpp"

namespace defuse::graph {

int Answer() { return 42; }

}  // namespace defuse::graph
