// Fixture: a rank-1 module reaching up into the rank-5 core layer.
#include "core/engine.hpp"

namespace defuse::graph {

int Answer() { return 42; }

}  // namespace defuse::graph
