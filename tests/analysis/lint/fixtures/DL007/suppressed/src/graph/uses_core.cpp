// Fixture: the upward edge carrying a justified suppression.
// defuse-lint: suppress(DL007) transitional shim while Engine moves down a layer
#include "core/engine.hpp"

namespace defuse::graph {

int Answer() { return 42; }

}  // namespace defuse::graph
