// Fixture: same read, explicitly suppressed.
#include <cstdlib>

namespace defuse::policy {

int KeepAliveMinutes() {
  // defuse-lint: suppress(DL003) fixture only
  const char* v = std::getenv("DEFUSE_KEEPALIVE");
  return v != nullptr ? 99 : 10;
}

}  // namespace defuse::policy
