// Fixture: configuration arrives as a struct from the CLI boundary.
namespace defuse::policy {

struct Knobs {
  int keepalive_minutes = 10;
};

int KeepAliveMinutes(const Knobs& knobs) { return knobs.keepalive_minutes; }

}  // namespace defuse::policy
