// Fixture: environment read inside a deterministic layer (policy/).
#include <cstdlib>

namespace defuse::policy {

int KeepAliveMinutes() {
  const char* v = std::getenv("DEFUSE_KEEPALIVE");
  return v != nullptr ? 99 : 10;
}

}  // namespace defuse::policy
