// Fixture: the walk carries the sorted-at-boundary justification.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

namespace defuse::graph {

std::string WriteCsv(const std::unordered_map<int, int>& sets) {
  std::vector<std::pair<int, int>> rows;
  // defuse-lint: sorted-at-boundary — rows are fully re-sorted by id
  // before serialization, so hash order cannot reach the output.
  for (const auto& [id, fn] : sets) {
    rows.emplace_back(id, fn);
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const auto& [id, fn] : rows) {
    out += std::to_string(id);
    out += ',';
    out += std::to_string(fn);
    out += '\n';
  }
  return out;
}

}  // namespace defuse::graph
