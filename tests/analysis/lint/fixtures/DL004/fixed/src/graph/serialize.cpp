// Fixture: the ordered boundary is the container itself.
#include <map>
#include <string>

namespace defuse::graph {

std::string WriteCsv(const std::map<int, int>& sets) {
  std::string out;
  for (const auto& [id, fn] : sets) {
    out += std::to_string(id);
    out += ',';
    out += std::to_string(fn);
    out += '\n';
  }
  return out;
}

}  // namespace defuse::graph
