// Fixture: hash-order range-for feeding a serializer.
#include <string>
#include <unordered_map>

namespace defuse::graph {

std::string WriteCsv(const std::unordered_map<int, int>& sets) {
  std::string out;
  for (const auto& [id, fn] : sets) {
    out += std::to_string(id);
    out += ',';
    out += std::to_string(fn);
    out += '\n';
  }
  return out;
}

}  // namespace defuse::graph
