// Fixture: the mutex carrying a justified lock-free-protocol suppression.
#pragma once

namespace defuse::platform {

class Cache {
 private:
  // defuse-lint: suppress(DL008) guards only the ctor-time warmup, documented in Cache()
  std::mutex mu_;

  int hits_ = 0;
  int misses_ = 0;
};

}  // namespace defuse::platform
