// Fixture: a mutex member with no adjacent GUARDED_BY field set.
#pragma once

namespace defuse::platform {

class Cache {
 private:
  std::mutex mu_;

  int hits_ = 0;
  int misses_ = 0;
};

}  // namespace defuse::platform
