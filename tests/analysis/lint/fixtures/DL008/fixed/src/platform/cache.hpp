// Fixture: the repair — the fields the mutex protects are declared
// GUARDED_BY right next to it (common/annotations.hpp).
#pragma once

namespace defuse::platform {

class Cache {
 private:
  Mutex mu_;
  int hits_ GUARDED_BY(mu_) = 0;
  int misses_ GUARDED_BY(mu_) = 0;
};

}  // namespace defuse::platform
