// Fixture: a real reason makes the same directive take effect.
namespace defuse::mining {

// defuse-lint: suppress(DL002) rand() feeds a log banner only; nothing mined reads it
int Jitter() { return std::rand(); }

}  // namespace defuse::mining
