// Fixture: a bare suppression — no reason text — must silence nothing
// and itself be a finding tagged with the rule it targeted.
namespace defuse::mining {

// defuse-lint: suppress(DL002)
int Jitter() { return std::rand(); }

}  // namespace defuse::mining
