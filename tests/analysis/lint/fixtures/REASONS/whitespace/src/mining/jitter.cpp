// Fixture: a whitespace-only reason after the directive is as bare as
// no reason at all — trailing blanks are not a justification.
namespace defuse::mining {

// defuse-lint: suppress(DL002)      
int Jitter() { return std::rand(); }

}  // namespace defuse::mining
