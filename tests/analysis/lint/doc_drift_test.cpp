// Doc-drift gate: the DL-rule tables in DESIGN.md (§11 for the
// determinism/safety rules, §16 for the architecture/lock-discipline
// rules) and the README CI-gates table must stay in lockstep with the
// rule set the linter actually ships (lint::Rules()). Parsed, not
// eyeballed: a rule added/renamed in code without its table row — or a
// documented rule the code no longer has — fails `ctest -L lint`.

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/lint/lint.hpp"

namespace defuse::analysis::lint {
namespace {

#ifndef DEFUSE_REPO_ROOT
#error "build must define DEFUSE_REPO_ROOT"
#endif

std::string ReadAll(const std::string& path) {
  std::ifstream in{path};
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string Trim(std::string s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.erase(s.begin());
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.pop_back();
  }
  return s;
}

/// Collects id -> kebab-case name from every markdown table row of the
/// form `| DL0xx | `name` | ... |` in `text`.
std::map<std::string, std::string> ParseRuleTables(const std::string& text) {
  std::map<std::string, std::string> rows;
  std::istringstream lines{text};
  std::string line;
  while (std::getline(lines, line)) {
    std::string trimmed = Trim(line);
    if (trimmed.rfind("| DL0", 0) != 0) continue;
    // Split the row into cells.
    std::vector<std::string> cells;
    std::string cell;
    for (std::size_t i = 1; i < trimmed.size(); ++i) {  // skip leading '|'
      if (trimmed[i] == '|') {
        cells.push_back(Trim(cell));
        cell.clear();
      } else {
        cell += trimmed[i];
      }
    }
    if (cells.size() < 2) continue;
    std::string name = cells[1];
    if (name.size() >= 2 && name.front() == '`' && name.back() == '`') {
      name = name.substr(1, name.size() - 2);
    }
    EXPECT_EQ(rows.count(cells[0]), 0u)
        << cells[0] << " documented twice with names '" << rows[cells[0]]
        << "' and '" << name << "'";
    rows[cells[0]] = name;
  }
  return rows;
}

TEST(LintDocDrift, DesignTablesMatchShippedRules) {
  const std::string design =
      ReadAll(std::string{DEFUSE_REPO_ROOT} + "/DESIGN.md");
  const auto documented = ParseRuleTables(design);

  const auto& rules = Rules();
  ASSERT_EQ(documented.size(), rules.size())
      << "DESIGN.md documents " << documented.size() << " DL rules but "
      << "lint::Rules() ships " << rules.size();
  for (const RuleInfo& rule : rules) {
    const auto it = documented.find(std::string{rule.id});
    ASSERT_NE(it, documented.end())
        << rule.id << " (" << rule.name
        << ") is missing from the DESIGN.md §11/§16 rule tables";
    EXPECT_EQ(it->second, rule.name)
        << rule.id << " is documented as '" << it->second
        << "' but shipped as '" << rule.name << "'";
  }
}

TEST(LintDocDrift, DesignNamesEveryRuleIdInProse) {
  // The §11 table carries DL001-006 and the §16 table DL007-009; both
  // sections must exist (the tables above could in principle move).
  const std::string design =
      ReadAll(std::string{DEFUSE_REPO_ROOT} + "/DESIGN.md");
  EXPECT_NE(design.find("## 11."), std::string::npos);
  EXPECT_NE(design.find("## 16."), std::string::npos);
}

TEST(LintDocDrift, ReadmeGateRowCoversTheFullRuleRange) {
  const std::string readme =
      ReadAll(std::string{DEFUSE_REPO_ROOT} + "/README.md");
  const auto& rules = Rules();
  const std::string first{rules.front().id};
  const std::string last{rules.back().id};
  // The tier1_lint gate row advertises the rule range; both endpoints
  // must name rules that actually exist (checked against Rules() above)
  // and appear in the README.
  EXPECT_NE(readme.find(first), std::string::npos)
      << "README.md never mentions " << first;
  EXPECT_NE(readme.find(last), std::string::npos)
      << "README.md CI-gates table does not cover up to " << last
      << " — update the tier1_lint.sh row";
  EXPECT_NE(readme.find("ctest -L lint"), std::string::npos)
      << "README.md CI-gates table lost the `ctest -L lint` row";
}

}  // namespace
}  // namespace defuse::analysis::lint
