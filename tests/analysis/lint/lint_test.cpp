// Table-driven coverage for the defuse-lint rule set.
//
// Each rule ID has a fixture mini-repo under fixtures/<RULE>/ in three
// variants:
//   positive/   the rule must fire, with an exact expected finding list;
//   suppressed/ the same code carrying the documented suppression syntax,
//               which must silence the rule *and* be counted as honored;
//   fixed/      the idiomatic repair, which must be silent with zero
//               suppressions (proving the fix, not a suppression, is what
//               silenced it).
//
// A final self-check lints the real repository tree and asserts zero
// findings, so the tree cannot merge with a violation and the fixtures
// cannot drift from the rules actually shipped.

#include "analysis/lint/lint.hpp"

#include <algorithm>
#include <cstddef>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

namespace defuse::analysis::lint {
namespace {

#ifndef DEFUSE_LINT_FIXTURES
#error "build must define DEFUSE_LINT_FIXTURES"
#endif
#ifndef DEFUSE_REPO_ROOT
#error "build must define DEFUSE_REPO_ROOT"
#endif

struct ExpectedFinding {
  std::string file;
  std::size_t line;
  std::string rule_id;
};

struct FixtureCase {
  std::string rule_id;   // which rule the fixture exercises
  std::string variant;   // positive | suppressed | fixed
  std::vector<ExpectedFinding> expected;  // exact findings, sorted
  bool expect_suppressions;  // suppressed variants must honor >= 1
};

std::vector<FixtureCase> Cases() {
  return {
      {"DL001", "positive", {{"src/sim/clock.cpp", 7, "DL001"}}, false},
      {"DL001", "suppressed", {}, true},
      {"DL001", "fixed", {}, false},

      {"DL002", "positive", {{"src/mining/jitter.cpp", 6, "DL002"}}, false},
      {"DL002", "suppressed", {}, true},
      {"DL002", "fixed", {}, false},

      {"DL003", "positive", {{"src/policy/knobs.cpp", 7, "DL003"}}, false},
      {"DL003", "suppressed", {}, true},
      {"DL003", "fixed", {}, false},

      {"DL004", "positive", {{"src/graph/serialize.cpp", 9, "DL004"}}, false},
      {"DL004", "suppressed", {}, true},
      {"DL004", "fixed", {}, false},

      {"DL005", "positive",
       {{"src/faults/injector.hpp", 11, "DL005"}}, false},
      {"DL005", "suppressed", {}, true},
      {"DL005", "fixed", {}, false},

      {"DL006", "positive",
       {{"src/trace/parse.cpp", 15, "DL006"},
        {"src/trace/parse.cpp", 18, "DL006"},
        {"src/trace/parse.cpp", 22, "DL006"}},
       false},
      {"DL006", "suppressed", {}, true},
      {"DL006", "fixed", {}, false},

      {"DL007", "positive", {{"src/graph/uses_core.cpp", 2, "DL007"}}, false},
      {"DL007", "suppressed", {}, true},
      {"DL007", "fixed", {}, false},

      {"DL008", "positive", {{"src/platform/cache.hpp", 8, "DL008"}}, false},
      {"DL008", "suppressed", {}, true},
      {"DL008", "fixed", {}, false},

      {"DL009", "positive",
       {{"src/platform/flush.cpp", 6, "DL009"},
        {"src/platform/flush.cpp", 12, "DL009"}},
       false},
      {"DL009", "suppressed", {}, true},
      {"DL009", "fixed", {}, false},
  };
}

LintReport MustLint(const std::string& root) {
  LintConfig config;
  config.root = root;
  auto report = RunLint(config);
  EXPECT_TRUE(report.ok()) << (report.ok() ? "" : report.error().ToString());
  return std::move(report).value_or(LintReport{});
}

std::vector<ExpectedFinding> Observed(const LintReport& report) {
  std::vector<ExpectedFinding> out;
  out.reserve(report.findings.size());
  for (const Finding& f : report.findings) {
    out.push_back(ExpectedFinding{f.file, f.line, std::string{f.rule_id}});
  }
  const auto key = [](const ExpectedFinding& e) {
    return std::tuple{e.file, e.line, e.rule_id};
  };
  std::sort(out.begin(), out.end(),
            [&](const auto& a, const auto& b) { return key(a) < key(b); });
  return out;
}

std::string Describe(const std::vector<ExpectedFinding>& findings) {
  std::string out;
  for (const auto& f : findings) {
    out += "  " + f.file + ":" + std::to_string(f.line) + ": [" + f.rule_id +
           "]\n";
  }
  return out.empty() ? "  (none)\n" : out;
}

TEST(LintRuleTable, HasNineDocumentedRules) {
  const auto& rules = Rules();
  ASSERT_EQ(rules.size(), 9u);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i].id, "DL00" + std::to_string(i + 1));
    EXPECT_FALSE(rules[i].name.empty());
    EXPECT_FALSE(rules[i].summary.empty());
    EXPECT_FALSE(rules[i].fixit.empty());
  }
  EXPECT_NE(FindRule("DL001"), nullptr);
  EXPECT_NE(FindRule("DL009"), nullptr);
  EXPECT_EQ(FindRule("DL999"), nullptr);
}

TEST(LintFixtures, EveryRuleFiresAndEverySuppressionSilences) {
  for (const FixtureCase& c : Cases()) {
    SCOPED_TRACE(c.rule_id + "/" + c.variant);
    const std::string root =
        std::string{DEFUSE_LINT_FIXTURES} + "/" + c.rule_id + "/" + c.variant;
    const LintReport report = MustLint(root);
    ASSERT_GT(report.stats.files_scanned, 0u)
        << "fixture tree missing or empty: " << root;

    auto observed = Observed(report);
    auto expected = c.expected;
    const auto key = [](const ExpectedFinding& e) {
      return std::tuple{e.file, e.line, e.rule_id};
    };
    std::sort(expected.begin(), expected.end(),
              [&](const auto& a, const auto& b) { return key(a) < key(b); });

    bool same = observed.size() == expected.size();
    for (std::size_t i = 0; same && i < observed.size(); ++i) {
      same = key(observed[i]) == key(expected[i]);
    }
    EXPECT_TRUE(same) << "expected findings:\n"
                      << Describe(expected) << "observed findings:\n"
                      << Describe(observed);

    if (c.expect_suppressions) {
      EXPECT_GE(report.stats.suppressions_honored, 1u)
          << "suppressed variant silenced the rule without the suppression "
             "being honored (the code is accidentally clean)";
    } else if (c.variant == "fixed") {
      EXPECT_EQ(report.stats.suppressions_honored, 0u)
          << "fixed variant must be clean without suppressions";
    }
  }
}

TEST(LintFixtures, PositiveFindingsCarryFixits) {
  const std::string root = std::string{DEFUSE_LINT_FIXTURES} + "/DL001/positive";
  const LintReport report = MustLint(root);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_FALSE(report.findings[0].fixit.empty());
  const std::string formatted = FormatFinding(report.findings[0]);
  EXPECT_NE(formatted.find("src/sim/clock.cpp:7:"), std::string::npos)
      << formatted;
  EXPECT_NE(formatted.find("[DL001]"), std::string::npos) << formatted;
}

TEST(LintFixtures, ReportJsonContainsPerRuleCounts) {
  const std::string root = std::string{DEFUSE_LINT_FIXTURES} + "/DL002/positive";
  const LintReport report = MustLint(root);
  const std::string json = ReportJson(report, 0.25);
  EXPECT_NE(json.find("\"DL002\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_findings\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"elapsed_seconds\": 0.25"), std::string::npos) << json;
}

// A directive with no reason text must silence nothing and itself be a
// finding tagged with the rule it targeted — a bare suppression is
// indistinguishable from silencing a real bug in review.
TEST(LintSuppressionReasons, BareAndWhitespaceDirectivesAreFindings) {
  for (const char* variant : {"bare", "whitespace"}) {
    SCOPED_TRACE(variant);
    const std::string root =
        std::string{DEFUSE_LINT_FIXTURES} + "/REASONS/" + variant;
    const LintReport report = MustLint(root);
    // The directive line itself plus the un-silenced std::rand below it.
    const auto observed = Observed(report);
    ASSERT_EQ(observed.size(), 2u) << Describe(observed);
    EXPECT_EQ(observed[0].rule_id, "DL002");
    EXPECT_EQ(observed[0].line, 5u);  // the bare directive
    EXPECT_EQ(observed[1].rule_id, "DL002");
    EXPECT_EQ(observed[1].line, 6u);  // the call it failed to silence
    EXPECT_EQ(report.stats.suppressions_honored, 0u);
  }
  const LintReport valid =
      MustLint(std::string{DEFUSE_LINT_FIXTURES} + "/REASONS/valid");
  EXPECT_TRUE(valid.findings.empty())
      << Describe(Observed(valid));
  EXPECT_EQ(valid.stats.suppressions_honored, 1u);
}

// Two same-rank modules including each other pass the rank check edge by
// edge but still form a cycle, which DL007 must reject.
TEST(LintModuleGraph, SameRankCycleIsAFinding) {
  const LintReport report =
      MustLint(std::string{DEFUSE_LINT_FIXTURES} + "/DL007_cycle");
  ASSERT_EQ(report.module_graph.cycles.size(), 1u);
  EXPECT_EQ(report.module_graph.cycles[0], "stats -> trace -> stats");
  ASSERT_EQ(report.findings.size(), 1u) << Describe(Observed(report));
  EXPECT_EQ(report.findings[0].rule_id, "DL007");
  EXPECT_EQ(report.module_graph.num_violations(), 0u)
      << "both edges are rank-legal; only the cycle is the bug";
}

TEST(LintModuleGraph, PositiveFixtureExportsViolationEdge) {
  const LintReport report =
      MustLint(std::string{DEFUSE_LINT_FIXTURES} + "/DL007/positive");
  EXPECT_EQ(report.module_graph.num_violations(), 1u);
  bool found = false;
  for (const ModuleGraphEdge& e : report.module_graph.edges) {
    if (e.from == "graph" && e.to == "core") {
      found = true;
      EXPECT_TRUE(e.violation);
      EXPECT_EQ(e.example, "src/graph/uses_core.cpp:2");
    }
  }
  EXPECT_TRUE(found);
  const std::string dot = report.module_graph.ToDot();
  EXPECT_NE(dot.find("digraph modules"), std::string::npos);
  EXPECT_NE(dot.find("\"graph\" -> \"core\" [color=red"),
            std::string::npos)
      << dot;
  const std::string json = ReportJson(report, 0.5);
  EXPECT_NE(json.find("\"violations\": 1"), std::string::npos) << json;
}

// The tree itself must be lint-clean: this is the merge gate the fixtures
// exist to protect. If this fails, either fix the violation or add a
// justified suppression at the flagged site.
TEST(LintSelfCheck, RepositoryTreeIsClean) {
  const LintReport report = MustLint(DEFUSE_REPO_ROOT);
  EXPECT_GT(report.stats.files_scanned, 50u);
  EXPECT_TRUE(report.findings.empty())
      << "repository lint findings:\n" << Describe(Observed(report));
  // The real module graph is the layering contract of DESIGN.md §16.
  EXPECT_GT(report.module_graph.modules.size(), 10u);
  EXPECT_EQ(report.module_graph.num_violations(), 0u);
  EXPECT_TRUE(report.module_graph.cycles.empty());
}

// The shared line index is a pure performance optimization: re-reading
// and re-tokenizing every file before each rule family must produce
// byte-identical findings, stats, and report JSON.
TEST(LintSelfCheck, SharedIndexMatchesReloadPerRule) {
  LintConfig shared;
  shared.root = DEFUSE_REPO_ROOT;
  LintConfig reload = shared;
  reload.reload_per_rule = true;

  auto a = RunLint(shared);
  auto b = RunLint(reload);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ReportJson(a.value(), 0.0), ReportJson(b.value(), 0.0));
  ASSERT_EQ(a.value().findings.size(), b.value().findings.size());
  for (std::size_t i = 0; i < a.value().findings.size(); ++i) {
    EXPECT_EQ(FormatFinding(a.value().findings[i]),
              FormatFinding(b.value().findings[i]));
  }
  EXPECT_EQ(a.value().stats.suppressions_honored,
            b.value().stats.suppressions_honored);
  EXPECT_EQ(a.value().stats.files_scanned, b.value().stats.files_scanned);
  EXPECT_EQ(a.value().stats.lines_scanned, b.value().stats.lines_scanned);
}

}  // namespace
}  // namespace defuse::analysis::lint
