// Table-driven coverage for the defuse-lint rule set.
//
// Each rule ID has a fixture mini-repo under fixtures/<RULE>/ in three
// variants:
//   positive/   the rule must fire, with an exact expected finding list;
//   suppressed/ the same code carrying the documented suppression syntax,
//               which must silence the rule *and* be counted as honored;
//   fixed/      the idiomatic repair, which must be silent with zero
//               suppressions (proving the fix, not a suppression, is what
//               silenced it).
//
// A final self-check lints the real repository tree and asserts zero
// findings, so the tree cannot merge with a violation and the fixtures
// cannot drift from the rules actually shipped.

#include "analysis/lint/lint.hpp"

#include <algorithm>
#include <cstddef>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

namespace defuse::analysis::lint {
namespace {

#ifndef DEFUSE_LINT_FIXTURES
#error "build must define DEFUSE_LINT_FIXTURES"
#endif
#ifndef DEFUSE_REPO_ROOT
#error "build must define DEFUSE_REPO_ROOT"
#endif

struct ExpectedFinding {
  std::string file;
  std::size_t line;
  std::string rule_id;
};

struct FixtureCase {
  std::string rule_id;   // which rule the fixture exercises
  std::string variant;   // positive | suppressed | fixed
  std::vector<ExpectedFinding> expected;  // exact findings, sorted
  bool expect_suppressions;  // suppressed variants must honor >= 1
};

std::vector<FixtureCase> Cases() {
  return {
      {"DL001", "positive", {{"src/sim/clock.cpp", 7, "DL001"}}, false},
      {"DL001", "suppressed", {}, true},
      {"DL001", "fixed", {}, false},

      {"DL002", "positive", {{"src/mining/jitter.cpp", 6, "DL002"}}, false},
      {"DL002", "suppressed", {}, true},
      {"DL002", "fixed", {}, false},

      {"DL003", "positive", {{"src/policy/knobs.cpp", 7, "DL003"}}, false},
      {"DL003", "suppressed", {}, true},
      {"DL003", "fixed", {}, false},

      {"DL004", "positive", {{"src/graph/serialize.cpp", 9, "DL004"}}, false},
      {"DL004", "suppressed", {}, true},
      {"DL004", "fixed", {}, false},

      {"DL005", "positive",
       {{"src/faults/injector.hpp", 11, "DL005"}}, false},
      {"DL005", "suppressed", {}, true},
      {"DL005", "fixed", {}, false},

      {"DL006", "positive",
       {{"src/trace/parse.cpp", 15, "DL006"},
        {"src/trace/parse.cpp", 18, "DL006"},
        {"src/trace/parse.cpp", 22, "DL006"}},
       false},
      {"DL006", "suppressed", {}, true},
      {"DL006", "fixed", {}, false},
  };
}

LintReport MustLint(const std::string& root) {
  LintConfig config;
  config.root = root;
  auto report = RunLint(config);
  EXPECT_TRUE(report.ok()) << (report.ok() ? "" : report.error().ToString());
  return std::move(report).value_or(LintReport{});
}

std::vector<ExpectedFinding> Observed(const LintReport& report) {
  std::vector<ExpectedFinding> out;
  out.reserve(report.findings.size());
  for (const Finding& f : report.findings) {
    out.push_back(ExpectedFinding{f.file, f.line, std::string{f.rule_id}});
  }
  const auto key = [](const ExpectedFinding& e) {
    return std::tuple{e.file, e.line, e.rule_id};
  };
  std::sort(out.begin(), out.end(),
            [&](const auto& a, const auto& b) { return key(a) < key(b); });
  return out;
}

std::string Describe(const std::vector<ExpectedFinding>& findings) {
  std::string out;
  for (const auto& f : findings) {
    out += "  " + f.file + ":" + std::to_string(f.line) + ": [" + f.rule_id +
           "]\n";
  }
  return out.empty() ? "  (none)\n" : out;
}

TEST(LintRuleTable, HasSixDocumentedRules) {
  const auto& rules = Rules();
  ASSERT_EQ(rules.size(), 6u);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i].id, "DL00" + std::to_string(i + 1));
    EXPECT_FALSE(rules[i].name.empty());
    EXPECT_FALSE(rules[i].summary.empty());
    EXPECT_FALSE(rules[i].fixit.empty());
  }
  EXPECT_NE(FindRule("DL001"), nullptr);
  EXPECT_NE(FindRule("DL006"), nullptr);
  EXPECT_EQ(FindRule("DL999"), nullptr);
}

TEST(LintFixtures, EveryRuleFiresAndEverySuppressionSilences) {
  for (const FixtureCase& c : Cases()) {
    SCOPED_TRACE(c.rule_id + "/" + c.variant);
    const std::string root =
        std::string{DEFUSE_LINT_FIXTURES} + "/" + c.rule_id + "/" + c.variant;
    const LintReport report = MustLint(root);
    ASSERT_GT(report.stats.files_scanned, 0u)
        << "fixture tree missing or empty: " << root;

    auto observed = Observed(report);
    auto expected = c.expected;
    const auto key = [](const ExpectedFinding& e) {
      return std::tuple{e.file, e.line, e.rule_id};
    };
    std::sort(expected.begin(), expected.end(),
              [&](const auto& a, const auto& b) { return key(a) < key(b); });

    bool same = observed.size() == expected.size();
    for (std::size_t i = 0; same && i < observed.size(); ++i) {
      same = key(observed[i]) == key(expected[i]);
    }
    EXPECT_TRUE(same) << "expected findings:\n"
                      << Describe(expected) << "observed findings:\n"
                      << Describe(observed);

    if (c.expect_suppressions) {
      EXPECT_GE(report.stats.suppressions_honored, 1u)
          << "suppressed variant silenced the rule without the suppression "
             "being honored (the code is accidentally clean)";
    } else if (c.variant == "fixed") {
      EXPECT_EQ(report.stats.suppressions_honored, 0u)
          << "fixed variant must be clean without suppressions";
    }
  }
}

TEST(LintFixtures, PositiveFindingsCarryFixits) {
  const std::string root = std::string{DEFUSE_LINT_FIXTURES} + "/DL001/positive";
  const LintReport report = MustLint(root);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_FALSE(report.findings[0].fixit.empty());
  const std::string formatted = FormatFinding(report.findings[0]);
  EXPECT_NE(formatted.find("src/sim/clock.cpp:7:"), std::string::npos)
      << formatted;
  EXPECT_NE(formatted.find("[DL001]"), std::string::npos) << formatted;
}

TEST(LintFixtures, ReportJsonContainsPerRuleCounts) {
  const std::string root = std::string{DEFUSE_LINT_FIXTURES} + "/DL002/positive";
  const LintReport report = MustLint(root);
  const std::string json = ReportJson(report, 0.25);
  EXPECT_NE(json.find("\"DL002\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_findings\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"elapsed_seconds\": 0.25"), std::string::npos) << json;
}

// The tree itself must be lint-clean: this is the merge gate the fixtures
// exist to protect. If this fails, either fix the violation or add a
// justified suppression at the flagged site.
TEST(LintSelfCheck, RepositoryTreeIsClean) {
  const LintReport report = MustLint(DEFUSE_REPO_ROOT);
  EXPECT_GT(report.stats.files_scanned, 50u);
  EXPECT_TRUE(report.findings.empty())
      << "repository lint findings:\n" << Describe(Observed(report));
}

}  // namespace
}  // namespace defuse::analysis::lint
