#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace defuse::cli {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult RunDefuse(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = RunCli(args, out, err);
  return CliResult{code, out.str(), err.str()};
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("defuse_cli_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    trace_path_ = (dir_ / "trace.csv").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Generates a small trace once per test that needs it.
  void Generate() {
    const auto r = RunDefuse({"generate", "--users", "8", "--days", "4", "--seed",
                        "5", "--out", trace_path_});
    ASSERT_EQ(r.code, 0) << r.err;
  }

  std::filesystem::path dir_;
  std::string trace_path_;
};

TEST_F(CliTest, NoArgumentsPrintsUsageAndFails) {
  const auto r = RunDefuse({});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST_F(CliTest, HelpSucceeds) {
  const auto r = RunDefuse({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("generate"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  const auto r = RunDefuse({"frobnicate"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST_F(CliTest, GenerateWritesALoadableTrace) {
  Generate();
  ASSERT_TRUE(std::filesystem::exists(trace_path_));
  const auto r = RunDefuse({"inspect", "--trace", trace_path_});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("8 users"), std::string::npos);
  EXPECT_NE(r.out.find("frequency skew"), std::string::npos);
}

TEST_F(CliTest, GenerateRequiresOut) {
  const auto r = RunDefuse({"generate", "--users", "5"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--out"), std::string::npos);
}

TEST_F(CliTest, GenerateRejectsNonPositiveUsers) {
  const auto r =
      RunDefuse({"generate", "--users", "0", "--out", trace_path_});
  EXPECT_EQ(r.code, 1);
}

TEST_F(CliTest, GenerateAzureDirWritesDailyFiles) {
  const auto azure_dir = (dir_ / "azure").string();
  std::filesystem::create_directories(azure_dir);
  const auto r = RunDefuse({"generate", "--users", "5", "--days", "2", "--out",
                      trace_path_, "--azure-dir", azure_dir});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(std::filesystem::exists(
      azure_dir + "/invocations_per_function_md.anon.d01.csv"));
  EXPECT_TRUE(std::filesystem::exists(
      azure_dir + "/invocations_per_function_md.anon.d02.csv"));
}

TEST_F(CliTest, InspectRequiresTrace) {
  const auto r = RunDefuse({"inspect"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--trace"), std::string::npos);
}

TEST_F(CliTest, InspectMissingFileFails) {
  const auto r = RunDefuse({"inspect", "--trace", (dir_ / "nope.csv").string()});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("io_error"), std::string::npos);
}

TEST_F(CliTest, MineWritesArtifacts) {
  Generate();
  const auto sets = (dir_ / "sets.csv").string();
  const auto edges = (dir_ / "edges.csv").string();
  const auto dot = (dir_ / "graph.dot").string();
  const auto r = RunDefuse({"mine", "--trace", trace_path_, "--sets-out", sets,
                      "--edges-out", edges, "--dot-out", dot});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("dependency sets"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(sets));
  EXPECT_TRUE(std::filesystem::exists(edges));
  EXPECT_TRUE(std::filesystem::exists(dot));
  // The dot file is plausible Graphviz.
  std::ifstream in{dot};
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line, "digraph dependencies {");
}

TEST_F(CliTest, MineRejectsConflictingAblationFlags) {
  Generate();
  const auto r = RunDefuse({"mine", "--trace", trace_path_, "--strong-only",
                      "--weak-only"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("mutually exclusive"), std::string::npos);
}

TEST_F(CliTest, SimulateDefaultMethod) {
  Generate();
  const auto r = RunDefuse({"simulate", "--trace", trace_path_});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("method: Defuse"), std::string::npos);
  EXPECT_NE(r.out.find("p75 function cold-start rate"), std::string::npos);
}

TEST_F(CliTest, SimulateEveryMethodName) {
  Generate();
  for (const char* method :
       {"defuse", "strong-only", "weak-only", "hybrid-function",
        "hybrid-application", "fixed"}) {
    const auto r =
        RunDefuse({"simulate", "--trace", trace_path_, "--method", method});
    EXPECT_EQ(r.code, 0) << method << ": " << r.err;
  }
}

TEST_F(CliTest, SimulateWithArFallbackRuns) {
  Generate();
  const auto r = RunDefuse({"simulate", "--trace", trace_path_,
                            "--ar-fallback"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("p75 function cold-start rate"), std::string::npos);
}

TEST_F(CliTest, SimulateUnknownMethodFails) {
  Generate();
  const auto r =
      RunDefuse({"simulate", "--trace", trace_path_, "--method", "magic"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown --method"), std::string::npos);
}

TEST_F(CliTest, SimulateWithPreMinedSets) {
  Generate();
  const auto sets = (dir_ / "sets.csv").string();
  ASSERT_EQ(RunDefuse({"mine", "--trace", trace_path_, "--sets-out", sets}).code,
            0);
  const auto direct = RunDefuse({"simulate", "--trace", trace_path_});
  const auto from_file =
      RunDefuse({"simulate", "--trace", trace_path_, "--sets", sets});
  ASSERT_EQ(from_file.code, 0) << from_file.err;
  // Mining is deterministic, so the two paths must report the same p75.
  const auto extract = [](const std::string& text) {
    const auto pos = text.find("p75 function cold-start rate: ");
    return text.substr(pos, text.find('\n', pos) - pos);
  };
  EXPECT_EQ(extract(direct.out), extract(from_file.out));
}

TEST_F(CliTest, SimulateTrainDaysValidation) {
  Generate();
  EXPECT_EQ(RunDefuse({"simulate", "--trace", trace_path_, "--train-days", "2"})
                .code,
            0);
  EXPECT_EQ(RunDefuse({"simulate", "--trace", trace_path_, "--train-days", "99"})
                .code,
            1);
}

TEST_F(CliTest, SweepEmitsCsvRows) {
  Generate();
  const auto r =
      RunDefuse({"sweep", "--trace", trace_path_, "--amplifications", "1,2"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("method,amplification"), std::string::npos);
  EXPECT_NE(r.out.find("Defuse,1.00"), std::string::npos);
  EXPECT_NE(r.out.find("Hybrid-Application,2.00"), std::string::npos);
}

TEST_F(CliTest, SweepRejectsBadAmplifications) {
  Generate();
  const auto r =
      RunDefuse({"sweep", "--trace", trace_path_, "--amplifications", "1,zero"});
  EXPECT_EQ(r.code, 1);
}

TEST_F(CliTest, FilterSampleUsers) {
  Generate();
  const auto out_path = (dir_ / "small.csv").string();
  const auto r = RunDefuse({"filter", "--trace", trace_path_,
                            "--sample-users", "3", "--out", out_path});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("3 users"), std::string::npos);
  // The filtered trace is loadable.
  EXPECT_EQ(RunDefuse({"inspect", "--trace", out_path}).code, 0);
}

TEST_F(CliTest, FilterFirstDays) {
  Generate();
  const auto out_path = (dir_ / "short.csv").string();
  const auto r = RunDefuse({"filter", "--trace", trace_path_,
                            "--first-days", "2", "--out", out_path});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("over 2 days"), std::string::npos);
}

TEST_F(CliTest, AdaptiveRunsEpochs) {
  Generate();
  const auto r = RunDefuse({"adaptive", "--trace", trace_path_,
                            "--last-days", "2", "--epoch-days", "1",
                            "--window-days", "2"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("epoch,mined_days"), std::string::npos);
  EXPECT_NE(r.out.find("aggregate: p75"), std::string::npos);
  // Two epochs: rows 0 and 1.
  EXPECT_NE(r.out.find("\n0,"), std::string::npos);
  EXPECT_NE(r.out.find("\n1,"), std::string::npos);
}

TEST_F(CliTest, AdaptiveRejectsBadEpochs) {
  Generate();
  const auto r = RunDefuse({"adaptive", "--trace", trace_path_,
                            "--epoch-days", "0"});
  EXPECT_EQ(r.code, 1);
}

TEST_F(CliTest, CompareRunsTheHeadlineComparison) {
  Generate();
  const auto r = RunDefuse({"compare", "--trace", trace_path_});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Defuse,"), std::string::npos);
  EXPECT_NE(r.out.find("Hybrid-Application,1.00"), std::string::npos);
  EXPECT_NE(r.out.find("Defuse vs Hybrid-Application"), std::string::npos);
}

TEST_F(CliTest, CompareRejectsBadBudgetFactor) {
  Generate();
  const auto r = RunDefuse({"compare", "--trace", trace_path_,
                            "--budget-factor", "-1"});
  EXPECT_EQ(r.code, 1);
}

TEST_F(CliTest, ReplayStreamsThroughTheOnlineEngine) {
  Generate();
  const auto r = RunDefuse({"replay", "--trace", trace_path_,
                            "--remine-days", "1", "--window-days", "2"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("day,invocations,cold_fraction"), std::string::npos);
  EXPECT_NE(r.out.find("re-mines"), std::string::npos);
}

TEST_F(CliTest, ReplayRejectsBadFlags) {
  Generate();
  EXPECT_EQ(RunDefuse({"replay", "--trace", trace_path_, "--remine-days",
                       "0"})
                .code,
            1);
}

TEST_F(CliTest, FsckRequiresStateDir) {
  const auto r = RunDefuse({"fsck"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--state-dir"), std::string::npos);
}

TEST_F(CliTest, FsckOnEmptyDirectoryIsHealthy) {
  const auto state_dir = (dir_ / "state").string();
  std::filesystem::create_directories(state_dir);
  const auto r = RunDefuse({"fsck", "--state-dir", state_dir});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("status: healthy"), std::string::npos);
}

TEST_F(CliTest, RecoverRequiresStateDirAndTrace) {
  EXPECT_EQ(RunDefuse({"recover"}).code, 1);
  Generate();
  EXPECT_EQ(RunDefuse({"recover", "--trace", trace_path_}).code, 1);
}

TEST_F(CliTest, DurableReplayFsckAndRecoverRoundTrip) {
  Generate();
  const auto state_dir = (dir_ / "state").string();
  const auto replay =
      RunDefuse({"replay", "--trace", trace_path_, "--state-dir", state_dir,
                 "--checkpoint-days", "1"});
  ASSERT_EQ(replay.code, 0) << replay.err;
  EXPECT_NE(replay.out.find("recovery: rung empty_state"), std::string::npos);
  EXPECT_NE(replay.out.find("state saved: generation"), std::string::npos);

  // The state directory the replay left behind verifies clean...
  const auto fsck = RunDefuse({"fsck", "--state-dir", state_dir});
  EXPECT_EQ(fsck.code, 0) << fsck.out;
  EXPECT_NE(fsck.out.find("status: healthy"), std::string::npos);

  // ...and recovers without repairs.
  const auto recover = RunDefuse(
      {"recover", "--state-dir", state_dir, "--trace", trace_path_});
  EXPECT_EQ(recover.code, 0) << recover.out;
  EXPECT_NE(recover.out.find("recovered state:"), std::string::npos);

  // A second durable replay resumes after the last applied minute
  // instead of redoing the whole trace (or exits immediately when the
  // final trace minute was already applied).
  const auto resume =
      RunDefuse({"replay", "--trace", trace_path_, "--state-dir", state_dir});
  EXPECT_EQ(resume.code, 0) << resume.err;
  const bool resumed =
      resume.out.find("trace already fully replayed") != std::string::npos ||
      resume.out.find("resuming at minute") != std::string::npos;
  EXPECT_TRUE(resumed) << resume.out;
}

TEST_F(CliTest, FsckFlagsACorruptSnapshot) {
  Generate();
  const auto state_dir = (dir_ / "state").string();
  ASSERT_EQ(RunDefuse({"replay", "--trace", trace_path_, "--state-dir",
                       state_dir})
                .code,
            0);
  // Corrupt the newest snapshot in place.
  std::string newest;
  for (const auto& entry : std::filesystem::directory_iterator{state_dir}) {
    const auto name = entry.path().filename().string();
    if (name.rfind("snapshot-", 0) == 0 && name > newest) {
      newest = name;
    }
  }
  ASSERT_FALSE(newest.empty());
  {
    std::fstream f{state_dir + "/" + newest,
                   std::ios::in | std::ios::out | std::ios::binary};
    f.seekp(-2, std::ios::end);
    f.put('~');
  }
  const auto fsck = RunDefuse({"fsck", "--state-dir", state_dir});
  EXPECT_EQ(fsck.code, 2);
  EXPECT_NE(fsck.out.find("status: CORRUPT"), std::string::npos);

  // Recover falls down the ladder and reports the repair via exit 2.
  const auto recover = RunDefuse(
      {"recover", "--state-dir", state_dir, "--trace", trace_path_});
  EXPECT_EQ(recover.code, 2) << recover.out;
}

TEST_F(CliTest, FilterRequiresSomeOperation) {
  Generate();
  const auto r = RunDefuse({"filter", "--trace", trace_path_, "--out",
                            (dir_ / "x.csv").string()});
  EXPECT_EQ(r.code, 1);
}

TEST_F(CliTest, HealthRequiresPort) {
  const auto r = RunDefuse({"health"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--port"), std::string::npos);
}

TEST_F(CliTest, HealthAgainstNothingFailsAsUnreachable) {
  // Port 1 is privileged and never runs a defuse daemon.
  const auto r = RunDefuse({"health", "--port", "1"});
  EXPECT_EQ(r.code, 2);
}

TEST_F(CliTest, ServeRejectsBadResilienceFlags) {
  Generate();
  const auto queue = RunDefuse(
      {"serve", "--trace", trace_path_, "--queue-bound", "0"});
  EXPECT_EQ(queue.code, 1);
  EXPECT_NE(queue.err.find("--queue-bound"), std::string::npos);
  const auto window = RunDefuse(
      {"serve", "--trace", trace_path_, "--idempotency-window", "-1"});
  EXPECT_EQ(window.code, 1);
  EXPECT_NE(window.err.find("--idempotency-window"), std::string::npos);
}

}  // namespace
}  // namespace defuse::cli
