#include "common/logging.hpp"

#include <gtest/gtest.h>

namespace defuse {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kWarn); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, DefaultLevelSuppressesInfo) {
  // The macro's condition must not evaluate the streamed expression when
  // the level is filtered out.
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  const auto count = [&] {
    ++evaluations;
    return "msg";
  };
  DEFUSE_LOG_INFO << count();
  EXPECT_EQ(evaluations, 0);
  DEFUSE_LOG_ERROR << count();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, OffSuppressesEverything) {
  SetLogLevel(LogLevel::kOff);
  int evaluations = 0;
  DEFUSE_LOG_ERROR << [&] {
    ++evaluations;
    return "x";
  }();
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace defuse
