#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace defuse {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedProducesNonZeroOutput) {
  Rng rng{0};
  bool any_nonzero = false;
  for (int i = 0; i < 10; ++i) any_nonzero |= rng.Next() != 0;
  EXPECT_TRUE(any_nonzero);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent{7};
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministicGivenParentState) {
  Rng p1{7}, p2{7};
  Rng a = p1.Fork(5);
  Rng b = p2.Fork(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, SuccessiveForksWithSameIdDiffer) {
  Rng parent{7};
  Rng a = parent.Fork(5);
  Rng b = parent.Fork(5);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng{11};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NextDoubleMeanIsOneHalf) {
  Rng rng{13};
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng rng{17};
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng{19};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng{23};
  constexpr std::uint64_t kBound = 10;
  constexpr int kN = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kN; ++i) ++counts[rng.NextBelow(kBound)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kN / kBound, 0.05 * kN / kBound);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng{29};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.NextInRange(-1, 1);
    EXPECT_GE(v, -1);
    EXPECT_LE(v, 1);
    saw_lo |= v == -1;
    saw_hi |= v == 1;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng{31};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(Rng, BernoulliRateMatchesP) {
  Rng rng{37};
  constexpr int kN = 100000;
  int hits = 0;
  for (int i = 0; i < kN; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, GaussianMomentsAreStandard) {
  Rng rng{41};
  constexpr int kN = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng{43};
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.NextExponential(0.25);
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng{47};
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.NextExponential(2.0), 0.0);
}

class RngPoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng{53};
  constexpr int kN = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.NextPoisson(mean);
    sum += x;
    sq += x * x;
  }
  const double m = sum / kN;
  const double var = sq / kN - m * m;
  EXPECT_NEAR(m, mean, std::max(0.05, 0.03 * mean));
  EXPECT_NEAR(var, mean, std::max(0.1, 0.1 * mean));
}

INSTANTIATE_TEST_SUITE_P(Means, RngPoissonTest,
                         ::testing::Values(0.1, 0.5, 1.0, 5.0, 20.0, 50.0,
                                           200.0));

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng{59};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextPoisson(0.0), 0u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{61};
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.Shuffle(std::span{shuffled});
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleOfEmptyAndSingleton) {
  Rng rng{67};
  std::vector<int> empty;
  rng.Shuffle(std::span{empty});
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(std::span{one});
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(ZipfSampler, UniformWhenExponentZero) {
  ZipfSampler zipf{4, 0.0};
  for (std::uint64_t k = 0; k < 4; ++k) EXPECT_NEAR(zipf.Pmf(k), 0.25, 1e-12);
}

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler zipf{100, 1.1};
  double total = 0.0;
  for (std::uint64_t k = 0; k < 100; ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, PmfIsMonotoneDecreasing) {
  ZipfSampler zipf{50, 0.9};
  for (std::uint64_t k = 1; k < 50; ++k) {
    EXPECT_LE(zipf.Pmf(k), zipf.Pmf(k - 1) + 1e-12);
  }
}

TEST(ZipfSampler, SamplesMatchPmf) {
  ZipfSampler zipf{5, 1.0};
  Rng rng{71};
  constexpr int kN = 200000;
  std::vector<int> counts(5, 0);
  for (int i = 0; i < kN; ++i) ++counts[zipf.Sample(rng)];
  for (std::uint64_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / kN, zipf.Pmf(k), 0.01);
  }
}

TEST(ZipfSampler, SingleElementAlwaysZero) {
  ZipfSampler zipf{1, 2.0};
  Rng rng{73};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

}  // namespace
}  // namespace defuse
