#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace defuse {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool{4};
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitReturnsTaskValue) {
  ThreadPool pool{2};
  auto f = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  // Every future submitted before destruction must be satisfied, even
  // when the pool is torn down while the queue is still deep.
  std::atomic<int> counter{0};
  {
    ThreadPool pool{2};
    for (int i = 0; i < 200; ++i) {
      (void)pool.Submit([&counter] { ++counter; });
    }
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool{2};
  auto f = pool.Submit([]() -> int { throw std::runtime_error{"boom"}; });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ParallelFor, NullPoolRunsInlineInIndexOrder) {
  std::vector<std::size_t> order;
  ParallelFor(nullptr, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(&pool, kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, SlotWritesAreDeterministic) {
  // The slot-per-index contract: with each body(i) writing only slot i,
  // the result must not depend on the thread count.
  constexpr std::size_t kN = 500;
  const auto run = [&](std::size_t threads) {
    std::vector<std::uint64_t> out(kN, 0);
    ThreadPool pool{threads};
    ParallelFor(threads <= 1 ? nullptr : &pool, kN,
                [&](std::size_t i) { out[i] = i * i + 1; });
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(8));
}

TEST(ParallelFor, ZeroIterationsIsANoop) {
  ThreadPool pool{2};
  bool ran = false;
  ParallelFor(&pool, 0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, ExceptionInBodySurfacesOnCaller) {
  ThreadPool pool{4};
  EXPECT_THROW(ParallelFor(&pool, 100,
                           [&](std::size_t i) {
                             if (i == 37) throw std::runtime_error{"boom"};
                           }),
               std::runtime_error);
}

TEST(ThreadPool, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

}  // namespace
}  // namespace defuse
