#include "common/ids.hpp"

#include <gtest/gtest.h>

#include "common/time.hpp"

#include <sstream>
#include <unordered_set>

namespace defuse {
namespace {

TEST(Ids, DefaultConstructedIsInvalid) {
  FunctionId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, FunctionId::invalid());
}

TEST(Ids, ExplicitValueIsValid) {
  FunctionId id{7};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(Ids, MaxValueIsTheInvalidSentinel) {
  FunctionId id{std::numeric_limits<std::uint32_t>::max()};
  EXPECT_FALSE(id.valid());
}

TEST(Ids, ZeroIsAValidId) {
  EXPECT_TRUE(FunctionId{0}.valid());
}

TEST(Ids, EqualityComparesValues) {
  EXPECT_EQ(FunctionId{3}, FunctionId{3});
  EXPECT_NE(FunctionId{3}, FunctionId{4});
}

TEST(Ids, OrderingFollowsValues) {
  EXPECT_LT(FunctionId{1}, FunctionId{2});
  EXPECT_GT(AppId{9}, AppId{0});
  EXPECT_LE(UserId{5}, UserId{5});
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<FunctionId, AppId>);
  static_assert(!std::is_same_v<AppId, UserId>);
  static_assert(!std::is_convertible_v<FunctionId, AppId>);
}

TEST(Ids, HashableInUnorderedContainers) {
  std::unordered_set<FunctionId> set;
  set.insert(FunctionId{1});
  set.insert(FunctionId{2});
  set.insert(FunctionId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(FunctionId{2}));
  EXPECT_FALSE(set.contains(FunctionId{3}));
}

TEST(Ids, StreamInsertionPrintsTheValue) {
  std::ostringstream os;
  os << FunctionId{42};
  EXPECT_EQ(os.str(), "42");
}

TEST(TimeRange, ContainsIsHalfOpen) {
  TimeRange r{10, 20};
  EXPECT_FALSE(r.contains(9));
  EXPECT_TRUE(r.contains(10));
  EXPECT_TRUE(r.contains(19));
  EXPECT_FALSE(r.contains(20));
}

TEST(TimeRange, LengthAndEmpty) {
  EXPECT_EQ((TimeRange{5, 9}).length(), 4);
  EXPECT_TRUE((TimeRange{5, 5}).empty());
  EXPECT_TRUE((TimeRange{6, 5}).empty());
  EXPECT_FALSE((TimeRange{0, 1}).empty());
}

}  // namespace
}  // namespace defuse
