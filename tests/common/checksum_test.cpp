// CRC-32C known-answer vectors (RFC 3720 / iSCSI test patterns) plus the
// checksum-trailer contract for line-oriented artifact files.
#include "common/io/checksum.hpp"

#include <gtest/gtest.h>

#include <string>

namespace defuse::io {
namespace {

TEST(Crc32c, KnownAnswerVectors) {
  // Canonical check value for CRC-32C.
  EXPECT_EQ(Crc32cOf("123456789"), 0xe3069283u);
  EXPECT_EQ(Crc32cOf(""), 0x00000000u);
  EXPECT_EQ(Crc32cOf("a"), 0xc1d04330u);
  EXPECT_EQ(Crc32cOf("The quick brown fox jumps over the lazy dog"),
            0x22620404u);
  // 32 bytes of zeros — iSCSI test pattern from RFC 3720 §B.4.
  EXPECT_EQ(Crc32cOf(std::string(32, '\0')), 0x8a9136aau);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  const std::string data = "The quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Crc32c crc;
    crc.Update(data.substr(0, split));
    crc.Update(data.substr(split));
    EXPECT_EQ(crc.value(), Crc32cOf(data)) << "split at " << split;
  }
}

TEST(Crc32c, ValueDoesNotFinalizeState) {
  Crc32c crc;
  crc.Update("1234");
  (void)crc.value();
  crc.Update("56789");
  EXPECT_EQ(crc.value(), 0xe3069283u);
}

TEST(Crc32c, ResetStartsOver) {
  Crc32c crc;
  crc.Update("garbage");
  crc.Reset();
  crc.Update("123456789");
  EXPECT_EQ(crc.value(), 0xe3069283u);
}

TEST(Crc32c, SingleBitErrorsAreDetected) {
  const std::string data = "defuse snapshot payload";
  const std::uint32_t good = Crc32cOf(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_NE(Crc32cOf(flipped), good)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(Crc32cHex, RoundTrips) {
  EXPECT_EQ(Crc32cHex(0xe3069283u), "e3069283");
  EXPECT_EQ(Crc32cHex(0u), "00000000");
  const auto parsed = ParseCrc32cHex("e3069283");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), 0xe3069283u);
}

TEST(Crc32cHex, ParseRejectsMalformedInput) {
  EXPECT_FALSE(ParseCrc32cHex("").ok());
  EXPECT_FALSE(ParseCrc32cHex("e306928").ok());     // too short
  EXPECT_FALSE(ParseCrc32cHex("e30692831").ok());   // too long
  EXPECT_FALSE(ParseCrc32cHex("e30692gx").ok());    // non-hex
  // Uppercase is rejected by design: the encoder emits lowercase only,
  // and case-folding would make 'a'<->'A' bit flips (0x20) undetectable.
  EXPECT_FALSE(ParseCrc32cHex("E3069283").ok());
  EXPECT_FALSE(ParseCrc32cHex("e306928A").ok());
}

TEST(ChecksumTrailer, RoundTrips) {
  std::string csv = "a,b\n1,2\n";
  csv += ChecksumTrailer(csv);
  ASSERT_TRUE(HasChecksumTrailer(csv));
  const auto stripped = VerifyAndStripChecksumTrailer(csv);
  ASSERT_TRUE(stripped.ok());
  EXPECT_EQ(stripped.value(), "a,b\n1,2\n");
}

TEST(ChecksumTrailer, MismatchIsDataLoss) {
  std::string csv = "a,b\n1,2\n";
  csv += ChecksumTrailer(csv);
  csv[2] = 'c';  // corrupt a payload byte after sealing
  const auto stripped = VerifyAndStripChecksumTrailer(csv);
  ASSERT_FALSE(stripped.ok());
  EXPECT_EQ(stripped.error().code, ErrorCode::kDataLoss);
}

TEST(ChecksumTrailer, TrailerlessBufferPassesThroughUnchanged) {
  const std::string csv = "a,b\n1,2\n";
  EXPECT_FALSE(HasChecksumTrailer(csv));
  const auto stripped = VerifyAndStripChecksumTrailer(csv);
  ASSERT_TRUE(stripped.ok());
  EXPECT_EQ(stripped.value(), csv);
}

}  // namespace
}  // namespace defuse::io
