// Atomic-write and framed-record contracts, including the injected
// crash modes the durability layer recovers from: after any failure the
// destination is either the complete old content or the complete new
// content, never a torn mixture.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/io/atomic_file.hpp"
#include "common/io/framed.hpp"
#include "faults/injector.hpp"
#include "faults/io_hooks.hpp"

namespace defuse::io {
namespace {

namespace fs = std::filesystem;
using namespace std::string_literals;

class AtomicIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("defuse_io_test_" + std::to_string(::getpid()) + "_" +
            info->name());
    fs::create_directories(dir_);
    path_ = (dir_ / "file.dat").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string ReadBack(const std::string& path) {
    std::ifstream in{path, std::ios::binary};
    return std::string{std::istreambuf_iterator<char>{in},
                       std::istreambuf_iterator<char>{}};
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(AtomicIoTest, WriteThenReadRoundTrips) {
  const std::string content = "hello\0world\nbinary ok"s;
  ASSERT_TRUE(AtomicWriteFile(path_, content).ok());
  EXPECT_EQ(ReadBack(path_), content);
  // No temp debris after a clean write.
  EXPECT_FALSE(fs::exists(AtomicTempPath(path_)));
}

TEST_F(AtomicIoTest, OverwriteReplacesWholeContent) {
  ASSERT_TRUE(AtomicWriteFile(path_, "first version, longer").ok());
  ASSERT_TRUE(AtomicWriteFile(path_, "second").ok());
  EXPECT_EQ(ReadBack(path_), "second");
}

TEST_F(AtomicIoTest, TornWriteLeavesDestinationAbsent) {
  faults::FaultProfile profile;
  profile.snapshot_torn_write_fraction = 1.0;
  faults::FaultInjector injector{1, profile};
  const auto hooks = faults::MakeIoFaultHooks(&injector);
  const auto r = AtomicWriteFile(path_, "never published", &hooks);
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(fs::exists(path_));
  // The crash leaves partial temp debris behind, like a real power cut.
  EXPECT_TRUE(fs::exists(AtomicTempPath(path_)));
  EXPECT_EQ(injector.injected(faults::FaultSite::kSnapshotTornWrite), 1u);
}

TEST_F(AtomicIoTest, TornWriteLeavesOldContentIntact) {
  ASSERT_TRUE(AtomicWriteFile(path_, "old content").ok());
  faults::FaultProfile profile;
  profile.snapshot_torn_write_fraction = 1.0;
  faults::FaultInjector injector{2, profile};
  const auto hooks = faults::MakeIoFaultHooks(&injector);
  ASSERT_FALSE(AtomicWriteFile(path_, "new content", &hooks).ok());
  EXPECT_EQ(ReadBack(path_), "old content");
}

TEST_F(AtomicIoTest, RenameFailureLeavesOldContentIntact) {
  ASSERT_TRUE(AtomicWriteFile(path_, "old content").ok());
  faults::FaultProfile profile;
  profile.snapshot_rename_failure_fraction = 1.0;
  faults::FaultInjector injector{3, profile};
  const auto hooks = faults::MakeIoFaultHooks(&injector);
  ASSERT_FALSE(AtomicWriteFile(path_, "new content", &hooks).ok());
  EXPECT_EQ(ReadBack(path_), "old content");
  EXPECT_EQ(injector.injected(faults::FaultSite::kSnapshotRename), 1u);
}

TEST_F(AtomicIoTest, DisabledInjectorInjectsNothing) {
  faults::FaultInjector disabled;  // default-constructed: off
  const auto hooks = faults::MakeIoFaultHooks(&disabled);
  ASSERT_TRUE(AtomicWriteFile(path_, "content", &hooks).ok());
  EXPECT_EQ(disabled.decisions(faults::FaultSite::kSnapshotTornWrite), 0u);
  EXPECT_EQ(disabled.decisions(faults::FaultSite::kSnapshotRename), 0u);
}

TEST_F(AtomicIoTest, ReadMissingFileIsNotFound) {
  const auto r = ReadFileWithFaults((dir_ / "absent").string());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
}

TEST_F(AtomicIoTest, BitFlipReadCorruptsExactlyOneBit) {
  const std::string content(256, 'x');
  ASSERT_TRUE(AtomicWriteFile(path_, content).ok());
  faults::FaultProfile profile;
  profile.state_read_bit_flip_fraction = 1.0;
  faults::FaultInjector injector{4, profile};
  const auto hooks = faults::MakeIoFaultHooks(&injector);
  const auto r = ReadFileWithFaults(path_, &hooks);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), content.size());
  int flipped_bits = 0;
  for (std::size_t i = 0; i < content.size(); ++i) {
    unsigned diff = static_cast<unsigned char>(r.value()[i]) ^
                    static_cast<unsigned char>(content[i]);
    while (diff != 0) {
      flipped_bits += static_cast<int>(diff & 1u);
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(injector.injected(faults::FaultSite::kStateReadBitFlip), 1u);
  // On disk the file is still pristine: only the returned buffer rots.
  EXPECT_EQ(ReadBack(path_), content);
}

TEST(Framed, AppendScanRoundTrips) {
  std::string buffer;
  AppendFrame(buffer, "first");
  AppendFrame(buffer, "");
  AppendFrame(buffer, "line\nwith\nnewlines");
  AppendFrame(buffer, "f 3 looks-like-a-header");
  const FrameScan scan = ScanFrames(buffer);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, buffer.size());
  ASSERT_EQ(scan.records.size(), 4u);
  EXPECT_EQ(scan.records[0], "first");
  EXPECT_EQ(scan.records[1], "");
  EXPECT_EQ(scan.records[2], "line\nwith\nnewlines");
  EXPECT_EQ(scan.records[3], "f 3 looks-like-a-header");
}

TEST(Framed, EncodeFrameMatchesAppendFrame) {
  std::string appended;
  AppendFrame(appended, "payload");
  EXPECT_EQ(EncodeFrame("payload"), appended);
}

TEST(Framed, TornTailStopsAtLastIntactFrame) {
  std::string buffer;
  AppendFrame(buffer, "alpha");
  AppendFrame(buffer, "beta");
  const std::size_t intact = buffer.size();
  std::string torn = buffer + EncodeFrame("gamma");
  torn.resize(torn.size() - 3);  // crash mid-append
  const FrameScan scan = ScanFrames(torn);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, intact);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[1], "beta");
}

TEST(Framed, CorruptPayloadByteInvalidatesTheFrameAndTheTail) {
  std::string buffer;
  AppendFrame(buffer, "alpha");
  const std::size_t intact = buffer.size();
  AppendFrame(buffer, "beta");
  AppendFrame(buffer, "gamma");
  // Flip a byte inside "beta"'s payload: its checksum fails, and gamma
  // after it is untrusted even though it would verify.
  buffer[intact + EncodeFrame("beta").find("beta")] = 'B';
  const FrameScan scan = ScanFrames(buffer);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, intact);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0], "alpha");
}

TEST(Framed, GarbageBufferYieldsNothing) {
  const FrameScan scan = ScanFrames("not a frame at all");
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_TRUE(scan.records.empty());
}

TEST(Framed, EmptyBufferIsCleanlyEmpty) {
  const FrameScan scan = ScanFrames("");
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_TRUE(scan.records.empty());
}

}  // namespace
}  // namespace defuse::io
