#include "common/result.hpp"

#include <gtest/gtest.h>

#include <string>

namespace defuse {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Error{ErrorCode::kNotFound, "missing"};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(r.error().message, "missing");
}

TEST(Result, ValueOrReturnsFallbackOnError) {
  Result<int> ok = 1;
  Result<int> bad = Error{ErrorCode::kIoError, "x"};
  EXPECT_EQ(ok.value_or(9), 1);
  EXPECT_EQ(bad.value_or(9), 9);
}

TEST(Result, RvalueValueOrMovesHeldValue) {
  Result<std::string> ok = std::string{"held"};
  EXPECT_EQ(std::move(ok).value_or("fallback"), "held");
  Result<std::string> bad = Error{ErrorCode::kIoError, "x"};
  EXPECT_EQ(std::move(bad).value_or("fallback"), "fallback");
}

TEST(ResultDeathTest, ValueOnErrorAbortsInAllBuildModes) {
  // Satellite fix: value() on an error Result used to be assert-only,
  // which is UB under NDEBUG. It must now hard-abort everywhere, with
  // the held error on stderr.
  Result<int> bad = Error{ErrorCode::kNotFound, "missing thing"};
  EXPECT_DEATH((void)bad.value(), "missing thing");
}

TEST(ResultDeathTest, ErrorOnOkResultAborts) {
  Result<int> ok = 7;
  EXPECT_DEATH((void)ok.error(), "called on an ok Result");
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string{"payload"};
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(Result, MutableValueReference) {
  Result<std::string> r = std::string{"a"};
  r.value() += "b";
  EXPECT_EQ(r.value(), "ab");
}

TEST(Error, ToStringIncludesCodeAndMessage) {
  const Error e{ErrorCode::kParseError, "bad field"};
  EXPECT_EQ(e.ToString(), "parse_error: bad field");
}

TEST(ErrorCodeName, CoversAllCodes) {
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kInvalidArgument), "invalid_argument");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kNotFound), "not_found");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kIoError), "io_error");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kParseError), "parse_error");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kOutOfRange), "out_of_range");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kFailedPrecondition),
               "failed_precondition");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kResourceExhausted),
               "resource_exhausted");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kDeadlineExceeded),
               "deadline_exceeded");
}

}  // namespace
}  // namespace defuse
