#include "common/flags.hpp"

#include <gtest/gtest.h>

namespace defuse {
namespace {

FlagParser Parse(std::vector<std::string> tokens) {
  return FlagParser{std::span<const std::string>{tokens}};
}

TEST(FlagParser, EqualsSyntax) {
  const auto p = Parse({"--users=50", "--seed=7"});
  EXPECT_EQ(p.GetOr("users", ""), "50");
  EXPECT_EQ(p.GetOr("seed", ""), "7");
}

TEST(FlagParser, SpaceSyntax) {
  const auto p = Parse({"--users", "50"});
  EXPECT_EQ(p.GetOr("users", ""), "50");
  EXPECT_TRUE(p.positional().empty());
}

TEST(FlagParser, BooleanFlag) {
  const auto p = Parse({"--verbose", "--out=x"});
  EXPECT_TRUE(p.Has("verbose"));
  EXPECT_EQ(p.GetOr("verbose", ""), "true");
  EXPECT_FALSE(p.Has("quiet"));
}

TEST(FlagParser, BooleanFollowedByFlagDoesNotConsumeIt) {
  const auto p = Parse({"--verbose", "--users", "5"});
  EXPECT_EQ(p.GetOr("verbose", ""), "true");
  EXPECT_EQ(p.GetOr("users", ""), "5");
}

TEST(FlagParser, PositionalArguments) {
  const auto p = Parse({"mine", "--support=0.2", "trace.csv"});
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "mine");
  EXPECT_EQ(p.positional()[1], "trace.csv");
}

TEST(FlagParser, MissingFlagYieldsNullopt) {
  const auto p = Parse({});
  EXPECT_FALSE(p.Get("anything").has_value());
  EXPECT_EQ(p.GetOr("anything", "fallback"), "fallback");
}

TEST(FlagParser, LastOccurrenceWins) {
  const auto p = Parse({"--a=1", "--a=2"});
  EXPECT_EQ(p.GetOr("a", ""), "2");
}

TEST(FlagParser, GetIntParsesAndDefaults) {
  const auto p = Parse({"--n=42", "--neg=-7"});
  EXPECT_EQ(p.GetInt("n", 0).value(), 42);
  EXPECT_EQ(p.GetInt("neg", 0).value(), -7);
  EXPECT_EQ(p.GetInt("missing", 13).value(), 13);
}

TEST(FlagParser, GetIntRejectsGarbage) {
  const auto p = Parse({"--n=4x"});
  const auto r = p.GetInt("n", 0);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("--n"), std::string::npos);
}

TEST(FlagParser, GetDoubleParsesAndDefaults) {
  const auto p = Parse({"--support=0.25"});
  EXPECT_DOUBLE_EQ(p.GetDouble("support", 0.0).value(), 0.25);
  EXPECT_DOUBLE_EQ(p.GetDouble("missing", 1.5).value(), 1.5);
  EXPECT_FALSE(Parse({"--x=abc"}).GetDouble("x", 0).ok());
}

TEST(FlagParser, EmptyValueViaEquals) {
  const auto p = Parse({"--out="});
  EXPECT_TRUE(p.Has("out"));
  EXPECT_EQ(p.GetOr("out", "z"), "");
}

TEST(FlagParser, UnknownFlagsReportsUnlisted) {
  const auto p = Parse({"--users=5", "--typo=1", "--users=6"});
  const std::vector<std::string_view> known{"users", "seed"};
  EXPECT_EQ(p.UnknownFlags(known), std::vector<std::string>{"typo"});
}

TEST(FlagParser, ArgcArgvConstructorSkipsProgramName) {
  const char* argv[] = {"prog", "--a=1", "pos"};
  const FlagParser p{3, argv};
  EXPECT_EQ(p.GetOr("a", ""), "1");
  ASSERT_EQ(p.positional().size(), 1u);
  EXPECT_EQ(p.positional()[0], "pos");
}

}  // namespace
}  // namespace defuse
