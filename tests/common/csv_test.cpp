#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

namespace defuse {
namespace {

TEST(SplitCsvLine, SingleField) {
  const auto fields = SplitCsvLine("hello");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "hello");
}

TEST(SplitCsvLine, MultipleFields) {
  const auto fields = SplitCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitCsvLine, EmptyFieldsArePreserved) {
  const auto fields = SplitCsvLine(",x,,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[1], "x");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "");
}

TEST(SplitCsvLine, EmptyLineIsOneEmptyField) {
  const auto fields = SplitCsvLine("");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(ParseU64, ParsesValidNumbers) {
  EXPECT_EQ(ParseU64("0").value(), 0u);
  EXPECT_EQ(ParseU64("42").value(), 42u);
  EXPECT_EQ(ParseU64("18446744073709551615").value(),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseU64, RejectsGarbage) {
  EXPECT_FALSE(ParseU64("").ok());
  EXPECT_FALSE(ParseU64("abc").ok());
  EXPECT_FALSE(ParseU64("12x").ok());
  EXPECT_FALSE(ParseU64("-3").ok());
  EXPECT_FALSE(ParseU64(" 7").ok());
}

TEST(ParseU64, ErrorCarriesParseCode) {
  const auto result = ParseU64("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kParseError);
  EXPECT_NE(result.error().message.find("nope"), std::string::npos);
}

TEST(ParseDouble, ParsesValidNumbers) {
  EXPECT_DOUBLE_EQ(ParseDouble("0.5").value(), 0.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-3").value(), -3.0);
  EXPECT_DOUBLE_EQ(ParseDouble("1e3").value(), 1000.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("x").ok());
  EXPECT_FALSE(ParseDouble("1.5z").ok());
}

TEST(ForEachLine, VisitsEveryLine) {
  std::vector<std::string> lines;
  auto res = ForEachLine("a\nb\nc",
                         [&](std::size_t, std::string_view line) -> Result<bool> {
                           lines.emplace_back(line);
                           return true;
                         });
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value(), 3u);
  EXPECT_EQ(lines, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ForEachLine, HandlesTrailingNewline) {
  std::size_t count = 0;
  auto res = ForEachLine("a\nb\n",
                         [&](std::size_t, std::string_view) -> Result<bool> {
                           ++count;
                           return true;
                         });
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(count, 2u);
}

TEST(ForEachLine, StripsCarriageReturn) {
  std::vector<std::string> lines;
  auto res = ForEachLine("a\r\nb\r\n",
                         [&](std::size_t, std::string_view line) -> Result<bool> {
                           lines.emplace_back(line);
                           return true;
                         });
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(lines, (std::vector<std::string>{"a", "b"}));
}

TEST(ForEachLine, LineNumbersAreOneBased) {
  std::vector<std::size_t> numbers;
  auto res = ForEachLine("x\ny",
                         [&](std::size_t n, std::string_view) -> Result<bool> {
                           numbers.push_back(n);
                           return true;
                         });
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(numbers, (std::vector<std::size_t>{1, 2}));
}

TEST(ForEachLine, PropagatesCallbackError) {
  auto res = ForEachLine("a\nb\nc",
                         [&](std::size_t n, std::string_view) -> Result<bool> {
                           if (n == 2) {
                             return Error{ErrorCode::kParseError, "bad line"};
                           }
                           return true;
                         });
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().message, "bad line");
}

TEST(ForEachLine, EmptyBufferVisitsNothing) {
  std::size_t count = 0;
  auto res = ForEachLine("", [&](std::size_t, std::string_view) -> Result<bool> {
    ++count;
    return true;
  });
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(count, 0u);
}

TEST(FileIo, WriteThenReadRoundTrips) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "defuse_csv_test.txt").string();
  const std::string content = "line1\nline2,with,commas\n";
  ASSERT_TRUE(WriteFile(path, content).ok());
  const auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), content);
  std::remove(path.c_str());
}

TEST(FileIo, ReadMissingFileErrors) {
  const auto read = ReadFile("/nonexistent/definitely/missing.csv");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.error().code, ErrorCode::kIoError);
}

TEST(FileIo, WriteToInvalidPathErrors) {
  const auto write = WriteFile("/nonexistent/dir/file.csv", "x");
  ASSERT_FALSE(write.ok());
  EXPECT_EQ(write.error().code, ErrorCode::kIoError);
}

}  // namespace
}  // namespace defuse
