#include "common/retry.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace defuse {
namespace {

/// A try-function that fails the first `failures` calls.
struct FlakyOp {
  int failures;
  int calls = 0;
  bool operator()() { return ++calls > failures; }
};

TEST(Retry, FirstTrySuccessSleepsNever) {
  std::vector<MinuteDelta> sleeps;
  FlakyOp op{0};
  const auto outcome = RetryWithBackoff(
      RetryPolicy{}, op, [&](MinuteDelta d) { sleeps.push_back(d); });
  EXPECT_TRUE(outcome.succeeded);
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(outcome.total_backoff, 0);
  EXPECT_TRUE(sleeps.empty());
}

TEST(Retry, ExponentialBackoffSchedule) {
  std::vector<MinuteDelta> sleeps;
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = 1;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = 60;
  FlakyOp op{3};
  const auto outcome = RetryWithBackoff(
      policy, op, [&](MinuteDelta d) { sleeps.push_back(d); });
  EXPECT_TRUE(outcome.succeeded);
  EXPECT_EQ(outcome.attempts, 4);
  EXPECT_EQ(sleeps, (std::vector<MinuteDelta>{1, 2, 4}));
  EXPECT_EQ(outcome.total_backoff, 7);
}

TEST(Retry, BackoffIsCappedAtMax) {
  std::vector<MinuteDelta> sleeps;
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff = 10;
  policy.backoff_multiplier = 3.0;
  policy.max_backoff = 45;
  FlakyOp op{100};  // never succeeds
  const auto outcome = RetryWithBackoff(
      policy, op, [&](MinuteDelta d) { sleeps.push_back(d); });
  EXPECT_FALSE(outcome.succeeded);
  EXPECT_EQ(outcome.attempts, 5);
  EXPECT_EQ(sleeps, (std::vector<MinuteDelta>{10, 30, 45, 45}));
  EXPECT_EQ(outcome.total_backoff, 130);
}

TEST(Retry, ExhaustionDoesNotSleepAfterLastAttempt) {
  int sleep_calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 3;
  FlakyOp op{100};
  const auto outcome =
      RetryWithBackoff(policy, op, [&](MinuteDelta) { ++sleep_calls; });
  EXPECT_FALSE(outcome.succeeded);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(op.calls, 3);
  EXPECT_EQ(sleep_calls, 2);  // only between tries
}

TEST(Retry, NonPositiveMaxAttemptsStillTriesOnce) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  FlakyOp op{0};
  const auto outcome =
      RetryWithBackoff(policy, op, [](MinuteDelta) {});
  EXPECT_TRUE(outcome.succeeded);
  EXPECT_EQ(outcome.attempts, 1);
}

TEST(Retry, DeterministicAcrossRuns) {
  const auto run = [] {
    std::vector<MinuteDelta> sleeps;
    RetryPolicy policy;
    policy.max_attempts = 6;
    FlakyOp op{100};
    (void)RetryWithBackoff(policy, op,
                           [&](MinuteDelta d) { sleeps.push_back(d); });
    return sleeps;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace defuse
