#include "common/retry.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace defuse {
namespace {

/// A try-function that fails the first `failures` calls.
struct FlakyOp {
  int failures;
  int calls = 0;
  bool operator()() { return ++calls > failures; }
};

TEST(Retry, FirstTrySuccessSleepsNever) {
  std::vector<MinuteDelta> sleeps;
  FlakyOp op{0};
  const auto outcome = RetryWithBackoff(
      RetryPolicy{}, op, [&](MinuteDelta d) { sleeps.push_back(d); });
  EXPECT_TRUE(outcome.succeeded);
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(outcome.total_backoff, 0);
  EXPECT_TRUE(sleeps.empty());
}

TEST(Retry, ExponentialBackoffSchedule) {
  std::vector<MinuteDelta> sleeps;
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = 1;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = 60;
  FlakyOp op{3};
  const auto outcome = RetryWithBackoff(
      policy, op, [&](MinuteDelta d) { sleeps.push_back(d); });
  EXPECT_TRUE(outcome.succeeded);
  EXPECT_EQ(outcome.attempts, 4);
  EXPECT_EQ(sleeps, (std::vector<MinuteDelta>{1, 2, 4}));
  EXPECT_EQ(outcome.total_backoff, 7);
}

TEST(Retry, BackoffIsCappedAtMax) {
  std::vector<MinuteDelta> sleeps;
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff = 10;
  policy.backoff_multiplier = 3.0;
  policy.max_backoff = 45;
  FlakyOp op{100};  // never succeeds
  const auto outcome = RetryWithBackoff(
      policy, op, [&](MinuteDelta d) { sleeps.push_back(d); });
  EXPECT_FALSE(outcome.succeeded);
  EXPECT_EQ(outcome.attempts, 5);
  EXPECT_EQ(sleeps, (std::vector<MinuteDelta>{10, 30, 45, 45}));
  EXPECT_EQ(outcome.total_backoff, 130);
}

TEST(Retry, ExhaustionDoesNotSleepAfterLastAttempt) {
  int sleep_calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 3;
  FlakyOp op{100};
  const auto outcome =
      RetryWithBackoff(policy, op, [&](MinuteDelta) { ++sleep_calls; });
  EXPECT_FALSE(outcome.succeeded);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(op.calls, 3);
  EXPECT_EQ(sleep_calls, 2);  // only between tries
}

TEST(Retry, NonPositiveMaxAttemptsStillTriesOnce) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  FlakyOp op{0};
  const auto outcome =
      RetryWithBackoff(policy, op, [](MinuteDelta) {});
  EXPECT_TRUE(outcome.succeeded);
  EXPECT_EQ(outcome.attempts, 1);
}

RetryPolicy JitterPolicy(std::uint64_t seed) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff = 4;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = 60;
  policy.jitter = 0.5;
  policy.jitter_seed = seed;
  return policy;
}

std::vector<MinuteDelta> JitteredSleeps(const RetryPolicy& policy) {
  std::vector<MinuteDelta> sleeps;
  FlakyOp op{100};  // never succeeds
  (void)RetryWithBackoff(policy, op,
                         [&](MinuteDelta d) { sleeps.push_back(d); });
  return sleeps;
}

TEST(Retry, JitterIsDeterministicInTheSeed) {
  EXPECT_EQ(JitteredSleeps(JitterPolicy(42)), JitteredSleeps(JitterPolicy(42)));
}

TEST(Retry, DistinctSeedsDecorrelateSchedules) {
  EXPECT_NE(JitteredSleeps(JitterPolicy(1)), JitteredSleeps(JitterPolicy(2)));
}

TEST(Retry, ZeroJitterKeepsTheLegacySchedule) {
  RetryPolicy policy = JitterPolicy(7);
  policy.jitter = 0.0;
  EXPECT_EQ(JitteredSleeps(policy),
            (std::vector<MinuteDelta>{4, 8, 16, 32, 60, 60, 60}));
}

TEST(Retry, JitteredDelaysStayWithinBounds) {
  // Each slept delay must sit in [1-j, 1+j] times the unjittered
  // schedule (rounded), clamped to max_backoff; the growth schedule
  // itself is never jittered.
  const RetryPolicy policy = JitterPolicy(9);
  const std::vector<MinuteDelta> base{4, 8, 16, 32, 60, 60, 60};
  const auto sleeps = JitteredSleeps(policy);
  ASSERT_EQ(sleeps.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    const auto lo = static_cast<MinuteDelta>(
        static_cast<double>(base[i]) * (1.0 - policy.jitter) - 1.0);
    const auto hi = std::min<MinuteDelta>(
        policy.max_backoff,
        static_cast<MinuteDelta>(
            static_cast<double>(base[i]) * (1.0 + policy.jitter) + 1.0));
    EXPECT_GE(sleeps[i], lo) << "step " << i;
    EXPECT_LE(sleeps[i], hi) << "step " << i;
  }
}

TEST(Retry, DeterministicAcrossRuns) {
  const auto run = [] {
    std::vector<MinuteDelta> sleeps;
    RetryPolicy policy;
    policy.max_attempts = 6;
    FlakyOp op{100};
    (void)RetryWithBackoff(policy, op,
                           [&](MinuteDelta d) { sleeps.push_back(d); });
    return sleeps;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace defuse
