// Live drain/handoff: drain -> snapshot -> transfer -> re-admit, the
// exactly-once contract across the migration (the idempotency window
// travels WITH the state), and the torn-transfer abort that leaves the
// tier exactly as it was.
#include "router/handoff.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "faults/injector.hpp"
#include "platform/platform.hpp"
#include "server/protocol.hpp"
#include "sharded_tier.hpp"

namespace defuse::router {
namespace {

namespace fs = std::filesystem;

platform::PlatformConfig HandoffConfig() {
  platform::PlatformConfig cfg;
  cfg.horizon = 2 * kMinutesPerDay;
  cfg.remine_interval = kMinutesPerDay;
  return cfg;
}

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& name)
      : path(fs::temp_directory_path() / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

ShardHost::Options DurableHostOptions(const platform::PlatformConfig& cfg,
                                      const fs::path& state_dir) {
  ShardHost::Options options;
  options.platform = cfg;
  options.state_dir = state_dir.string();
  return options;
}

TEST(Handoff, CompletedHandoffMovesStateAndTraffic) {
  const auto model = GridModel(6, 1);
  const auto cfg = HandoffConfig();
  TempDir dir{"defuse_handoff_move_test"};
  ShardedTier tier{model, cfg, 2, dir.path.string()};
  server::Client client = tier.Connect();

  for (std::uint32_t f = 0; f < model.num_functions(); ++f) {
    ASSERT_TRUE(client.Invoke(FunctionId{f}, Minute{0}).ok());
  }
  const std::size_t shard = tier.router->ShardForFunction(FunctionId{0});
  ShardHost* source = tier.router->shard_host(shard);
  const std::string before = source->platform().SaveState();
  const std::uint64_t source_invocations =
      source->platform().stats().invocations;

  ShardHost destination{model, DurableHostOptions(cfg, dir.path / "spare")};
  const auto report = HandoffShard(*tier.router, shard, destination, {});
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_TRUE(report.value().completed);
  EXPECT_TRUE(report.value().abort_reason.empty());
  EXPECT_GT(report.value().state_bytes, 0u);

  // The destination now IS the shard, byte for byte.
  EXPECT_EQ(tier.router->shard_host(shard), &destination);
  EXPECT_TRUE(tier.router->IsUp(shard));
  EXPECT_EQ(destination.platform().SaveState(), before);

  // Traffic resumes against the destination; the source (still alive,
  // out of rotation) sees none of it.
  ASSERT_TRUE(client.Invoke(FunctionId{0}, Minute{1}).ok());
  EXPECT_EQ(destination.platform().stats().invocations,
            source_invocations + 1);
  EXPECT_EQ(source->platform().stats().invocations, source_invocations);
}

TEST(Handoff, RetryAfterHandoffReplaysTheCachedReplyExactlyOnce) {
  const auto model = GridModel(6, 1);
  const auto cfg = HandoffConfig();
  TempDir dir{"defuse_handoff_dedup_test"};
  ShardedTier tier{model, cfg, 2, dir.path.string()};
  server::Client client = tier.Connect();

  // An acked op with an idempotency key, captured byte for byte.
  const std::size_t shard = tier.router->ShardForFunction(FunctionId{0});
  const server::RequestHeader header{0xFEED0001u, server::kNoDeadline};
  const std::string request = server::EncodeRequest(
      server::InvokeRequest{FunctionId{0}, Minute{0}}, header);
  const auto first = client.Forward(request);
  ASSERT_TRUE(first.ok()) << first.error().message;
  {
    const auto decoded = server::DecodeReply(first.value());
    ASSERT_TRUE(decoded.ok());
    ASSERT_TRUE(decoded.value().ok);
  }
  const std::uint64_t applied_once =
      tier.router->shard_host(shard)->platform().stats().invocations;

  ShardHost destination{model, DurableHostOptions(cfg, dir.path / "spare")};
  const auto report = HandoffShard(*tier.router, shard, destination, {});
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().completed);
  EXPECT_GT(report.value().idempotency_entries, 0u);

  // A retry of the pre-handoff op replays the SOURCE's cached reply
  // from the DESTINATION's window — byte-identical, side effect not
  // re-applied.
  const auto retry = client.Forward(request);
  ASSERT_TRUE(retry.ok()) << retry.error().message;
  EXPECT_EQ(retry.value(), first.value());
  EXPECT_EQ(destination.platform().stats().invocations, applied_once);
  EXPECT_EQ(destination.handler().duplicates_served(), 1u);
}

TEST(Handoff, TornTransferAbortsToTheUnchangedSource) {
  const auto model = GridModel(6, 1);
  const auto cfg = HandoffConfig();
  TempDir dir{"defuse_handoff_torn_test"};
  ShardedTier tier{model, cfg, 2, dir.path.string()};
  server::Client client = tier.Connect();

  for (std::uint32_t f = 0; f < model.num_functions(); ++f) {
    ASSERT_TRUE(client.Invoke(FunctionId{f}, Minute{0}).ok());
  }
  const std::size_t shard = tier.router->ShardForFunction(FunctionId{0});
  ShardHost* source = tier.router->shard_host(shard);
  const std::string before = source->platform().SaveState();

  faults::FaultProfile profile;
  profile.handoff_torn_fraction = 1.0;
  faults::FaultInjector injector{11, profile};
  HandoffOptions options;
  options.injector = &injector;

  ShardHost destination{model, DurableHostOptions(cfg, dir.path / "spare")};
  const auto report = HandoffShard(*tier.router, shard, destination, options);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_FALSE(report.value().completed);
  EXPECT_FALSE(report.value().abort_reason.empty());

  // The aborted handoff was a no-op: the source still IS the shard, its
  // state untouched, and it serves its users again.
  EXPECT_EQ(tier.router->shard_host(shard), source);
  EXPECT_TRUE(tier.router->IsUp(shard));
  EXPECT_EQ(source->platform().SaveState(), before);
  ASSERT_TRUE(client.Invoke(FunctionId{0}, Minute{1}).ok());
}

TEST(Handoff, DestinationCrashAfterHandoffRecoversTheHandedState) {
  const auto model = GridModel(6, 1);
  const auto cfg = HandoffConfig();
  TempDir dir{"defuse_handoff_durable_test"};
  ShardedTier tier{model, cfg, 2, dir.path.string()};
  server::Client client = tier.Connect();

  for (std::uint32_t f = 0; f < model.num_functions(); ++f) {
    ASSERT_TRUE(client.Invoke(FunctionId{f}, Minute{0}).ok());
  }
  const std::size_t shard = tier.router->ShardForFunction(FunctionId{0});
  const std::string handed = tier.router->shard_host(shard)->platform()
                                 .SaveState();

  ShardHost destination{model, DurableHostOptions(cfg, dir.path / "spare")};
  const auto report = HandoffShard(*tier.router, shard, destination, {});
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().completed);

  // The handoff checkpointed on the DESTINATION's directory: a crash
  // right after the swap recovers the handed-off state, not empty.
  destination.Crash();
  const auto restarted = destination.Restart();
  ASSERT_TRUE(restarted.ok()) << restarted.error().message;
  EXPECT_EQ(destination.platform().SaveState(), handed);
}

TEST(Handoff, PreconditionFailuresAreErrorsNotAborts) {
  const auto model = GridModel(4, 1);
  const auto cfg = HandoffConfig();
  TempDir dir{"defuse_handoff_precondition_test"};
  ShardedTier tier{model, cfg, 2, dir.path.string()};
  ShardHost destination{model, DurableHostOptions(cfg, dir.path / "spare")};

  const auto out_of_range = HandoffShard(*tier.router, 9, destination, {});
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.error().code, ErrorCode::kInvalidArgument);

  tier.hosts[0]->Crash();
  const auto crashed_source = HandoffShard(*tier.router, 0, destination, {});
  ASSERT_FALSE(crashed_source.ok());
  EXPECT_EQ(crashed_source.error().code, ErrorCode::kFailedPrecondition);
}

}  // namespace
}  // namespace defuse::router
