// Router<->shard forwarding fuzz: every prefix truncation and every
// single-bit flip of a shard's reply on the router leg must be
// contained to that one lane — the client always receives a
// WELL-FORMED error reply (kUnavailable), never the corruption dressed
// as an answer, and every other shard keeps serving.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/io/framed.hpp"
#include "net/transport.hpp"
#include "platform/platform.hpp"
#include "server/protocol.hpp"
#include "sharded_tier.hpp"

namespace defuse::router {
namespace {

platform::PlatformConfig FuzzConfig() {
  platform::PlatformConfig cfg;
  cfg.horizon = 2 * kMinutesPerDay;
  cfg.remine_interval = kMinutesPerDay;
  return cfg;
}

/// Wraps a live loopback channel into the shard. Requests pass through
/// untouched; the reply STREAM (the framed bytes the router would read)
/// is buffered whole, corrupted once, and served back — truncation ends
/// in a connection error, exactly like a reset mid-reply.
class CorruptingChannel final : public net::ClientChannel {
 public:
  enum class Mode : std::uint8_t {
    kNone,      ///< pass-through (used to measure the clean reply)
    kTruncate,  ///< deliver only the first `param` bytes, then reset
    kBitFlip,   ///< flip bit `param` of the reply stream
  };

  CorruptingChannel(std::unique_ptr<net::ClientChannel> inner, Mode mode,
                    std::size_t param, std::size_t* observed_reply_bytes)
      : inner_(std::move(inner)),
        mode_(mode),
        param_(param),
        observed_(observed_reply_bytes) {}

  Result<std::size_t> Write(std::string_view bytes) override {
    return inner_->Write(bytes);
  }

  Result<std::size_t> Read(std::string& out, std::size_t max) override {
    if (!loaded_) {
      // Loopback is synchronous: after the request's last Write the
      // whole reply is buffered. Drain it, then corrupt.
      std::string reply;
      while (true) {
        auto got = inner_->Read(reply, 1u << 16);
        if (!got.ok()) break;  // "server owes no bytes": fully drained
      }
      if (observed_ != nullptr) *observed_ = reply.size();
      Corrupt(reply);
      buffer_ = std::move(reply);
      loaded_ = true;
    }
    if (pos_ >= buffer_.size()) {
      return Error{ErrorCode::kIoError, "connection torn by fuzz harness"};
    }
    const std::size_t n = std::min(max, buffer_.size() - pos_);
    out.append(buffer_, pos_, n);
    pos_ += n;
    return n;
  }

  void Close() override { inner_->Close(); }

 private:
  void Corrupt(std::string& reply) {
    switch (mode_) {
      case Mode::kNone:
        return;
      case Mode::kTruncate:
        reply.resize(std::min(param_, reply.size()));
        return;
      case Mode::kBitFlip:
        if (param_ / 8 < reply.size()) {
          reply[param_ / 8] =
              static_cast<char>(static_cast<unsigned char>(reply[param_ / 8]) ^
                                (1u << (param_ % 8)));
        }
        return;
    }
  }

  std::unique_ptr<net::ClientChannel> inner_;
  Mode mode_;
  std::size_t param_;
  std::size_t* observed_;
  std::string buffer_;
  std::size_t pos_ = 0;
  bool loaded_ = false;
};

/// A channel whose reply is a VALID frame around a garbage payload — a
/// byzantine shard rather than a noisy wire. The router's framing CRC
/// passes; only DecodeReply can catch it.
class ByzantineChannel final : public net::ClientChannel {
 public:
  explicit ByzantineChannel(std::unique_ptr<net::ClientChannel> inner)
      : inner_(std::move(inner)) {}

  Result<std::size_t> Write(std::string_view bytes) override {
    return inner_->Write(bytes);
  }

  Result<std::size_t> Read(std::string& out, std::size_t max) override {
    if (!loaded_) {
      // Drain (and discard) the real reply, then re-frame garbage. The
      // frame is built by round-tripping through the REAL reply's
      // header shape: "f <len> <crc32c-hex>\n<payload>\n".
      std::string discard;
      while (true) {
        auto got = inner_->Read(discard, 1u << 16);
        if (!got.ok()) break;
      }
      const std::string payload = "BOGUS-not-a-protocol-reply";
      buffer_ = FrameFor(payload);
      loaded_ = true;
    }
    if (pos_ >= buffer_.size()) {
      return Error{ErrorCode::kIoError, "byzantine channel exhausted"};
    }
    const std::size_t n = std::min(max, buffer_.size() - pos_);
    out.append(buffer_, pos_, n);
    pos_ += n;
    return n;
  }

  void Close() override { inner_->Close(); }

  /// Built with the transport's own framing, so the CRC verifies.
  static std::string FrameFor(const std::string& payload) {
    return io::EncodeFrame(payload);
  }

 private:
  std::unique_ptr<net::ClientChannel> inner_;
  std::string buffer_;
  std::size_t pos_ = 0;
  bool loaded_ = false;
};

struct FuzzTier {
  trace::WorkloadModel model = GridModel(8, 1);
  ShardedTier tier{model, FuzzConfig(), 2};
  std::size_t victim = 0;
  std::size_t other_shard = 0;
  FunctionId victim_fn{0};
  FunctionId other_fn{0};

  FuzzTier() {
    victim = tier.router->ShardForFunction(FunctionId{0});
    victim_fn = FunctionId{0};
    for (std::uint32_t f = 1; f < model.num_functions(); ++f) {
      if (tier.router->ShardForFunction(FunctionId{f}) != victim) {
        other_fn = FunctionId{f};
        other_shard = tier.router->ShardForFunction(FunctionId{f});
        break;
      }
    }
    EXPECT_NE(tier.router->ShardForFunction(other_fn), victim)
        << "GridModel(8,1) landed every user on one shard?";
  }

  /// Routes one invoke for the victim's user through a corrupting lane
  /// and returns the reply the CLIENT sees.
  std::string CorruptedRoundTrip(CorruptingChannel::Mode mode,
                                 std::size_t param, Minute t,
                                 std::size_t* observed = nullptr) {
    tier.router->OverrideConnectorForTest(
        victim,
        [this, mode, param, observed]()
            -> Result<std::unique_ptr<net::ClientChannel>> {
          auto inner = tier.hosts[victim]->Connect();
          if (!inner.ok()) return inner.error();
          return std::unique_ptr<net::ClientChannel>{
              std::make_unique<CorruptingChannel>(std::move(inner).value(),
                                                  mode, param, observed)};
        });
    const std::string request = server::EncodeRequest(
        server::InvokeRequest{victim_fn, t}, server::RequestHeader{});
    std::string reply = tier.router->HandleRequest(request);
    // Heal the lane for the next case: drop the override, re-admit.
    tier.router->OverrideConnectorForTest(victim, ShardRouter::Connector{});
    tier.router->Reattach(victim);
    return reply;
  }
};

void ExpectContainedUnavailable(const std::string& reply,
                                const std::string& what) {
  const auto decoded = server::DecodeReply(reply);
  ASSERT_TRUE(decoded.ok()) << what << ": client-visible reply did not parse";
  EXPECT_FALSE(decoded.value().ok) << what << ": corruption reached the "
                                       "client as a well-formed OK reply";
  EXPECT_EQ(decoded.value().error.code, ErrorCode::kUnavailable) << what;
}

TEST(RouterForwardingFuzz, EveryTruncationAndBitFlipIsContained) {
  FuzzTier f;

  // Measure the clean reply stream once (pass-through corruptor).
  std::size_t reply_bytes = 0;
  Minute t = 0;
  {
    const std::string clean =
        f.CorruptedRoundTrip(CorruptingChannel::Mode::kNone, 0, t++,
                             &reply_bytes);
    const auto decoded = server::DecodeReply(clean);
    ASSERT_TRUE(decoded.ok());
    ASSERT_TRUE(decoded.value().ok);
    ASSERT_GT(reply_bytes, 0u);
  }

  // Truncation at every prefix of the framed reply.
  for (std::size_t cut = 0; cut < reply_bytes; ++cut) {
    const std::string reply =
        f.CorruptedRoundTrip(CorruptingChannel::Mode::kTruncate, cut, t++);
    ExpectContainedUnavailable(reply,
                               "truncate at " + std::to_string(cut));
    EXPECT_TRUE(f.tier.router->IsUp(f.other_shard));
  }

  // Every single-bit flip of the framed reply. CRC32C catches payload
  // flips; header flips break the frame grammar — either way the lane
  // dies and the client sees a clean kUnavailable.
  for (std::size_t bit = 0; bit < reply_bytes * 8; ++bit) {
    const std::string reply =
        f.CorruptedRoundTrip(CorruptingChannel::Mode::kBitFlip, bit, t++);
    ExpectContainedUnavailable(reply, "bit flip " + std::to_string(bit));
  }
  EXPECT_GT(f.tier.router->books().shard_transport_errors, 0u);

  // Containment: after all that abuse, both shards serve normally.
  server::Client client = f.tier.Connect();
  ASSERT_TRUE(client.Invoke(f.victim_fn, t).ok());
  ASSERT_TRUE(client.Invoke(f.other_fn, t).ok());
}

TEST(RouterForwardingFuzz, ByzantineWellFramedGarbageCondemnsTheLane) {
  FuzzTier f;
  f.tier.router->OverrideConnectorForTest(
      f.victim,
      [&f]() -> Result<std::unique_ptr<net::ClientChannel>> {
        auto inner = f.tier.hosts[f.victim]->Connect();
        if (!inner.ok()) return inner.error();
        return std::unique_ptr<net::ClientChannel>{
            std::make_unique<ByzantineChannel>(std::move(inner).value())};
      });

  // The frame CRC passes, so only the router's reply validation stands
  // between the garbage and the client.
  const std::string request = server::EncodeRequest(
      server::InvokeRequest{f.victim_fn, Minute{0}}, server::RequestHeader{});
  const std::string reply = f.tier.router->HandleRequest(request);
  ExpectContainedUnavailable(reply, "byzantine framed garbage");
  EXPECT_EQ(f.tier.router->books().corrupt_shard_replies, 1u);
  EXPECT_FALSE(f.tier.router->IsUp(f.victim));
  EXPECT_TRUE(f.tier.router->IsUp(f.other_shard));

  // Heal; normal service resumes.
  f.tier.router->OverrideConnectorForTest(f.victim, ShardRouter::Connector{});
  f.tier.router->Reattach(f.victim);
  server::Client client = f.tier.Connect();
  ASSERT_TRUE(client.Invoke(f.victim_fn, Minute{1}).ok());
}

TEST(RouterForwardingFuzz, CorruptionNeverTouchesTheOtherShard) {
  FuzzTier f;
  server::Client client = f.tier.Connect();
  Minute t = 0;

  for (std::size_t cut = 0; cut < 16; ++cut) {
    const std::string reply =
        f.CorruptedRoundTrip(CorruptingChannel::Mode::kTruncate, cut, t);
    ExpectContainedUnavailable(reply, "truncate at " + std::to_string(cut));
    // Interleaved traffic for the OTHER shard's user sails through the
    // same router instance.
    ASSERT_TRUE(client.Invoke(f.other_fn, t).ok()) << "cut " << cut;
    ++t;
  }
  EXPECT_EQ(f.tier.hosts[f.other_shard]->platform().stats().invocations, 16u);
}

}  // namespace
}  // namespace defuse::router
