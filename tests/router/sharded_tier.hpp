// Shared fixture for the multi-shard router suite: N ShardHosts behind
// one ShardRouter, terminated by a loopback listener exactly as a
// production socket daemon terminates the v2 protocol. Tests reach the
// tier three ways, mirroring production surfaces: a server::Client over
// loopback (the normal path), ShardRouter::HandleRequest directly (the
// fuzz harness), and the per-shard Platform accessors (oracles).
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "faults/injector.hpp"
#include "graph/serialization.hpp"
#include "net/loopback.hpp"
#include "net/server_core.hpp"
#include "platform/platform.hpp"
#include "router/shard_host.hpp"
#include "router/shard_router.hpp"
#include "server/client.hpp"
#include "trace/model.hpp"

namespace defuse::router {

/// A handmade model with `num_users` users of one app and
/// `fns_per_user` functions each: function ids are dense, and function
/// f belongs to user f / fns_per_user — owner arithmetic stays obvious
/// in assertions.
[[nodiscard]] inline trace::WorkloadModel GridModel(std::size_t num_users,
                                                    std::size_t fns_per_user) {
  trace::WorkloadModel model;
  for (std::size_t u = 0; u < num_users; ++u) {
    const UserId user = model.AddUser("user" + std::to_string(u));
    const AppId app = model.AddApp(user, "app" + std::to_string(u));
    for (std::size_t f = 0; f < fns_per_user; ++f) {
      (void)model.AddFunction(app, "fn" + std::to_string(u) + "_" +
                                       std::to_string(f));
    }
  }
  return model;
}

/// The platform's current dependency sets as the plain (unchecksummed)
/// CSV body — the format MergeDependencySetCsvs consumes and produces.
[[nodiscard]] inline std::string SetsCsvPlain(
    const platform::Platform& p, const trace::WorkloadModel& model) {
  std::vector<graph::DependencySet> sets;
  for (std::size_t unit = 0; unit < p.units().num_units(); ++unit) {
    graph::DependencySet set;
    set.id = static_cast<std::uint32_t>(unit);
    const auto fns =
        p.units().functions_of(UnitId{static_cast<std::uint32_t>(unit)});
    set.functions.assign(fns.begin(), fns.end());
    sets.push_back(std::move(set));
  }
  return graph::WriteDependencySetsCsv(sets, model);
}

/// N platform shards behind one router, loopback-terminated.
struct ShardedTier {
  std::vector<std::unique_ptr<ShardHost>> hosts;
  std::optional<ShardRouter> router;
  std::optional<net::ServerCore> core;
  std::optional<net::LoopbackServer> loopback;

  /// `state_root` empty = in-memory shards; otherwise shard s journals
  /// under `<state_root>/shard-<s>`. `router_injector` feeds the
  /// router's kShardCrash site only (shard-internal sites stay off).
  ShardedTier(const trace::WorkloadModel& model,
              const platform::PlatformConfig& cfg, std::size_t num_shards,
              const std::string& state_root = std::string{},
              faults::FaultInjector* router_injector = nullptr) {
    for (std::size_t s = 0; s < num_shards; ++s) {
      ShardHost::Options options;
      options.platform = cfg;
      if (!state_root.empty()) {
        options.state_dir = state_root + "/shard-" + std::to_string(s);
      }
      hosts.push_back(std::make_unique<ShardHost>(model, options));
      auto started = hosts.back()->Start();
      EXPECT_TRUE(started.ok())
          << "shard " << s << ": " << started.error().message;
    }
    std::vector<ShardHost*> borrowed;
    borrowed.reserve(hosts.size());
    for (const auto& host : hosts) borrowed.push_back(host.get());
    ShardRouterOptions router_options;
    router_options.injector = router_injector;
    router.emplace(model, std::move(borrowed), router_options);
    core.emplace(*router);
    loopback.emplace(*core);
  }

  [[nodiscard]] server::Client Connect() {
    auto channel = loopback->Connect();
    EXPECT_TRUE(channel.ok()) << channel.error().message;
    return server::Client{std::move(channel).value()};
  }
};

}  // namespace defuse::router
