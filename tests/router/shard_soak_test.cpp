// Shard-kill chaos soak for the multi-shard serving tier (the
// acceptance gate of the router PR).
//
// Ten seeds of generated traffic are driven through a 3-shard durable
// tier while the router's kShardCrash site kills shards at random under
// live requests. A ShardSupervisor runs from the retrying client's
// backoff hook — exactly where a daemon's poll loop would run it — so
// every injected death is detected, restarted through the recovery
// ladder, and re-admitted while the workload keeps flowing.
//
// Invariants held across every seed:
//   * exactly-once — a fault-free single Platform fed only the acked
//     ops stays bit-identical in stats and byte-identical in state to
//     the merged tier view, despite retries over injected crashes;
//   * restart byte-identity — every supervised restart reproduces the
//     crashed shard's final SaveState from its journal, byte for byte;
//   * clean failure — the only error the retrying client ever observes
//     is kUnavailable, and the retry budget is never exhausted;
//   * exactly-once across handoff — mid-soak, a torn transfer aborts to
//     the unchanged source and a completed handoff carries the
//     idempotency window: a pre-handoff ack replays byte-identically
//     from the destination without re-applying;
//   * determinism — a whole soak is a pure function of its seed.
//
// When DEFUSE_SHARD_SOAK_JSON names a path, the ten-seed soak writes
// its aggregate crash/restart/retry counters there
// (tools/tier1_soak.sh turns that into BENCH_soak.json).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "faults/injector.hpp"
#include "platform/platform.hpp"
#include "router/handoff.hpp"
#include "router/supervisor.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "sharded_tier.hpp"
#include "trace/generator.hpp"

namespace defuse::router {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kShards = 3;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& name)
      : path(fs::temp_directory_path() / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

platform::PlatformConfig SoakConfig(MinuteDelta horizon) {
  platform::PlatformConfig cfg;
  cfg.horizon = horizon;
  cfg.remine_interval = kMinutesPerDay;
  return cfg;
}

/// Two days of Tiny traffic: crosses two re-mine boundaries per shard
/// while keeping ten seeds affordable.
trace::GeneratorConfig Gen(std::uint64_t seed) {
  auto gen = trace::GeneratorConfig::Tiny();
  gen.seed = seed;
  gen.horizon_minutes = 2 * kMinutesPerDay;
  return gen;
}

/// Crash roughly one forward in 250: a Tiny seed (thousands of ops)
/// kills each shard several times without drowning the soak in
/// recovery churn.
faults::FaultProfile KillProfile() {
  faults::FaultProfile profile;
  profile.shard_crash_fraction = 0.004;
  return profile;
}

RetryPolicy SoakPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 16;
  policy.initial_backoff = 0;
  return policy;
}

/// Unit ids are shard-local dense coordinates (a shard numbers the
/// functions it does not own as singletons); the canonical identity of
/// a unit — stable across tier shapes — is its smallest member.
std::uint32_t CanonicalUnit(const platform::Platform& p, UnitId unit) {
  return p.units().functions_of(unit).front().value();
}

/// One seed's outcome, compared across runs for determinism.
struct ShardSoakTally {
  std::uint64_t ops = 0;       ///< logical operations issued
  std::uint64_t acked = 0;     ///< ops the client saw succeed
  std::uint64_t attempts = 0;  ///< tries including retries
  std::uint64_t unavailable_retried = 0;
  std::uint64_t crashes_injected = 0;
  std::uint64_t downs_detected = 0;
  std::uint64_t restarts = 0;
  std::uint64_t restart_identity_checks = 0;  ///< byte-compared restarts
  std::uint64_t handoffs_torn = 0;
  std::uint64_t handoffs_completed = 0;
  std::uint64_t replays_verified = 0;  ///< byte-identical window replays
  platform::PlatformStats stats;
  std::string final_state;

  friend bool operator==(const ShardSoakTally&,
                         const ShardSoakTally&) = default;

  ShardSoakTally& operator+=(const ShardSoakTally& other) {
    ops += other.ops;
    acked += other.acked;
    attempts += other.attempts;
    unavailable_retried += other.unavailable_retried;
    crashes_injected += other.crashes_injected;
    downs_detected += other.downs_detected;
    restarts += other.restarts;
    restart_identity_checks += other.restart_identity_checks;
    handoffs_torn += other.handoffs_torn;
    handoffs_completed += other.handoffs_completed;
    replays_verified += other.replays_verified;
    return *this;
  }
};

/// One chaotic soak; deterministic in `seed`. The reference platform is
/// fed exactly the acked ops, so exactly-once shows up as bit-identical
/// stats and byte-identical state at the end.
ShardSoakTally RunShardSoak(std::uint64_t seed) {
  const auto gen = Gen(seed);
  const trace::SyntheticWorkload workload = trace::GenerateWorkload(gen);
  const auto cfg = SoakConfig(gen.horizon_minutes);
  TempDir dir{"defuse_shard_soak_" + std::to_string(seed)};

  // The mid-soak handoff destination. Declared before the tier so it
  // outlives the router that ends up pointing at it.
  ShardHost::Options spare_options;
  spare_options.platform = cfg;
  spare_options.state_dir = (dir.path / "spare").string();
  ShardHost spare{workload.model, spare_options};

  faults::FaultInjector killer{seed, KillProfile()};
  ShardedTier tier{workload.model, cfg, kShards, dir.path.string(), &killer};
  ShardSupervisor supervisor{*tier.router, {}};
  platform::Platform ref{workload.model, cfg};

  ShardSoakTally tally;

  // Supervised recovery + the restart byte-identity oracle: whenever a
  // slot's incarnation moved, the journal must have reproduced the
  // crashed stack's final state byte for byte.
  std::vector<std::uint64_t> incarnations(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    incarnations[s] = tier.router->shard_host(s)->incarnation();
  }
  const auto heal = [&] {
    supervisor.Tick();
    for (std::size_t s = 0; s < kShards; ++s) {
      ShardHost* host = tier.router->shard_host(s);
      if (host->incarnation() <= incarnations[s]) continue;
      incarnations[s] = host->incarnation();
      if (host->pre_crash_state().empty()) continue;
      EXPECT_EQ(host->platform().SaveState(), host->pre_crash_state())
          << "seed " << seed << " shard " << s
          << ": restart was not byte-identical";
      ++tally.restart_identity_checks;
    }
  };

  server::RetryingClient client{[&tier] { return tier.loopback->Connect(); },
                                SoakPolicy(),
                                [&heal](MinuteDelta) { heal(); }};
  // Raw lane for the replay probe: the exact bytes of an acked request
  // must be re-sendable verbatim.
  server::Client raw = tier.Connect();

  // ---- mid-soak: exactly-once across a live handoff ----
  // A void lambda so gtest's fatal asserts can bail out of the block.
  const auto mid_soak_probe = [&](Minute t) {
      // One acked op with an explicit idempotency key, sent raw so the
      // request bytes can be replayed verbatim later.
      const server::RequestHeader header{0xFEED0000u + seed,
                                         server::kNoDeadline};
      const std::string probe = server::EncodeRequest(
          server::InvokeRequest{FunctionId{0}, t}, header);
      std::string first_reply;
      for (int attempt = 0; attempt < 64; ++attempt) {
        auto round = raw.Forward(probe);
        ASSERT_TRUE(round.ok()) << "seed " << seed << ": "
                                << round.error().message;
        const auto decoded = server::DecodeReply(round.value());
        ASSERT_TRUE(decoded.ok());
        if (decoded.value().ok) {
          first_reply = std::move(round).value();
          break;
        }
        // Crash drawn before the forward: the op never reached the
        // shard. Heal and retry the SAME bytes.
        ASSERT_EQ(decoded.value().error.code, ErrorCode::kUnavailable);
        heal();
      }
      ASSERT_FALSE(first_reply.empty()) << "seed " << seed;
      ++tally.ops;
      ++tally.acked;
      const auto want = ref.Invoke(FunctionId{0}, t);
      {
        const auto body = server::DecodeReply(first_reply);
        const auto reply =
            server::DecodeInvokeReplyBody(body.value().body);
        ASSERT_TRUE(reply.ok());
        EXPECT_EQ(reply.value().cold, want.cold) << "seed " << seed;
        const std::size_t owner =
            tier.router->ShardForFunction(FunctionId{0});
        EXPECT_EQ(CanonicalUnit(tier.router->shard_host(owner)->platform(),
                                reply.value().unit),
                  CanonicalUnit(ref, want.unit))
            << "seed " << seed;
      }

      heal();  // the handoff needs a live source
      const std::size_t victim = tier.router->ShardForFunction(FunctionId{0});
      ShardHost* source = tier.router->shard_host(victim);
      const std::string before = source->platform().SaveState();

      // A torn transfer aborts to the unchanged source.
      faults::FaultProfile torn_profile;
      torn_profile.handoff_torn_fraction = 1.0;
      faults::FaultInjector torn{seed, torn_profile};
      HandoffOptions torn_options;
      torn_options.injector = &torn;
      const auto aborted =
          HandoffShard(*tier.router, victim, spare, torn_options);
      ASSERT_TRUE(aborted.ok()) << aborted.error().message;
      EXPECT_FALSE(aborted.value().completed) << "seed " << seed;
      EXPECT_EQ(tier.router->shard_host(victim), source);
      EXPECT_EQ(source->platform().SaveState(), before) << "seed " << seed;
      ++tally.handoffs_torn;

      // The clean handoff carries the state AND the idempotency window.
      const auto moved = HandoffShard(*tier.router, victim, spare, {});
      ASSERT_TRUE(moved.ok()) << moved.error().message;
      ASSERT_TRUE(moved.value().completed) << moved.value().abort_reason;
      EXPECT_GT(moved.value().idempotency_entries, 0u) << "seed " << seed;
      EXPECT_EQ(tier.router->shard_host(victim), &spare);
      incarnations[victim] = spare.incarnation();
      ++tally.handoffs_completed;

      // The pre-handoff ack replays byte-identically from the
      // DESTINATION's imported window, side effect not re-applied. One
      // attempt only: a kUnavailable here means an injected crash fired
      // before the forward (op not applied, state intact) — but the
      // restarted shard's window is empty by the kill -9 contract, so
      // retrying the replay would legitimately re-apply. Skip instead;
      // the aggregate gate below proves replays verified across seeds.
      const std::uint64_t applied =
          spare.platform().stats().invocations;
      auto replay = raw.Forward(probe);
      ASSERT_TRUE(replay.ok()) << replay.error().message;
      const auto replay_decoded = server::DecodeReply(replay.value());
      ASSERT_TRUE(replay_decoded.ok());
      if (replay_decoded.value().ok) {
        EXPECT_EQ(replay.value(), first_reply)
            << "seed " << seed << ": replay was not byte-identical";
        EXPECT_EQ(spare.platform().stats().invocations, applied)
            << "seed " << seed << ": replay re-applied the op";
        EXPECT_GE(spare.handler().duplicates_served(), 1u);
        ++tally.replays_verified;
      } else {
        EXPECT_EQ(replay_decoded.value().error.code, ErrorCode::kUnavailable);
        heal();
      }
  };

  const auto index = workload.trace.BuildMinuteIndex(workload.trace.horizon());
  const Minute end = workload.trace.horizon().end;
  const Minute half = end / 2;

  for (Minute t = 0; t < end; ++t) {
    heal();  // recovery runs ahead of the heartbeat, like a poll loop
    const auto adv = client.AdvanceTo(t);
    EXPECT_TRUE(adv.ok()) << "seed " << seed << " t " << t << ": "
                          << adv.error().message;
    ref.AdvanceTo(t);

    if (t == half) mid_soak_probe(t);

    for (const auto& [fn, count] : index.at(t)) {
      (void)count;
      ++tally.ops;
      const auto got = client.Invoke(fn, t);
      EXPECT_TRUE(got.ok()) << "seed " << seed << " t " << t << ": "
                            << got.error().message;
      if (!got.ok()) continue;
      const auto want = ref.Invoke(fn, t);
      EXPECT_EQ(got.value().cold, want.cold) << "seed " << seed << " t " << t;
      ShardHost* owner =
          tier.router->shard_host(tier.router->ShardForFunction(fn));
      EXPECT_EQ(CanonicalUnit(owner->platform(), got.value().unit),
                CanonicalUnit(ref, want.unit))
          << "seed " << seed << " t " << t;
      ++tally.acked;
    }
  }

  // Quiesce: every shard recovered and re-admitted before the merged
  // reads (a down shard fails kStats/kSnapshot by design).
  heal();

  const auto stats = client.Stats();
  EXPECT_TRUE(stats.ok()) << stats.error().message;
  if (stats.ok()) tally.stats = stats.value().stats;
  EXPECT_EQ(tally.stats, ref.stats()) << "seed " << seed;
  EXPECT_EQ(tally.stats.invocations, tally.acked) << "seed " << seed;

  const auto snapshot = client.Snapshot();
  EXPECT_TRUE(snapshot.ok()) << snapshot.error().message;
  if (snapshot.ok()) tally.final_state = snapshot.value().state;
  EXPECT_EQ(tally.final_state, ref.SaveState()) << "seed " << seed;

  // Clean failure: the retry budget held, and the only error the client
  // ever saw was kUnavailable (no sheds, no deadline noise — those
  // sites are off in this profile).
  const auto books = client.Books();
  EXPECT_EQ(books.gave_up, 0u) << "seed " << seed;
  EXPECT_EQ(books.sheds_observed, 0u) << "seed " << seed;
  tally.attempts = books.attempts;
  tally.unavailable_retried = books.unavailable_observed;
  tally.crashes_injected = tier.router->books().crashes_injected;
  tally.downs_detected = supervisor.books().downs_detected;
  tally.restarts = supervisor.books().restarts;
  EXPECT_EQ(supervisor.books().restart_failures, 0u) << "seed " << seed;
  return tally;
}

void WriteShardSoakJson(const char* path, const ShardSoakTally& total,
                        std::uint64_t seeds) {
  std::ofstream out{path};
  out << "{\n"
      << "  \"seeds\": " << seeds << ",\n"
      << "  \"shards\": " << kShards << ",\n"
      << "  \"ops\": " << total.ops << ",\n"
      << "  \"acked\": " << total.acked << ",\n"
      << "  \"attempts\": " << total.attempts << ",\n"
      << "  \"unavailable_retried\": " << total.unavailable_retried << ",\n"
      << "  \"crashes_injected\": " << total.crashes_injected << ",\n"
      << "  \"downs_detected\": " << total.downs_detected << ",\n"
      << "  \"restarts\": " << total.restarts << ",\n"
      << "  \"restart_identity_checks\": " << total.restart_identity_checks
      << ",\n"
      << "  \"handoffs_torn\": " << total.handoffs_torn << ",\n"
      << "  \"handoffs_completed\": " << total.handoffs_completed << ",\n"
      << "  \"window_replays_verified\": " << total.replays_verified << "\n"
      << "}\n";
}

// ---- the gate --------------------------------------------------------------

TEST(ShardSoak, ShardKillChaosHoldsInvariantsForSeedsZeroThroughNine) {
  ShardSoakTally total;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    total += RunShardSoak(seed);
  }

  // The soak must actually have exercised the machinery: shards died
  // under live requests, the supervisor detected and restarted them,
  // restarts were byte-compared, retries flowed, and the handoff window
  // replay was verified on at least some seeds.
  EXPECT_GT(total.acked, 0u);
  EXPECT_GT(total.crashes_injected, 0u);
  EXPECT_GT(total.downs_detected, 0u);
  EXPECT_GT(total.restarts, 0u);
  EXPECT_GT(total.restart_identity_checks, 0u);
  EXPECT_GT(total.unavailable_retried, 0u);
  EXPECT_GT(total.attempts, total.ops);
  EXPECT_EQ(total.handoffs_torn, 10u);
  EXPECT_EQ(total.handoffs_completed, 10u);
  EXPECT_GT(total.replays_verified, 0u);

  if (const char* path = std::getenv("DEFUSE_SHARD_SOAK_JSON")) {
    WriteShardSoakJson(path, total, 10);
  }
}

TEST(ShardSoak, ShardSoakIsBitIdenticalForTheSameSeed) {
  const ShardSoakTally first = RunShardSoak(0);
  const ShardSoakTally second = RunShardSoak(0);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace defuse::router
