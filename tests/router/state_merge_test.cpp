// Cross-shard merge: counter-kind rules for stats, byte-identity for
// state and dependency-set CSVs, and the ownership validation that
// turns a violated user partition into kDataLoss instead of a guess.
#include "router/state_merge.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "platform/platform.hpp"
#include "sharded_tier.hpp"
#include "trace/model.hpp"

namespace defuse::router {
namespace {

platform::PlatformConfig SmallConfig() {
  platform::PlatformConfig cfg;
  cfg.horizon = 2 * kMinutesPerDay;
  cfg.remine_interval = kMinutesPerDay;
  return cfg;
}

TEST(MergeShardStats, SumsTrafficCountersAndMaxesCadenceCounters) {
  platform::PlatformStats a;
  a.invocations = 10;
  a.cold_invocations = 4;
  a.prewarm_spawn_failures = 2;
  a.prewarm_spawns_abandoned = 1;
  a.remines = 3;
  a.degraded_remines = 1;
  a.stale_graph_minutes = 40;
  a.catchup_remines_skipped = 2;
  platform::PlatformStats b;
  b.invocations = 7;
  b.cold_invocations = 5;
  b.prewarm_spawn_failures = 1;
  b.prewarm_spawns_abandoned = 0;
  b.remines = 3;
  b.degraded_remines = 2;
  b.stale_graph_minutes = 10;
  b.catchup_remines_skipped = 0;

  const auto merged = MergeShardStats({a, b});
  EXPECT_EQ(merged.invocations, 17u);
  EXPECT_EQ(merged.cold_invocations, 9u);
  EXPECT_EQ(merged.prewarm_spawn_failures, 3u);
  EXPECT_EQ(merged.prewarm_spawns_abandoned, 1u);
  EXPECT_EQ(merged.remines, 3u);
  EXPECT_EQ(merged.degraded_remines, 2u);
  EXPECT_EQ(merged.stale_graph_minutes, 40);
  EXPECT_EQ(merged.catchup_remines_skipped, 2u);
}

TEST(MergeShardStats, EmptyInputIsAZeroedStats) {
  EXPECT_EQ(MergeShardStats({}), platform::PlatformStats{});
}

TEST(MergeShardStates, SingleShardMergeIsTheIdentity) {
  const auto model = GridModel(3, 2);
  platform::Platform p{model, SmallConfig()};
  for (std::uint32_t f = 0; f < model.num_functions(); ++f) {
    (void)p.Invoke(FunctionId{f}, Minute{5});
  }
  const std::string state = p.SaveState();
  const std::vector<std::size_t> owners(model.num_functions(), 0);

  const auto merged = MergeShardStates(model, {state}, owners);
  ASSERT_TRUE(merged.ok()) << merged.error().message;
  EXPECT_EQ(merged.value(), state);
}

TEST(MergeShardStates, TwoShardsMergeToTheSingleDaemonBytes) {
  const auto model = GridModel(4, 2);
  const auto cfg = SmallConfig();
  // Owner table: users 0-1 on shard 0, users 2-3 on shard 1.
  std::vector<std::size_t> owners(model.num_functions());
  for (std::uint32_t f = 0; f < model.num_functions(); ++f) {
    owners[f] = model.function(FunctionId{f}).user.value() < 2 ? 0 : 1;
  }

  platform::Platform whole{model, cfg};
  platform::Platform shard0{model, cfg};
  platform::Platform shard1{model, cfg};
  for (Minute t = 0; t < kMinutesPerDay + 10; t += 5) {
    whole.AdvanceTo(t);
    shard0.AdvanceTo(t);
    shard1.AdvanceTo(t);
    for (std::uint32_t f = 0; f < model.num_functions(); ++f) {
      if (t % 15 != 0 && f % 2 == 1) continue;  // some traffic shape
      (void)whole.Invoke(FunctionId{f}, t);
      platform::Platform& owner = owners[f] == 0 ? shard0 : shard1;
      (void)owner.Invoke(FunctionId{f}, t);
    }
  }

  const auto merged =
      MergeShardStates(model, {shard0.SaveState(), shard1.SaveState()}, owners);
  ASSERT_TRUE(merged.ok()) << merged.error().message;
  EXPECT_EQ(merged.value(), whole.SaveState());

  const auto stats = MergeShardStats({shard0.stats(), shard1.stats()});
  EXPECT_EQ(stats, whole.stats());

  const auto csv = MergeDependencySetCsvs(
      model, {SetsCsvPlain(shard0, model), SetsCsvPlain(shard1, model)},
      owners);
  ASSERT_TRUE(csv.ok()) << csv.error().message;
  EXPECT_EQ(csv.value(), SetsCsvPlain(whole, model));
}

TEST(MergeShardStates, TrafficOnANonOwnerShardFailsDataLoss) {
  const auto model = GridModel(2, 1);
  const auto cfg = SmallConfig();
  platform::Platform shard0{model, cfg};
  platform::Platform shard1{model, cfg};
  // Function 0 is owned by shard 0 per the table, but shard 1 saw its
  // traffic: the user partition was violated and a merge that guessed
  // would silently lose or double-count history.
  (void)shard0.Invoke(FunctionId{0}, Minute{1});
  (void)shard1.Invoke(FunctionId{0}, Minute{1});
  const std::vector<std::size_t> owners{0, 1};

  const auto merged =
      MergeShardStates(model, {shard0.SaveState(), shard1.SaveState()}, owners);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.error().code, ErrorCode::kDataLoss);
}

TEST(MergeShardStates, ShardCountMismatchedOwnerTableIsRejected) {
  const auto model = GridModel(2, 1);
  platform::Platform p{model, SmallConfig()};
  // Owner table points at shard 3; only one state blob was provided.
  const std::vector<std::size_t> owners{3, 3};
  const auto merged = MergeShardStates(model, {p.SaveState()}, owners);
  EXPECT_FALSE(merged.ok());
}

}  // namespace
}  // namespace defuse::router
