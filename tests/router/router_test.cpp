// ShardRouter: routing by user, lockstep broadcasts, merged reads,
// aggregated health, and — the point of the tier — failure isolation:
// one dead shard inconveniences exactly its own users.
#include "router/shard_router.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "faults/injector.hpp"
#include "platform/platform.hpp"
#include "server/protocol.hpp"
#include "sharded_tier.hpp"

namespace defuse::router {
namespace {

platform::PlatformConfig RouterConfig() {
  platform::PlatformConfig cfg;
  cfg.horizon = 2 * kMinutesPerDay;
  cfg.remine_interval = kMinutesPerDay;
  return cfg;
}

TEST(ShardRouter, InvokeLandsOnExactlyTheOwningShard) {
  const auto model = GridModel(8, 2);
  ShardedTier tier{model, RouterConfig(), 3};
  server::Client client = tier.Connect();

  std::vector<std::uint64_t> expected(3, 0);
  for (std::uint32_t f = 0; f < model.num_functions(); ++f) {
    ++expected[tier.router->ShardForFunction(FunctionId{f})];
    ASSERT_TRUE(client.Invoke(FunctionId{f}, Minute{0}).ok());
  }
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(tier.hosts[s]->platform().stats().invocations, expected[s])
        << "shard " << s;
  }
  EXPECT_EQ(tier.router->books().forwarded, model.num_functions());
  // Routing agrees with the ring at every layer.
  for (std::uint32_t f = 0; f < model.num_functions(); ++f) {
    EXPECT_EQ(tier.router->ShardForFunction(FunctionId{f}),
              tier.router->ShardForUser(model.function(FunctionId{f}).user));
  }
}

TEST(ShardRouter, FunctionOwnersIsTheRingProjectedOverTheModel) {
  const auto model = GridModel(5, 3);
  ShardedTier tier{model, RouterConfig(), 4};
  const auto owners = tier.router->FunctionOwners();
  ASSERT_EQ(owners.size(), model.num_functions());
  for (std::uint32_t f = 0; f < model.num_functions(); ++f) {
    EXPECT_EQ(owners[f], tier.router->ShardForFunction(FunctionId{f}));
  }
}

TEST(ShardRouter, BroadcastAdvancesEveryShardClockInLockstep) {
  const auto model = GridModel(4, 1);
  ShardedTier tier{model, RouterConfig(), 3};
  server::Client client = tier.Connect();

  ASSERT_TRUE(client.AdvanceTo(Minute{42}).ok());
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(tier.hosts[s]->platform().last_invocation_minute(), 42)
        << "shard " << s;
  }
  EXPECT_EQ(tier.router->books().broadcasts, 1u);

  // A shard-side rejection (clock regression) is forwarded verbatim.
  auto back = client.AdvanceTo(Minute{7});
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.error().code, ErrorCode::kInvalidArgument);
}

TEST(ShardRouter, RemineBroadcastCompletesOnEveryShard) {
  const auto model = GridModel(4, 1);
  ShardedTier tier{model, RouterConfig(), 2};
  server::Client client = tier.Connect();
  for (std::uint32_t f = 0; f < model.num_functions(); ++f) {
    ASSERT_TRUE(client.Invoke(FunctionId{f}, Minute{0}).ok());
  }

  auto remine = client.RemineNow(Minute{10});
  ASSERT_TRUE(remine.ok()) << remine.error().message;
  EXPECT_EQ(remine.value().mode, server::RemineMode::kCompleted);
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(tier.hosts[s]->platform().stats().remines, 1u) << "shard " << s;
  }
}

TEST(ShardRouter, StatsAndSnapshotMergeToTheSingleDaemonView) {
  const auto model = GridModel(6, 2);
  const auto cfg = RouterConfig();
  ShardedTier tier{model, cfg, 3};
  server::Client client = tier.Connect();
  platform::Platform direct{model, cfg};

  for (Minute t = 0; t < 200; t += 10) {
    ASSERT_TRUE(client.AdvanceTo(t).ok());
    direct.AdvanceTo(t);
    for (std::uint32_t f = 0; f < model.num_functions(); f += 2) {
      ASSERT_TRUE(client.Invoke(FunctionId{f}, t).ok());
      (void)direct.Invoke(FunctionId{f}, t);
    }
  }

  const auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.error().message;
  EXPECT_EQ(stats.value().stats, direct.stats());

  const auto snapshot = client.Snapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.error().message;
  EXPECT_EQ(snapshot.value().state, direct.SaveState());

  // The merged snapshot restores losslessly into a fresh platform.
  platform::Platform restored{model, cfg};
  ASSERT_TRUE(restored.LoadState(snapshot.value().state));
  EXPECT_EQ(restored.SaveState(), snapshot.value().state);
}

TEST(ShardRouter, HelloSpeaksTheProtocolVersion) {
  const auto model = GridModel(2, 1);
  ShardedTier tier{model, RouterConfig(), 2};
  server::Client client = tier.Connect();
  const auto hello = client.Hello();
  ASSERT_TRUE(hello.ok()) << hello.error().message;
  EXPECT_EQ(hello.value().version, server::kProtocolVersion);
}

TEST(ShardRouter, HealthAggregatesAcrossShards) {
  const auto model = GridModel(4, 1);
  ShardedTier tier{model, RouterConfig(), 2};
  server::Client client = tier.Connect();
  ASSERT_TRUE(client.AdvanceTo(Minute{30}).ok());

  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.error().message;
  EXPECT_TRUE(health.value().ready);
  EXPECT_EQ(health.value().clock_minute, 30);

  // Health is control plane: it answers even with a shard dead — as
  // not-ready, so the prober learns the tier is degraded.
  tier.hosts[0]->Crash();
  tier.router->MarkDown(0);
  health = client.Health();
  ASSERT_TRUE(health.ok()) << health.error().message;
  EXPECT_FALSE(health.value().ready);
}

TEST(ShardRouter, DeadShardFailsFastForItsUsersOnly) {
  const auto model = GridModel(8, 1);
  ShardedTier tier{model, RouterConfig(), 3};
  server::Client client = tier.Connect();

  const std::size_t victim = tier.router->ShardForFunction(FunctionId{0});
  tier.hosts[victim]->Crash();

  // First request for the victim's user discovers the corpse: the
  // connect is refused, the lane goes down, the client gets
  // kUnavailable with retry-after advice.
  auto dead = client.Invoke(FunctionId{0}, Minute{0});
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.error().code, ErrorCode::kUnavailable);
  EXPECT_EQ(client.last_retry_after(), 1);
  EXPECT_FALSE(client.connection_dead());  // client<->router link survives
  EXPECT_FALSE(tier.router->IsUp(victim));
  EXPECT_GT(tier.router->books().unavailable_rejections, 0u);

  // Every OTHER shard's users are untouched.
  for (std::uint32_t f = 0; f < model.num_functions(); ++f) {
    const std::size_t owner = tier.router->ShardForFunction(FunctionId{f});
    if (owner == victim) continue;
    ASSERT_TRUE(client.Invoke(FunctionId{f}, Minute{0}).ok()) << "fn " << f;
    EXPECT_TRUE(tier.router->IsUp(owner));
  }

  // Merged reads refuse to serve silently partial numbers.
  auto stats = client.Stats();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.error().code, ErrorCode::kUnavailable);
  auto snapshot = client.Snapshot();
  ASSERT_FALSE(snapshot.ok());
  EXPECT_EQ(snapshot.error().code, ErrorCode::kUnavailable);

  // Broadcasts skip the corpse and keep the survivors in lockstep.
  ASSERT_TRUE(client.AdvanceTo(Minute{5}).ok());
  EXPECT_GT(tier.router->books().broadcast_skips_down, 0u);
}

TEST(ShardRouter, InjectedCrashKillsTheTargetShardUnderTheRequest) {
  const auto model = GridModel(6, 1);
  faults::FaultProfile profile;
  profile.shard_crash_fraction = 1.0;
  faults::FaultInjector injector{7, profile};
  ShardedTier tier{model, RouterConfig(), 2, std::string{}, &injector};
  server::Client client = tier.Connect();

  const std::size_t victim = tier.router->ShardForFunction(FunctionId{0});
  auto got = client.Invoke(FunctionId{0}, Minute{0});
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.error().code, ErrorCode::kUnavailable);
  EXPECT_FALSE(tier.hosts[victim]->alive());
  EXPECT_FALSE(tier.router->IsUp(victim));
  EXPECT_EQ(tier.router->books().crashes_injected, 1u);
  // The crash never reached the shard as a half-applied op.
  const std::size_t other = victim == 0 ? 1 : 0;
  EXPECT_TRUE(tier.hosts[other]->alive());
  EXPECT_EQ(tier.hosts[other]->platform().stats().invocations, 0u);
}

TEST(ShardRouter, OutOfRangeFunctionIsRejectedAtTheRouter) {
  const auto model = GridModel(2, 1);
  ShardedTier tier{model, RouterConfig(), 2};
  server::Client client = tier.Connect();
  auto bad = client.Invoke(FunctionId{999}, Minute{0});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(tier.hosts[0]->platform().stats().invocations, 0u);
  EXPECT_EQ(tier.hosts[1]->platform().stats().invocations, 0u);
}

TEST(ShardRouter, ReattachRestoresAMarkedDownLane) {
  const auto model = GridModel(4, 1);
  ShardedTier tier{model, RouterConfig(), 2};
  server::Client client = tier.Connect();

  tier.router->MarkDown(0);
  EXPECT_FALSE(tier.router->IsUp(0));
  tier.router->Reattach(0);
  EXPECT_TRUE(tier.router->IsUp(0));
  for (std::uint32_t f = 0; f < model.num_functions(); ++f) {
    ASSERT_TRUE(client.Invoke(FunctionId{f}, Minute{0}).ok());
  }
}

}  // namespace
}  // namespace defuse::router
