// ShardSupervisor: the three detection channels, the
// suspect->down threshold walk, and supervised restart through the
// recovery ladder — with the byte-identity oracle a durable shard must
// satisfy after every restart.
#include "router/supervisor.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "faults/injector.hpp"
#include "platform/platform.hpp"
#include "sharded_tier.hpp"

namespace defuse::router {
namespace {

namespace fs = std::filesystem;

platform::PlatformConfig SupervisorConfig() {
  platform::PlatformConfig cfg;
  cfg.horizon = 2 * kMinutesPerDay;
  cfg.remine_interval = kMinutesPerDay;
  return cfg;
}

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& name)
      : path(fs::temp_directory_path() / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

TEST(ShardSupervisor, HealthyTierTicksQuietly) {
  const auto model = GridModel(4, 1);
  ShardedTier tier{model, SupervisorConfig(), 2};
  ShardSupervisor supervisor{*tier.router, {}};

  supervisor.Tick();
  supervisor.Tick();
  EXPECT_EQ(supervisor.condition(0), ShardCondition::kUp);
  EXPECT_EQ(supervisor.condition(1), ShardCondition::kUp);
  EXPECT_EQ(supervisor.books().ticks, 2u);
  EXPECT_EQ(supervisor.books().probes_sent, 4u);
  EXPECT_EQ(supervisor.books().downs_detected, 0u);
  EXPECT_EQ(supervisor.books().restarts, 0u);
}

TEST(ShardSupervisor, LaneFailureIsBelievedWithoutProbing) {
  const auto model = GridModel(6, 1);
  TempDir dir{"defuse_supervisor_lane_test"};
  ShardedTier tier{model, SupervisorConfig(), 2, dir.path.string()};
  server::Client client = tier.Connect();
  ShardSupervisor supervisor{*tier.router, {}};

  for (std::uint32_t f = 0; f < model.num_functions(); ++f) {
    ASSERT_TRUE(client.Invoke(FunctionId{f}, Minute{0}).ok());
  }
  const std::size_t victim = tier.router->ShardForFunction(FunctionId{0});
  tier.hosts[victim]->Crash();
  // The router discovers the death mid-forward and condemns the lane.
  ASSERT_FALSE(client.Invoke(FunctionId{0}, Minute{1}).ok());
  ASSERT_FALSE(tier.router->IsUp(victim));

  // One tick: detection via channel 1 (the lane), restart, re-admit.
  supervisor.Tick();
  EXPECT_EQ(supervisor.condition(victim), ShardCondition::kUp);
  EXPECT_TRUE(tier.router->IsUp(victim));
  EXPECT_EQ(supervisor.books().downs_detected, 1u);
  EXPECT_EQ(supervisor.books().restarts, 1u);
  ASSERT_TRUE(supervisor.last_recovery(victim).has_value());

  // The journal reproduced the pre-crash platform byte for byte.
  EXPECT_EQ(tier.hosts[victim]->platform().SaveState(),
            tier.hosts[victim]->pre_crash_state());
  EXPECT_EQ(tier.hosts[victim]->incarnation(), 2u);

  // And the shard serves again.
  ASSERT_TRUE(client.Invoke(FunctionId{0}, Minute{2}).ok());
}

TEST(ShardSupervisor, ConnectRefusedDetectsASilentCorpseImmediately) {
  const auto model = GridModel(4, 1);
  TempDir dir{"defuse_supervisor_refused_test"};
  ShardedTier tier{model, SupervisorConfig(), 2, dir.path.string()};
  server::Client client = tier.Connect();
  ASSERT_TRUE(client.AdvanceTo(Minute{3}).ok());
  ShardSupervisor supervisor{*tier.router, {}};

  // Crash WITHOUT routing any traffic at it: the lane still believes
  // the shard is up, so only the probe (channel 2) can notice.
  tier.hosts[1]->Crash();
  ASSERT_TRUE(tier.router->IsUp(1));

  supervisor.Tick();
  EXPECT_EQ(supervisor.condition(1), ShardCondition::kUp);  // restarted
  EXPECT_EQ(supervisor.books().downs_detected, 1u);
  EXPECT_EQ(supervisor.books().restarts, 1u);
  EXPECT_TRUE(tier.router->IsUp(1));
  EXPECT_EQ(tier.hosts[1]->platform().SaveState(),
            tier.hosts[1]->pre_crash_state());
}

TEST(ShardSupervisor, ProbeLossWalksSuspectToDownAtThreshold) {
  const auto model = GridModel(4, 1);
  TempDir dir{"defuse_supervisor_probeloss_test"};
  ShardedTier tier{model, SupervisorConfig(), 1, dir.path.string()};
  server::Client client = tier.Connect();
  ASSERT_TRUE(client.Invoke(FunctionId{0}, Minute{0}).ok());
  const std::string before = tier.hosts[0]->platform().SaveState();

  faults::FaultProfile profile;
  profile.probe_loss_fraction = 1.0;  // every probe vanishes in flight
  faults::FaultInjector injector{3, profile};
  SupervisorOptions options;
  options.probe_loss_threshold = 3;
  options.injector = &injector;
  ShardSupervisor supervisor{*tier.router, options};

  supervisor.Tick();  // miss 1
  EXPECT_EQ(supervisor.condition(0), ShardCondition::kSuspect);
  EXPECT_EQ(supervisor.books().suspects, 1u);
  EXPECT_EQ(supervisor.books().downs_detected, 0u);

  supervisor.Tick();  // miss 2: still below threshold
  EXPECT_EQ(supervisor.condition(0), ShardCondition::kSuspect);

  supervisor.Tick();  // miss 3: down, restarted in the same tick
  EXPECT_EQ(supervisor.condition(0), ShardCondition::kUp);
  EXPECT_EQ(supervisor.books().probes_lost, 3u);
  EXPECT_EQ(supervisor.books().downs_detected, 1u);
  EXPECT_EQ(supervisor.books().restarts, 1u);

  // The shard was HEALTHY — only its probes were dying. The needless
  // restart is the accepted cost, and it must be state-safe: the
  // durable shard recovered byte-identically.
  EXPECT_EQ(tier.hosts[0]->platform().SaveState(), before);
  ASSERT_TRUE(client.Invoke(FunctionId{0}, Minute{1}).ok());
}

TEST(ShardSupervisor, MissCounterStartsOverAfterARestart) {
  const auto model = GridModel(4, 1);
  ShardedTier tier{model, SupervisorConfig(), 1};

  faults::FaultProfile profile;
  profile.probe_loss_fraction = 1.0;
  faults::FaultInjector injector{3, profile};
  SupervisorOptions options;
  options.probe_loss_threshold = 2;
  options.injector = &injector;
  ShardSupervisor supervisor{*tier.router, options};

  supervisor.Tick();  // miss 1: suspect
  ASSERT_EQ(supervisor.condition(0), ShardCondition::kSuspect);
  supervisor.Tick();  // miss 2: down, restarted same tick
  ASSERT_EQ(supervisor.condition(0), ShardCondition::kUp);
  ASSERT_EQ(supervisor.books().restarts, 1u);

  // The restart zeroed the miss counter: the next lost probe makes the
  // shard SUSPECT again, not instantly down.
  supervisor.Tick();  // miss 1 of the new walk
  EXPECT_EQ(supervisor.condition(0), ShardCondition::kSuspect);
  EXPECT_EQ(supervisor.books().downs_detected, 1u);
  EXPECT_EQ(supervisor.books().suspects, 2u);
  EXPECT_EQ(supervisor.books().probes_lost, 3u);
}

TEST(ShardSupervisor, CrashedInMemoryShardRestartsEmptyByContract) {
  const auto model = GridModel(4, 1);
  ShardedTier tier{model, SupervisorConfig(), 2};
  ShardSupervisor supervisor{*tier.router, {}};

  server::Client client = tier.Connect();
  const std::size_t victim = tier.router->ShardForFunction(FunctionId{0});
  ASSERT_TRUE(client.Invoke(FunctionId{0}, Minute{0}).ok());
  tier.hosts[victim]->Crash();
  ASSERT_FALSE(client.Invoke(FunctionId{0}, Minute{1}).ok());

  supervisor.Tick();
  EXPECT_EQ(supervisor.books().restart_failures, 0u);
  EXPECT_EQ(supervisor.books().restarts, 1u);
  // In-memory crash: the restart recovers EMPTY (nothing was durable) —
  // that is the documented contract of state_dir-less shards.
  EXPECT_EQ(tier.hosts[victim]->platform().stats().invocations, 0u);
}

}  // namespace
}  // namespace defuse::router
