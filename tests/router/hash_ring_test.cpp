// HashRing: placement must be a pure function of (user, shard count,
// vnodes) — the determinism bridge, the CLI `route` verb, and router
// restarts all re-derive it independently and must agree.
#include "router/hash_ring.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

namespace defuse::router {
namespace {

constexpr std::size_t kUsers = 512;

std::vector<std::size_t> MapAll(const HashRing& ring) {
  std::vector<std::size_t> owner(kUsers);
  for (std::uint32_t u = 0; u < kUsers; ++u) {
    owner[u] = ring.ShardForUser(UserId{u});
  }
  return owner;
}

TEST(HashRing, PlacementIsAPureFunctionOfItsInputs) {
  const HashRing a{4, 64};
  const HashRing b{4, 64};
  EXPECT_EQ(MapAll(a), MapAll(b));
}

TEST(HashRing, SingleShardOwnsEveryUser) {
  const HashRing ring{1, 64};
  for (std::uint32_t u = 0; u < kUsers; ++u) {
    EXPECT_EQ(ring.ShardForUser(UserId{u}), 0u);
  }
}

TEST(HashRing, DegenerateParametersClampUpToOne) {
  const HashRing ring{0, 0};
  EXPECT_EQ(ring.num_shards(), 1u);
  EXPECT_EQ(ring.vnodes_per_shard(), 1u);
  EXPECT_EQ(ring.ShardForUser(UserId{7}), 0u);
}

TEST(HashRing, EveryShardOwnsAReasonableSliceOfUsers) {
  const HashRing ring{4, 64};
  std::vector<std::size_t> count(4, 0);
  for (const std::size_t owner : MapAll(ring)) {
    ASSERT_LT(owner, 4u);
    ++count[owner];
  }
  // 64 vnodes keep the spread well away from empty or dominant shards;
  // the bound is loose on purpose (this is a smoke test of balance, not
  // a distribution proof).
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GT(count[s], kUsers / 16) << "shard " << s;
    EXPECT_LT(count[s], kUsers / 2) << "shard " << s;
  }
}

TEST(HashRing, AddingAShardOnlyMovesUsersOntoTheNewShard) {
  const HashRing before{4, 64};
  const HashRing after{5, 64};
  std::size_t moved = 0;
  for (std::uint32_t u = 0; u < kUsers; ++u) {
    const std::size_t was = before.ShardForUser(UserId{u});
    const std::size_t now = after.ShardForUser(UserId{u});
    if (was != now) {
      // The classic consistent-hashing property: growing the ring only
      // claims arcs for the NEW shard; nobody shuffles between
      // survivors.
      EXPECT_EQ(now, 4u) << "user " << u << " moved " << was << " -> " << now;
      ++moved;
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, kUsers / 2);
}

TEST(HashRing, MoreVnodesChangesPlacementDeterministically) {
  const HashRing sparse{4, 8};
  const HashRing dense{4, 256};
  // Not asserting WHICH users move — only that both rings answer, in
  // range, and reproducibly.
  EXPECT_EQ(MapAll(sparse), MapAll(HashRing{4, 8}));
  EXPECT_EQ(MapAll(dense), MapAll(HashRing{4, 256}));
}

}  // namespace
}  // namespace defuse::router
