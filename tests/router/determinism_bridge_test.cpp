// The sharded determinism bridge — this PR's acceptance criterion: a
// tier of N shards driven in lockstep through the router must be
// bit-equivalent to one single-shard daemon for N in {1, 2, 4} over
// seeds 0..9 — identical per-invocation outcomes, byte-identical merged
// PlatformStats and SaveState over the wire, and a byte-identical
// merged dependency-set CSV. Sharding adds placement, not semantics.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "platform/platform.hpp"
#include "router/state_merge.hpp"
#include "sharded_tier.hpp"
#include "trace/generator.hpp"

namespace defuse::router {
namespace {

platform::PlatformConfig BridgeConfig(MinuteDelta horizon) {
  platform::PlatformConfig cfg;
  cfg.horizon = horizon;
  cfg.remine_interval = kMinutesPerDay;
  return cfg;
}

/// Two days of Tiny traffic: crosses two re-mine boundaries, stays fast
/// enough to sweep 10 seeds x 3 shard counts.
trace::GeneratorConfig Gen(std::uint64_t seed) {
  auto gen = trace::GeneratorConfig::Tiny();
  gen.seed = seed;
  gen.horizon_minutes = 2 * kMinutesPerDay;
  return gen;
}

// A unit id is a shard-LOCAL dense coordinate: a shard numbers the
// functions it does not own as singletons, so raw ids shift between
// tier shapes. The unit's canonical identity — what the merged snapshot
// and CSV renumber by — is its smallest member function.
struct Outcome {
  bool cold = false;
  std::uint32_t canonical_fn = 0;
};

std::uint32_t CanonicalUnit(const platform::Platform& p, UnitId unit) {
  return p.units().functions_of(unit).front().value();
}

TEST(ShardDeterminismBridge, ShardedTierMatchesSingleDaemonByteForByte) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto gen = Gen(seed);
    const auto workload = trace::GenerateWorkload(gen);
    const auto cfg = BridgeConfig(gen.horizon_minutes);
    const auto index =
        workload.trace.BuildMinuteIndex(workload.trace.horizon());
    const Minute end = workload.trace.horizon().end;

    // The single-daemon oracle, driven once: per-minute heartbeat, then
    // that minute's invocations.
    platform::Platform direct{workload.model, cfg};
    std::vector<Outcome> outcomes;
    for (Minute t = 0; t < end; ++t) {
      direct.AdvanceTo(t);
      for (const auto& [fn, count] : index.at(t)) {
        (void)count;
        const auto got = direct.Invoke(fn, t);
        outcomes.push_back(
            Outcome{got.cold, CanonicalUnit(direct, got.unit)});
      }
    }
    const std::string direct_state = direct.SaveState();
    const std::string direct_csv = SetsCsvPlain(direct, workload.model);

    for (const std::size_t num_shards : {1u, 2u, 4u}) {
      ShardedTier tier{workload.model, cfg, num_shards};
      server::Client client = tier.Connect();
      std::size_t op = 0;
      for (Minute t = 0; t < end; ++t) {
        ASSERT_TRUE(client.AdvanceTo(t).ok())
            << "seed " << seed << " shards " << num_shards << " t " << t;
        for (const auto& [fn, count] : index.at(t)) {
          (void)count;
          const auto got = client.Invoke(fn, t);
          ASSERT_TRUE(got.ok()) << "seed " << seed << " shards "
                                << num_shards << " t " << t << ": "
                                << got.error().message;
          ASSERT_EQ(got.value().cold, outcomes[op].cold)
              << "seed " << seed << " shards " << num_shards << " op " << op;
          auto& owner = *tier.hosts[tier.router->ShardForFunction(fn)];
          ASSERT_EQ(CanonicalUnit(owner.platform(), got.value().unit),
                    outcomes[op].canonical_fn)
              << "seed " << seed << " shards " << num_shards << " op " << op;
          ++op;
        }
      }
      ASSERT_EQ(op, outcomes.size());

      // Merged stats over the wire == the single daemon's, field for
      // field; merged snapshot byte for byte.
      const auto stats = client.Stats();
      ASSERT_TRUE(stats.ok()) << stats.error().message;
      EXPECT_EQ(stats.value().stats, direct.stats())
          << "seed " << seed << " shards " << num_shards;

      const auto snapshot = client.Snapshot();
      ASSERT_TRUE(snapshot.ok()) << snapshot.error().message;
      EXPECT_EQ(snapshot.value().state, direct_state)
          << "seed " << seed << " shards " << num_shards;

      // The merged snapshot is a real snapshot: it restores into a
      // fresh single platform losslessly.
      platform::Platform restored{workload.model, cfg};
      ASSERT_TRUE(restored.LoadState(snapshot.value().state))
          << "seed " << seed << " shards " << num_shards;
      EXPECT_EQ(restored.SaveState(), direct_state);

      // Dependency-set CSVs merge byte-identically too (the artifact a
      // sharded miner tier hands the scheduler).
      std::vector<std::string> csvs;
      for (const auto& host : tier.hosts) {
        csvs.push_back(SetsCsvPlain(host->platform(), workload.model));
      }
      const auto merged_csv = MergeDependencySetCsvs(
          workload.model, csvs, tier.router->FunctionOwners());
      ASSERT_TRUE(merged_csv.ok())
          << "seed " << seed << " shards " << num_shards << ": "
          << merged_csv.error().message;
      EXPECT_EQ(merged_csv.value(), direct_csv)
          << "seed " << seed << " shards " << num_shards;
    }
  }
}

TEST(ShardDeterminismBridge, DeltaMiningTierMatchesFullRebuildOracle) {
  // Delta re-mining sweep: every shard maintains its own streaming
  // accumulators, yet the tier must stay bit-equivalent to a SINGLE
  // full-rebuild daemon — merged stats field for field, merged SaveState
  // and dependency-set CSV byte for byte — for N in {1, 2, 4} over seeds
  // 0..9. A short cadence + sliding window + anchor-every-3 crosses
  // delta mines, evictions, and full-rebuild anchors in every run.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto gen = Gen(seed);
    const auto workload = trace::GenerateWorkload(gen);
    auto cfg = BridgeConfig(gen.horizon_minutes);
    cfg.remine_interval = 480;
    cfg.mining_window = 720;
    const auto index =
        workload.trace.BuildMinuteIndex(workload.trace.horizon());
    const Minute end = workload.trace.horizon().end;

    // The oracle re-mines the classic way: full pipeline over the
    // history snapshot at every boundary.
    platform::Platform direct{workload.model, cfg};
    for (Minute t = 0; t < end; ++t) {
      direct.AdvanceTo(t);
      for (const auto& [fn, count] : index.at(t)) {
        (void)count;
        (void)direct.Invoke(fn, t);
      }
    }
    ASSERT_GE(direct.stats().remines, 4u) << "seed " << seed;
    const std::string direct_state = direct.SaveState();
    const std::string direct_csv = SetsCsvPlain(direct, workload.model);

    auto delta_cfg = cfg;
    delta_cfg.mining.delta.enabled = true;
    delta_cfg.mining.delta.full_rebuild_every = 3;
    for (const std::size_t num_shards : {1u, 2u, 4u}) {
      ShardedTier tier{workload.model, delta_cfg, num_shards};
      server::Client client = tier.Connect();
      for (Minute t = 0; t < end; ++t) {
        ASSERT_TRUE(client.AdvanceTo(t).ok())
            << "seed " << seed << " shards " << num_shards << " t " << t;
        for (const auto& [fn, count] : index.at(t)) {
          (void)count;
          ASSERT_TRUE(client.Invoke(fn, t).ok())
              << "seed " << seed << " shards " << num_shards << " t " << t;
        }
      }

      const auto stats = client.Stats();
      ASSERT_TRUE(stats.ok()) << stats.error().message;
      EXPECT_EQ(stats.value().stats, direct.stats())
          << "seed " << seed << " shards " << num_shards;

      const auto snapshot = client.Snapshot();
      ASSERT_TRUE(snapshot.ok()) << snapshot.error().message;
      EXPECT_EQ(snapshot.value().state, direct_state)
          << "seed " << seed << " shards " << num_shards;

      std::vector<std::string> csvs;
      for (const auto& host : tier.hosts) {
        // Each shard really mined incrementally (first mines are deltas,
        // anchors only on the every-3 cadence).
        const auto* acc = host->platform().delta_accumulator();
        ASSERT_NE(acc, nullptr) << "seed " << seed;
        EXPECT_GT(acc->books().delta_mines, 0u)
            << "seed " << seed << " shards " << num_shards;
        csvs.push_back(SetsCsvPlain(host->platform(), workload.model));
      }
      const auto merged_csv = MergeDependencySetCsvs(
          workload.model, csvs, tier.router->FunctionOwners());
      ASSERT_TRUE(merged_csv.ok())
          << "seed " << seed << " shards " << num_shards << ": "
          << merged_csv.error().message;
      EXPECT_EQ(merged_csv.value(), direct_csv)
          << "seed " << seed << " shards " << num_shards;
    }
  }
}

TEST(ShardDeterminismBridge, ReroutedSnapshotReloadsIntoADifferentTierShape) {
  // A tier's merged snapshot is placement-free: reload it into a tier
  // with a DIFFERENT shard count via the single-platform restore path
  // and the books still read identically.
  const auto gen = Gen(3);
  const auto workload = trace::GenerateWorkload(gen);
  const auto cfg = BridgeConfig(gen.horizon_minutes);
  const auto index = workload.trace.BuildMinuteIndex(workload.trace.horizon());

  ShardedTier tier{workload.model, cfg, 2};
  server::Client client = tier.Connect();
  for (Minute t = 0; t < kMinutesPerDay; ++t) {
    ASSERT_TRUE(client.AdvanceTo(t).ok());
    for (const auto& [fn, count] : index.at(t)) {
      (void)count;
      ASSERT_TRUE(client.Invoke(fn, t).ok());
    }
  }
  const auto snapshot = client.Snapshot();
  ASSERT_TRUE(snapshot.ok());

  platform::Platform restored{workload.model, cfg};
  ASSERT_TRUE(restored.LoadState(snapshot.value().state));
  const auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(restored.stats(), stats.value().stats);
}

}  // namespace
}  // namespace defuse::router
